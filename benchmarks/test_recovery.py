"""Crash recovery — restart cost vs chain length, with and without
checkpoints.

An issuer that only has the WAL must replay every archived block
through the enclave on restart: O(chain) ecalls and modeled enclave
time.  With sealed checkpoints the enclave work is the checkpoint
unseal plus the WAL *tail* past it — O(gap), independent of how long
the chain is.  The sweep below grows chains of increasing length with
a fixed checkpoint interval (so the tail gap is constant across
lengths), restarts each, and records the recovery ecall count and wall
time both ways.

Reproduced claims:

* checkpointed recovery performs an identical number of ecalls at
  every chain length (flat in history, linear only in the gap);
* full-replay recovery ecalls grow linearly with chain length;
* both restarts converge to the same state (tip, state root, pk_enc).
"""

from __future__ import annotations

import time

from repro import obs
from repro.bench.harness import fresh_vm
from repro.bench.reporting import bench_record, print_table
from repro.bench.workloadgen import WorkloadGenerator
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.core.recovery import DurableIssuer, recover_issuer
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform
from repro.storage import ChainArchive

#: Checkpoint every N blocks; chain lengths share a residue of 2 mod
#: _INTERVAL so every restart replays exactly a 2-block tail.
_INTERVAL = 4
_LENGTHS = (6, 10, 14)
_BLOCK_SIZE = 2
_NETWORK = "recovery-bench"


def _build_archive(params, length: int, tmp_path):
    """Mine ``length`` KV blocks and certify them durably."""
    generator = WorkloadGenerator(params, seed=7)
    builder = ChainBuilder(
        difficulty_bits=params.difficulty_bits,
        state_depth=params.state_depth,
        network=_NETWORK,
    )
    genesis, state = make_genesis(
        network=_NETWORK, state_depth=params.state_depth
    )
    platform = SGXPlatform(seed=b"recovery-bench-platform")
    ias = AttestationService(seed=b"recovery-bench-ias")
    archive = ChainArchive(tmp_path / f"len{length}.wal")
    durable = DurableIssuer.create(
        archive, genesis, state, fresh_vm(), builder.pow,
        index_specs=[AccountHistoryIndexSpec(name="history")],
        platform=platform, ias=ias, key_seed=b"recovery-bench-enclave",
        checkpoint_interval=_INTERVAL,
    )
    for _ in range(length):
        block, _ = builder.add_block(generator.block_txs("KV", _BLOCK_SIZE))
        durable.process_block(block)
    return durable, builder, platform, ias


def _restart(params, durable, builder, platform, ias):
    genesis, state = make_genesis(
        network=_NETWORK, state_depth=params.state_depth
    )
    started = time.perf_counter()
    recovered = recover_issuer(
        durable.archive, genesis, state, fresh_vm(), builder.pow,
        index_specs=[AccountHistoryIndexSpec(name="history")],
        platform=platform, ias=ias, checkpoint_interval=_INTERVAL,
    )
    elapsed_s = time.perf_counter() - started
    ledger = recovered.enclave.ledger
    return recovered, elapsed_s, ledger.ecalls, recovered.last_recovery


def test_recovery_cost_vs_chain_length(params, tmp_path):
    rows = []
    record = {}
    ckpt_ecalls = {}
    full_ecalls = {}
    with obs.observability():
        obs.registry().reset()
        for length in _LENGTHS:
            durable, builder, platform, ias = _build_archive(
                params, length, tmp_path
            )

            recovered, ckpt_s, n_ckpt, report = _restart(
                params, durable, builder, platform, ias
            )
            assert report.checkpoint_used
            assert report.replayed_blocks == length % _INTERVAL
            assert recovered.node.height == length
            assert recovered.node.state.root == durable.node.state.root
            assert recovered.pk_enc == durable.pk_enc
            ckpt_ecalls[length] = n_ckpt

            # Same archive, checkpoint sidecar gone: full WAL replay.
            durable.archive.checkpoint_path.unlink()
            refull, full_s, n_full, report = _restart(
                params, durable, builder, platform, ias
            )
            assert not report.checkpoint_used
            assert report.replayed_blocks == length
            assert refull.node.state.root == durable.node.state.root
            full_ecalls[length] = n_full

            rows.append([
                length,
                length % _INTERVAL,
                n_ckpt,
                round(ckpt_s * 1000, 1),
                n_full,
                round(full_s * 1000, 1),
            ])
            record[f"len{length}"] = {
                "chain_length": length,
                "tail_gap": length % _INTERVAL,
                "checkpoint_ecalls": n_ckpt,
                "checkpoint_recovery_ms": ckpt_s * 1000,
                "full_replay_ecalls": n_full,
                "full_replay_recovery_ms": full_s * 1000,
            }
        snapshot = obs.registry().snapshot()
    print_table(
        "Restart cost vs chain length "
        f"(checkpoint interval {_INTERVAL}, constant 2-block tail)",
        ["chain len", "gap", "ckpt ecalls", "ckpt ms",
         "replay ecalls", "replay ms"],
        rows,
    )
    record["metrics"] = {
        "restarts": snapshot["counters"].get("recovery.restarts", 0),
        "replayed_blocks": snapshot["counters"].get(
            "recovery.replayed_blocks", 0
        ),
    }
    bench_record("recovery", record)

    # Reproduced claims.
    flat = set(ckpt_ecalls.values())
    assert len(flat) == 1, (
        f"checkpointed recovery ecalls vary with chain length: {ckpt_ecalls}"
    )
    ordered = [full_ecalls[length] for length in _LENGTHS]
    assert ordered == sorted(ordered) and ordered[0] < ordered[-1], (
        f"full-replay ecalls should grow with chain length: {full_ecalls}"
    )
    # At every length the checkpoint path does strictly less enclave work.
    for length in _LENGTHS:
        assert ckpt_ecalls[length] < full_ecalls[length]
