"""Smoke check: disabled observability is (near) free.

The instrumentation contract (see ``docs/observability.md``) is that
every hook costs one global bool test while the switch is off.  This
benchmark compares the end-to-end ``selftest`` flow as shipped
(instrumented, observability disabled) against the same flow with the
recording helpers stripped to bare no-ops — the closest available
stand-in for an uninstrumented build — and asserts the shipped version
is within 5% of it.

Runs are interleaved and summarized by their minimum, which is the
standard way to damp scheduler noise out of a wall-clock comparison.
"""

from __future__ import annotations

import io
import time
from contextlib import redirect_stdout

from repro import obs
from repro.cli import main
from repro.obs.tracing import _NULL_SPAN

ROUNDS = 3
MAX_OVERHEAD = 1.05


def _selftest_seconds() -> float:
    started = time.perf_counter()
    with redirect_stdout(io.StringIO()):
        assert main(["selftest"]) == 0
    return time.perf_counter() - started


def test_disabled_observability_overhead_under_5_percent(monkeypatch):
    def noop(*args, **kwargs):
        return None

    assert not obs.enabled()
    instrumented: list[float] = []
    stripped: list[float] = []
    for _ in range(ROUNDS):
        instrumented.append(_selftest_seconds())
        with monkeypatch.context() as patched:
            patched.setattr(obs, "inc", noop)
            patched.setattr(obs, "observe", noop)
            patched.setattr(obs, "set_gauge", noop)
            patched.setattr(obs, "trace_span", lambda name: _NULL_SPAN)
            patched.setattr(obs, "enabled", lambda: False)
            stripped.append(_selftest_seconds())

    budget = min(stripped) * MAX_OVERHEAD
    assert min(instrumented) <= budget, (
        f"disabled observability cost {min(instrumented):.3f}s vs "
        f"{min(stripped):.3f}s stripped (>{MAX_OVERHEAD - 1:.0%} overhead)"
    )
