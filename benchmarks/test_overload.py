"""Overload resilience — goodput under saturation, hedged tails.

Two scenarios on the virtual clock:

* **Admission control at 5x offered load** — an open-loop arrival
  process fires queries at five times the fleet's modeled capacity
  (busy workers, ``service_time_ms``).  CoDel-style admission sheds the
  excess at arrival with OVERLOADED + retry_after, and deadline
  propagation refuses work that cannot finish inside its budget, so
  the workers stay saturated with *useful* requests: goodput holds at
  >= 80% of capacity, the admitted queue delay never exceeds the shed
  threshold by more than one service quantum, and shed/refused requests
  cost the provider zero query executions.
* **Hedged requests vs a slow replica** — after per-endpoint latency
  trackers warm up, one replica turns 20x slower.  Un-hedged
  round-robin eats the slow replica's full service time on every other
  query; with hedging the gateway fires a second attempt at the
  observed p90 and takes whichever answer lands first, collapsing the
  tail.

Reproduced claims:

* goodput at 5x offered load >= 80% of single-replica capacity x
  replica count, with bounded admitted queue delay;
* shed and deadline-refused requests do zero provider work;
* hedging cuts the slow-replica p99 by >= 2x (recorded either way via
  ``bench_record`` for the un-hedged/hedged comparison).

``REPRO_OVERLOAD_ARRIVALS`` overrides the arrival count (default 600).
"""

from __future__ import annotations

import os

from repro.bench.harness import fresh_vm
from repro.bench.reporting import bench_record, print_table
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.crypto import generate_keypair
from repro.net import (
    AdmissionPolicy,
    HealthPolicy,
    HedgePolicy,
    MessageBus,
    QueryGateway,
    RetryPolicy,
)
from repro.net.rpc import RpcClient
from repro.query import HistoryQuery, QueryService
from repro.query.indexes import AccountHistoryIndexSpec
from repro.query.provider import QueryServiceProvider
from repro.sgx.costs import cost_model_disabled

_NETWORK = "overload-bench"
_BLOCKS = 8
_SERVICE_MS = 20.0
_SHED_DELAY_MS = 40.0
_REPLICAS = 2


def _arrivals() -> int:
    return int(os.environ.get("REPRO_OVERLOAD_ARRIVALS", "600"))


def _build_provider() -> QueryServiceProvider:
    """A small certified-shape chain the serving tier answers over."""
    keypair = generate_keypair(b"overload-bench-user")
    builder = ChainBuilder(difficulty_bits=4, network=_NETWORK)
    genesis, state = make_genesis(network=_NETWORK)
    specs = [AccountHistoryIndexSpec(name="history")]
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), builder.pow, specs
    )
    nonce = 0
    for _ in range(_BLOCKS):
        txs = []
        for _ in range(3):
            txs.append(sign_transaction(
                keypair.private, nonce, "kvstore", "put",
                (f"k{nonce % 4}", f"v{nonce}"),
            ))
            nonce += 1
        block, _ = builder.add_block(txs)
        provider.ingest_block(block)
    return provider


def _requests(count: int) -> list[HistoryQuery]:
    return [
        HistoryQuery(
            index="history",
            account=f"k{i % 4}",
            t_from=1,
            t_to=1 + i % _BLOCKS,
        )
        for i in range(count)
    ]


def test_admission_control_protects_goodput_at_5x_load():
    arrivals = _arrivals()
    with cost_model_disabled():
        provider = _build_provider()
        bus = MessageBus(default_latency_ms=1.0)
        names = [f"sp{i + 1}" for i in range(_REPLICAS)]
        admission = AdmissionPolicy(
            shed_delay_ms=_SHED_DELAY_MS, queue_limit=64
        )
        services = {
            name: QueryService(
                bus, name, provider,
                service_time_ms=_SERVICE_MS, admission=admission,
            )
            for name in names
        }
        load = RpcClient(
            bus, "load",
            policy=RetryPolicy(timeout_ms=10_000.0, max_attempts=1),
        )
        requests = _requests(16)

        capacity_qps = _REPLICAS * 1000.0 / _SERVICE_MS
        offered_qps = 5.0 * capacity_qps
        interval_ms = 1000.0 / offered_qps
        unresolved: set[int] = set()
        outcomes = {"ok": 0, "overloaded": 0, "refused": 0}

        def arrive(i: int) -> None:
            # Alternate loose and tight budgets: the tight ones
            # exercise deadline refusal (doomed at admission), the
            # loose ones ride the shed threshold.
            budget_ms = 150.0 if i % 2 == 0 else 30.0
            unresolved.add(load.begin(
                names[i % _REPLICAS], "execute",
                requests[i % len(requests)],
                deadline_ms=bus.clock_ms + budget_ms,
            ))

        def drain() -> None:
            # Collect replies promptly — the client's response book is
            # deliberately bounded, so an open-loop flood that never
            # takes its responses would see the oldest swept.
            for request_id in list(unresolved):
                response = load.take(request_id)
                if response is None:
                    continue
                unresolved.discard(request_id)
                if response.ok:
                    outcomes["ok"] += 1
                elif response.code == "net.overloaded":
                    outcomes["overloaded"] += 1
                elif response.code == "net.deadline":
                    outcomes["refused"] += 1

        start_ms = bus.clock_ms
        for i in range(arrivals):
            bus.schedule(i * interval_ms, lambda i=i: arrive(i))
        while bus.step():
            drain()
        duration_s = (bus.clock_ms - start_ms) / 1000.0

        assert not unresolved, "some arrivals never got any reply"
        ok = outcomes["ok"]
        assert sum(outcomes.values()) == arrivals

        goodput_qps = ok / duration_s
        shed = sum(s.server.requests_shed for s in services.values())
        deadline_refused = sum(
            s.server.deadline_refused for s in services.values()
        )
        admitted = sum(
            s.server.invocations.get("execute", 0)
            for s in services.values()
        )
        max_queue_ms = max(
            s.server.max_queue_delay_ms for s in services.values()
        )

    print_table(
        f"Admission control at 5x offered load "
        f"({arrivals} arrivals, {_REPLICAS} replicas, "
        f"{_SERVICE_MS:.0f} ms service time)",
        ["offered q/s", "capacity q/s", "goodput q/s",
         "shed", "refused", "max queue ms"],
        [[round(offered_qps, 1), round(capacity_qps, 1),
          round(goodput_qps, 1), shed, deadline_refused,
          round(max_queue_ms, 1)]],
    )
    bench_record(
        "overload_admission",
        {
            "arrivals": arrivals,
            "offered_qps": offered_qps,
            "capacity_qps": capacity_qps,
            "goodput_qps": goodput_qps,
            "served": ok,
            "shed": shed,
            "deadline_refused": deadline_refused,
            "max_queue_delay_ms": max_queue_ms,
        },
    )

    # Reproduced claim: goodput holds within 80% of modeled capacity.
    assert goodput_qps >= 0.8 * capacity_qps, (
        f"goodput collapsed under overload: {goodput_qps:.1f} q/s "
        f"of {capacity_qps:.1f} q/s capacity"
    )
    # Admitted queue delay is bounded by the shed threshold plus one
    # service quantum — the CoDel-style contract.
    assert max_queue_ms <= _SHED_DELAY_MS + _SERVICE_MS, (
        f"admitted queue delay {max_queue_ms:.1f} ms exceeds the "
        f"{_SHED_DELAY_MS:.0f} ms shed threshold + one service quantum"
    )
    # Shed and deadline-refused requests did zero provider work.
    assert shed > 0 and deadline_refused > 0
    assert provider.executes == admitted, (
        f"provider executed {provider.executes} queries but only "
        f"{admitted} were admitted — refusals did provider work"
    )


def _tail(samples: list[float], quantile: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(quantile * len(ordered)))
    return ordered[index]


def _run_slow_replica_pass(hedge: HedgePolicy | None) -> tuple:
    """Warm both replicas' latency trackers, slow one 20x, then measure
    per-query gateway latency over a round-robin sequence."""
    provider = _build_provider()
    bus = MessageBus(default_latency_ms=1.0)
    names = [f"sp{i + 1}" for i in range(_REPLICAS)]
    services = {
        name: QueryService(bus, name, provider, service_time_ms=10.0)
        for name in names
    }
    gateway = QueryGateway(
        bus, "gw", names,
        balancer="round-robin", seed=11,
        policy=RetryPolicy(timeout_ms=2_000.0, max_attempts=1),
        health=HealthPolicy(failure_threshold=4),
        hedge=hedge,
    )
    warmup = _requests(20)
    for request in warmup:
        gateway.call("execute", request)
    # One replica degrades 20x (GC pause, cold cache, noisy neighbor).
    services[names[-1]].server._service_times["execute"] = 200.0
    samples: list[float] = []
    for request in _requests(40):
        started = bus.clock_ms
        gateway.call("execute", request)
        samples.append(bus.clock_ms - started)
    return samples, gateway


def test_hedged_requests_cut_the_slow_replica_tail():
    with cost_model_disabled():
        unhedged, _ = _run_slow_replica_pass(HedgePolicy(enabled=False))
        hedged, gateway = _run_slow_replica_pass(HedgePolicy())

    rows = [
        ["un-hedged", round(_tail(unhedged, 0.5), 1),
         round(_tail(unhedged, 0.99), 1), round(max(unhedged), 1), 0, 0],
        ["hedged", round(_tail(hedged, 0.5), 1),
         round(_tail(hedged, 0.99), 1), round(max(hedged), 1),
         gateway.hedges, gateway.hedge_wins],
    ]
    print_table(
        "Gateway tail latency with one replica 20x slow (ms)",
        ["mode", "p50", "p99", "max", "hedges", "hedge wins"],
        rows,
    )
    bench_record(
        "overload_hedging",
        {
            "unhedged": {
                "p50_ms": _tail(unhedged, 0.5),
                "p99_ms": _tail(unhedged, 0.99),
                "max_ms": max(unhedged),
            },
            "hedged": {
                "p50_ms": _tail(hedged, 0.5),
                "p99_ms": _tail(hedged, 0.99),
                "max_ms": max(hedged),
                "hedges": gateway.hedges,
                "hedge_wins": gateway.hedge_wins,
            },
        },
    )

    assert gateway.hedges > 0 and gateway.hedge_wins > 0, (
        "the hedged pass never hedged — tracker warmup or the hedge "
        "policy is broken"
    )
    # Reproduced claim: hedging collapses the slow-replica tail.
    assert _tail(hedged, 0.99) <= _tail(unhedged, 0.99) / 2.0, (
        f"hedged p99 {_tail(hedged, 0.99):.1f} ms is not at least 2x "
        f"better than un-hedged {_tail(unhedged, 0.99):.1f} ms"
    )
