"""Ablations for DCert's two enclave design choices.

1. **Stateless enclave (§4.1).**  The naive design keeps/loads the full
   state inside the enclave; DCert ships only Merkle update proofs.  We
   grow the chain, track the real update-proof sizes, and model the
   naive design's per-block cost of marshalling the whole serialized
   state through the Ecall boundary (EPC paging beyond 93 MB usable,
   per the calibrated cost model), extrapolating to the paper's
   motivating scale (Ethereum: ~920 GB state).

2. **Ecall batching (§2.2).**  DCert enters the enclave once per block;
   a per-transaction-Ecall design pays the transition cost `block size`
   times.  Both variants are *measured* with the busy-wait cost model
   against a real no-op enclave.
"""

from __future__ import annotations

import time

from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import print_table
from repro.sgx.costs import SGXCostModel
from repro.sgx.enclave import EnclaveHost, EnclaveProgram
from repro.sgx.platform import SGXPlatform


def _state_size_bytes(state) -> int:
    """Serialized size of the full state (what the naive design ships)."""
    return sum(len(key) + len(value) for key, value in state._tree.items())


def test_ablation_stateless_enclave(params, benchmark):
    harness = CertifiedChainHarness(params, network="ablation-stateless")
    model = SGXCostModel()
    rows = []
    checkpoints = (2, 6, 10)
    for block_index in range(1, checkpoints[-1] + 1):
        timing = harness.add_and_certify(
            harness.generator.block_txs("KV", params.default_block_size)
        )
        if block_index in checkpoints:
            state_bytes = _state_size_bytes(harness.issuer.node.state)
            naive_paging_s = model.paging_charge(state_bytes)
            rows.append(
                [
                    block_index,
                    timing.update_proof_bytes,
                    state_bytes,
                    round(state_bytes / max(1, timing.update_proof_bytes), 1),
                    round(naive_paging_s * 1000, 3),
                ]
            )
    # The paper's motivating extrapolation: mainnet-scale state.
    for label, state_bytes in (
        ("1 GB state", 1 << 30),
        ("920 GB state (Ethereum)", 920 * (1 << 30)),
    ):
        rows.append(
            [
                label,
                rows[-1][1],
                state_bytes,
                round(state_bytes / max(1, rows[-1][1]), 1),
                round(model.paging_charge(state_bytes) * 1000, 1),
            ]
        )
    print_table(
        "Ablation 1 — stateless enclave: update proof vs full state shipped",
        ["block / scale", "proof B (DCert)", "state B (naive)",
         "naive/DCert ratio", "naive paging ms"],
        rows,
    )
    # At bench scale the whole state is tiny (the naive design is even
    # competitive — honest observation); the design decision pays off at
    # real scale, where the proof stays constant while the naive payload
    # is the full state: orders of magnitude apart, plus hours of paging.
    proof_bytes = rows[2][1]
    mainnet_state = rows[-1][2]
    assert mainnet_state > proof_bytes * 1_000_000
    assert model.paging_charge(mainnet_state) > 1000  # seconds

    benchmark.pedantic(
        lambda: harness.add_and_certify(
            harness.generator.block_txs("KV", params.default_block_size)
        ),
        rounds=3,
        iterations=1,
    )


class _NoOpProgram(EnclaveProgram):
    ECALLS = ("noop",)

    def noop(self) -> None:
        return None


def test_ablation_ecall_batching(params, benchmark):
    host = EnclaveHost(
        _NoOpProgram(), SGXPlatform(seed=b"ablation"), cost_model=SGXCostModel()
    )

    def batched() -> float:
        started = time.perf_counter()
        host.ecall("noop")
        return time.perf_counter() - started

    def per_transaction(block_size: int) -> float:
        started = time.perf_counter()
        for _ in range(block_size):
            host.ecall("noop")
        return time.perf_counter() - started

    rows = []
    for block_size in params.block_sizes:
        # Average over repetitions to stabilize the tiny measurements.
        repeats = 50
        one = sum(batched() for _ in range(repeats)) / repeats
        many = sum(per_transaction(block_size) for _ in range(repeats)) / repeats
        rows.append(
            [
                block_size,
                round(one * 1e6, 2),
                round(many * 1e6, 2),
                round(many / one, 1),
            ]
        )
    print_table(
        "Ablation 2 — one Ecall per block vs one per transaction "
        "(transition cost only)",
        ["txs/block", "batched us", "per-tx us", "ratio"],
        rows,
    )
    # Per-tx transitions must scale with the block size.
    assert rows[-1][3] > params.block_sizes[-1] * 0.5

    benchmark(batched)


def test_ablation_lazy_vs_eager_proofs(params, benchmark):
    """Eager (one Ecall with the full update proof) vs lazy (Ocall per
    touched cell) — both real code paths, same security checks.

    Expected: lazy pays 2 transitions per cell and loses by a margin
    that grows with the block's state footprint, vindicating the §2.2
    design rule the paper follows.
    """
    import time

    from repro.bench.harness import CertifiedChainHarness
    from repro.core.issuer import attach_lazy_proof_service, gen_cert_lazy

    rows = []
    for block_size in params.block_sizes[:3]:
        harness = CertifiedChainHarness(
            params, network=f"ablation-lazy-{block_size}"
        )
        attach_lazy_proof_service(harness.issuer)
        eager_s, lazy_s, ocalls = [], [], []
        for _ in range(3):
            block, _ = harness.builder.add_block(
                harness.generator.block_txs("KV", block_size)
            )
            started = time.perf_counter()
            lazy_cert = gen_cert_lazy(harness.issuer, block)
            lazy_s.append(time.perf_counter() - started)
            ocalls.append(harness.issuer.enclave.ledger.ocalls)
            started = time.perf_counter()
            eager_cert, _, _ = harness.issuer.gen_cert(block)
            eager_s.append(time.perf_counter() - started)
            assert lazy_cert.sig == eager_cert.sig
            harness.issuer.process_block(block)
        per_block_ocalls = (
            (ocalls[-1] - (ocalls[0] - ocalls[0])) / len(ocalls)
            if len(ocalls) == 1
            else (ocalls[-1] - ocalls[0]) / (len(ocalls) - 1)
        )
        rows.append(
            [
                block_size,
                round(sum(eager_s) / len(eager_s) * 1000, 1),
                round(sum(lazy_s) / len(lazy_s) * 1000, 1),
                int(per_block_ocalls),
            ]
        )
    print_table(
        "Ablation 3 — eager update proof (1 Ecall) vs lazy fetching "
        "(Ocall per cell)",
        ["txs/block", "eager ms", "lazy ms", "ocalls/block"],
        rows,
    )
    # Lazy must pay transitions proportional to touched cells.
    assert rows[-1][3] > rows[0][3]

    harness = CertifiedChainHarness(params, network="ablation-lazy-bench")
    attach_lazy_proof_service(harness.issuer)

    def lazy_block():
        block, _ = harness.builder.add_block(
            harness.generator.block_txs("KV", params.block_sizes[0])
        )
        gen_cert_lazy(harness.issuer, block)
        harness.issuer.process_block(block)

    benchmark.pedantic(lazy_block, rounds=3, iterations=1)
