"""Fig. 8 — Block certificate construction cost per Blockbench workload.

For each of DN / CPU / IO / KV / SB, certify a run of blocks and break
the per-block construction time into the paper's components:

* *outside* — the untrusted pre-processing (transaction execution for
  read/write sets + Merkle proof generation; Alg. 1 lines 2-3);
* *inside*  — the trusted work inside the enclave (Alg. 2);
* *overhead* — the enclave surcharge (Ecall transitions, the calibrated
  in-enclave slowdown, EPC paging);
* *slowdown* = (inside + overhead) / inside — the paper observes at
  most ~1.8x.

Expected shape: inside-enclave work dominates; DN is cheapest; IO ships
the largest update proofs; the compute-heavy workloads (CPU, IO) dilute
the enclave overhead ratio.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import bench_record, print_table


def _workload_breakdown(params, workload):
    harness = CertifiedChainHarness(params, network=f"fig8-{workload}")
    if workload == "SB":
        harness.setup_smallbank()
        harness.timings.clear()
    harness.grow_workload(
        workload, params.cert_blocks, params.default_block_size
    )
    mean = harness.mean_timing(skip=1)
    return harness, mean


def test_fig8_certificate_construction(params, benchmark):
    rows = []
    means = {}
    for workload in params.workloads:
        _, mean = _workload_breakdown(params, workload)
        means[workload] = mean
        slowdown = (
            (mean.inside_s + mean.enclave_overhead_s) / mean.inside_s
            if mean.inside_s
            else 1.0
        )
        rows.append(
            [
                workload,
                round(mean.total_s * 1000, 1),
                round(mean.outside_s * 1000, 1),
                round(mean.inside_s * 1000, 1),
                round(mean.enclave_overhead_s * 1000, 1),
                round(slowdown, 2),
                mean.update_proof_bytes,
            ]
        )
    print_table(
        "Fig. 8 — certificate construction per workload "
        f"(block size {params.default_block_size})",
        ["workload", "total ms", "outside ms", "inside ms", "overhead ms",
         "slowdown", "proof B"],
        rows,
    )
    bench_record(
        "fig8_cert_construction",
        {r[0]: dict(zip(
            ["total_ms", "outside_ms", "inside_ms", "overhead_ms",
             "slowdown", "proof_bytes"], r[1:]))
         for r in rows},
    )

    # Reproduced claims.
    for workload, mean in means.items():
        in_enclave = mean.inside_s + mean.enclave_overhead_s
        assert in_enclave > mean.outside_s, (
            f"{workload}: inside-enclave work should dominate"
        )
        if mean.inside_s:
            assert (in_enclave / mean.inside_s) <= 1.85
    assert means["DN"].update_proof_bytes == 0
    assert means["IO"].update_proof_bytes == max(
        m.update_proof_bytes for m in means.values()
    )

    # pytest-benchmark target: one KV block certification end to end.
    bench_harness = CertifiedChainHarness(params, network="fig8-bench")

    def one_block():
        bench_harness.add_and_certify(
            bench_harness.generator.block_txs("KV", params.default_block_size)
        )

    benchmark.pedantic(one_block, rounds=3, iterations=1)
