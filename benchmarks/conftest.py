"""Shared benchmark fixtures.

Benchmarks run with the SGX cost model ENABLED (its busy-wait charges
are part of what the figures measure).  The active parameter profile is
chosen by ``REPRO_BENCH_SCALE`` (quick | full); see
``repro.bench.params`` and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.params import load_params


@pytest.fixture(scope="session")
def params():
    active = load_params()
    print(f"\n[bench] parameter profile: {active.name}")
    return active
