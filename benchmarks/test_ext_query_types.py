"""Extension — all four certified query types side by side.

Not a paper figure: §5.1 claims DCert supports "any queries where
authenticated query processing algorithms are available", naming
range/keyword queries and aggregations.  This bench runs the four query
families this reproduction implements over one SmallBank+KVStore chain
and reports, for each: SP latency, proof size, and client verification
time — the versatility claim made concrete.

| query | certified index |
|---|---|
| historical window | two-level MPT + MB-tree |
| conjunctive keywords | keyword inverted index |
| SUM/COUNT/MIN/MAX aggregate | aggregate MB-tree |
| current-value range | tombstoned value-range index |
"""

from __future__ import annotations

import time

from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import print_table
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    ValueRangeIndexSpec,
    verify_aggregate_answer,
    verify_history_versions,
    verify_keyword_results,
    verify_value_range_answer,
)


def _timed(callable_):
    started = time.perf_counter()
    result = callable_()
    return result, (time.perf_counter() - started) * 1000


def test_all_query_types(params, benchmark):
    specs = [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
        BalanceAggregateIndexSpec(name="aggregate"),
        ValueRangeIndexSpec(name="range"),
    ]
    harness = CertifiedChainHarness(params, index_specs=specs, network="ext-queries")
    harness.setup_smallbank()
    blocks = max(8, params.cert_blocks)
    for index in range(blocks):
        workload = "SB" if index % 2 == 0 else "KV"
        harness.grow_workload(workload, 1, params.default_block_size)
    issuer = harness.issuer
    height = issuer.node.height

    account = "a1"
    kv_account = None
    for certified in issuer.certified:
        for tx in certified.block.transactions:
            if tx.contract == "kvstore" and tx.method == "put":
                kv_account = tx.args[0]
                break
        if kv_account:
            break
    assert kv_account is not None

    rows = []

    answer, latency = _timed(
        lambda: issuer.indexes["history"].query_history(kv_account, 1, height)
    )
    ok, verify_ms = _timed(
        lambda: verify_history_versions(issuer.index_root("history"), answer)
    )
    assert ok
    rows.append(
        ["history window", f"{len(answer.versions)} versions",
         round(latency, 3), answer.proof_size_bytes(), round(verify_ms, 3)]
    )

    keyword_answer, latency = _timed(
        lambda: issuer.indexes["keyword"].query_conjunctive([kv_account])
    )
    ok, verify_ms = _timed(
        lambda: verify_keyword_results(issuer.index_root("keyword"), keyword_answer)
    )
    assert ok
    rows.append(
        ["keyword AND", f"{len(keyword_answer.results)} txs",
         round(latency, 3), keyword_answer.proof_size_bytes(), round(verify_ms, 3)]
    )

    agg_answer, latency = _timed(
        lambda: issuer.indexes["aggregate"].query_aggregate(account, 1, height)
    )
    ok, verify_ms = _timed(
        lambda: verify_aggregate_answer(issuer.index_root("aggregate"), agg_answer)
    )
    assert ok
    described = (
        f"{agg_answer.aggregate.count} pts" if agg_answer.aggregate else "empty"
    )
    rows.append(
        ["aggregate SUM/AVG", described,
         round(latency, 3), agg_answer.proof_size_bytes(), round(verify_ms, 3)]
    )

    range_answer, latency = _timed(
        lambda: issuer.indexes["range"].query_range(900, 1100)
    )
    ok, verify_ms = _timed(
        lambda: verify_value_range_answer(issuer.index_root("range"), range_answer)
    )
    assert ok
    rows.append(
        ["value range", f"{len(range_answer.matches)} accounts",
         round(latency, 3), range_answer.proof_size_bytes(), round(verify_ms, 3)]
    )

    print_table(
        "Extension — the four certified query types "
        f"(chain {height} blocks, {params.num_accounts} accounts)",
        ["query", "result", "SP ms", "proof B", "verify ms"],
        rows,
    )

    # All four verified above; proof sizes must be client-friendly.
    assert all(row[3] < 200_000 for row in rows)

    benchmark(
        lambda: issuer.indexes["history"].query_history(kv_account, 1, height)
    )
