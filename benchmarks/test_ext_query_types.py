"""Extension — all four certified query types side by side.

Not a paper figure: §5.1 claims DCert supports "any queries where
authenticated query processing algorithms are available", naming
range/keyword queries and aggregations.  This bench runs the four query
families this reproduction implements over one SmallBank+KVStore chain
and reports, for each: SP latency, proof size, and client verification
time — the versatility claim made concrete.

| query | certified index |
|---|---|
| historical window | two-level MPT + MB-tree |
| conjunctive keywords | keyword inverted index |
| SUM/COUNT/MIN/MAX aggregate | aggregate MB-tree |
| current-value range | tombstoned value-range index |
"""

from __future__ import annotations

import time

from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import print_table
from repro.query import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    ValueRangeQuery,
    verify,
)
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    ValueRangeIndexSpec,
)


def _timed(callable_):
    started = time.perf_counter()
    result = callable_()
    return result, (time.perf_counter() - started) * 1000


def test_all_query_types(params, benchmark):
    specs = [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
        BalanceAggregateIndexSpec(name="aggregate"),
        ValueRangeIndexSpec(name="range"),
    ]
    harness = CertifiedChainHarness(params, index_specs=specs, network="ext-queries")
    harness.setup_smallbank()
    blocks = max(8, params.cert_blocks)
    for index in range(blocks):
        workload = "SB" if index % 2 == 0 else "KV"
        harness.grow_workload(workload, 1, params.default_block_size)
    issuer = harness.issuer
    height = issuer.node.height

    account = "a1"
    kv_account = None
    for certified in issuer.certified:
        for tx in certified.block.transactions:
            if tx.contract == "kvstore" and tx.method == "put":
                kv_account = tx.args[0]
                break
        if kv_account:
            break
    assert kv_account is not None

    rows = []

    # Every family goes through the typed request/answer API and the
    # unified client-side verify() entry point.
    history_request = HistoryQuery(
        index="history", account=kv_account, t_from=1, t_to=height
    )
    answer, latency = _timed(
        lambda: QueryAnswer(
            request=history_request,
            payload=issuer.indexes["history"].query_history(
                kv_account, 1, height
            ),
        )
    )
    ok, verify_ms = _timed(
        lambda: verify(history_request, answer, issuer.index_root)
    )
    assert ok
    rows.append(
        ["history window", f"{len(answer.payload.versions)} versions",
         round(latency, 3), answer.proof_size_bytes(), round(verify_ms, 3)]
    )

    keyword_request = KeywordQuery(index="keyword", keywords=(kv_account,))
    keyword_answer, latency = _timed(
        lambda: QueryAnswer(
            request=keyword_request,
            payload=issuer.indexes["keyword"].query_conjunctive([kv_account]),
        )
    )
    ok, verify_ms = _timed(
        lambda: verify(keyword_request, keyword_answer, issuer.index_root)
    )
    assert ok
    rows.append(
        ["keyword AND", f"{len(keyword_answer.payload.results)} txs",
         round(latency, 3), keyword_answer.proof_size_bytes(),
         round(verify_ms, 3)]
    )

    agg_request = AggregateQuery(
        index="aggregate", account=account, t_from=1, t_to=height
    )
    agg_answer, latency = _timed(
        lambda: QueryAnswer(
            request=agg_request,
            payload=issuer.indexes["aggregate"].query_aggregate(
                account, 1, height
            ),
        )
    )
    ok, verify_ms = _timed(
        lambda: verify(agg_request, agg_answer, issuer.index_root)
    )
    assert ok
    described = (
        f"{agg_answer.payload.aggregate.count} pts"
        if agg_answer.payload.aggregate else "empty"
    )
    rows.append(
        ["aggregate SUM/AVG", described,
         round(latency, 3), agg_answer.proof_size_bytes(), round(verify_ms, 3)]
    )

    range_request = ValueRangeQuery(index="range", lo=900, hi=1100)
    range_answer, latency = _timed(
        lambda: QueryAnswer(
            request=range_request,
            payload=issuer.indexes["range"].query_range(900, 1100),
        )
    )
    ok, verify_ms = _timed(
        lambda: verify(range_request, range_answer, issuer.index_root)
    )
    assert ok
    rows.append(
        ["value range", f"{len(range_answer.payload.matches)} accounts",
         round(latency, 3), range_answer.proof_size_bytes(), round(verify_ms, 3)]
    )

    print_table(
        "Extension — the four certified query types "
        f"(chain {height} blocks, {params.num_accounts} accounts)",
        ["query", "result", "SP ms", "proof B", "verify ms"],
        rows,
    )

    # All four verified above; proof sizes must be client-friendly.
    assert all(row[3] < 200_000 for row in rows)

    benchmark(
        lambda: issuer.indexes["history"].query_history(kv_account, 1, height)
    )
