"""Fig. 7 — Bootstrapping cost: storage (7a) and validation time (7b).

Sweeps the chain length and measures, at each checkpoint:

* the traditional light client's storage (all headers) and full-chain
  validation time — both linear in chain length;
* the FlyClient-style sampling client's proof size and verification
  time — logarithmic (related-work extension, §8.1);
* the DCert superlight client's storage (one header + one certificate)
  and validation time — constant.

The paper reports 2.97 KB / 0.14 ms constants on native crypto; our
absolute numbers differ (pure-Python ECDSA, compact simulated IAS
report) but the *constancy* and the linear/log/constant separation are
the reproduced results.  Rows extrapolating to the paper's 10^5 blocks
and Ethereum's 1.56x10^7 headers are derived from the measured
per-header costs.
"""

from __future__ import annotations

import time

from repro.baselines.flyclient import FlyClientProver, FlyClientVerifier
from repro.baselines.nipopow import NipopowProver, NipopowVerifier
from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import print_table
from repro.chain.lightclient import LightClient
from repro.core.superlight import SuperlightClient
from repro.sgx.costs import cost_model_disabled


def _build_certified_chain(params):
    harness = CertifiedChainHarness(params, network="fig7")
    with cost_model_disabled():  # chain construction is not the metric
        harness.grow_workload(
            "KV", params.bootstrap_chain_lengths[-1], params.bootstrap_block_size
        )
    return harness


def _measure_light(harness, length):
    headers = harness.builder.headers()
    client = LightClient(headers[0], harness.builder.pow)
    started = time.perf_counter()
    client.bootstrap(headers[1 : length + 1])
    elapsed_ms = (time.perf_counter() - started) * 1000
    return client.storage_bytes(), elapsed_ms


def _measure_flyclient(harness, length):
    prover = FlyClientProver(harness.builder.headers()[: length + 1])
    proof = prover.bootstrap_proof(seed=7)
    verifier = FlyClientVerifier(harness.builder.pow)
    started = time.perf_counter()
    assert verifier.verify(proof)
    elapsed_ms = (time.perf_counter() - started) * 1000
    return proof.size_bytes(), elapsed_ms


def _measure_nipopow(harness, length):
    prover = NipopowProver(
        harness.builder.headers()[: length + 1], harness.builder.pow
    )
    proof = prover.bootstrap_proof(m=3, k=3)
    verifier = NipopowVerifier(harness.builder.pow)
    started = time.perf_counter()
    assert verifier.verify(proof)
    elapsed_ms = (time.perf_counter() - started) * 1000
    return proof.size_bytes(), elapsed_ms


def _measure_superlight(harness, length):
    certified = harness.issuer.certified[length - 1]
    client = SuperlightClient(
        harness.issuer.measurement, harness.ias.public_key
    )
    started = time.perf_counter()
    assert client.validate_chain(certified.block.header, certified.certificate)
    first_ms = (time.perf_counter() - started) * 1000
    # Steady state (report already checked once per enclave, §4.3).
    started = time.perf_counter()
    client.validate_chain(certified.block.header, certified.certificate)
    steady_ms = (time.perf_counter() - started) * 1000
    return client.storage_bytes(), first_ms, steady_ms


def test_fig7_bootstrap_costs(params, benchmark):
    harness = _build_certified_chain(params)

    rows = []
    measured = {}
    for length in params.bootstrap_chain_lengths:
        light_bytes, light_ms = _measure_light(harness, length)
        fly_bytes, fly_ms = _measure_flyclient(harness, length)
        nipopow_bytes, nipopow_ms = _measure_nipopow(harness, length)
        sl_bytes, sl_first_ms, sl_steady_ms = _measure_superlight(harness, length)
        measured[length] = (light_bytes, light_ms, sl_bytes, sl_steady_ms)
        rows.append(
            [
                length,
                light_bytes,
                round(light_ms, 3),
                fly_bytes,
                round(fly_ms, 3),
                nipopow_bytes,
                round(nipopow_ms, 3),
                sl_bytes,
                round(sl_first_ms, 3),
                round(sl_steady_ms, 4),
            ]
        )

    # Extrapolate the linear baseline to paper / mainnet scales.
    longest = params.bootstrap_chain_lengths[-1]
    light_bytes, light_ms, sl_bytes, sl_ms = measured[longest]
    per_header_bytes = light_bytes / longest
    per_header_ms = light_ms / longest
    for target in (100_000, 15_600_000):
        rows.append(
            [
                f"{target:,}*",
                int(per_header_bytes * target),
                round(per_header_ms * target, 1),
                "-",
                "-",
                "-",
                "-",
                sl_bytes,
                "-",
                round(sl_ms, 4),
            ]
        )

    print_table(
        "Fig. 7 — bootstrapping cost vs chain length"
        " (* = extrapolated from measured per-header cost)",
        [
            "blocks",
            "light B (7a)",
            "light ms (7b)",
            "flyclient B",
            "flyclient ms",
            "nipopow B",
            "nipopow ms",
            "superlight B",
            "superlight ms (1st)",
            "superlight ms",
        ],
        rows,
    )

    # Reproduced claims: constant superlight cost, linear light client.
    storages = [measured[length][2] for length in params.bootstrap_chain_lengths]
    assert max(storages) - min(storages) <= 8
    first, last = params.bootstrap_chain_lengths[0], longest
    growth = measured[last][0] / measured[first][0]
    assert growth > 0.8 * (last / first)

    # pytest-benchmark target: steady-state superlight validation.
    certified = harness.issuer.certified[-1]
    client = SuperlightClient(harness.issuer.measurement, harness.ias.public_key)
    client.validate_chain(certified.block.header, certified.certificate)
    benchmark(client.validate_chain, certified.block.header, certified.certificate)
