"""Fleet scaling — query throughput vs replica count, and the cache.

The gateway's pipelined dispatch (``call_many``) over busy-worker
replicas (``service_time_ms``) is what makes replica count matter on
the virtual clock: M queries over N single-threaded replicas complete
in roughly M/N service times instead of M.  The sweep below serves the
same query batch against fleets of 1, 2, and 4 replicas and reports
modeled throughput; the second benchmark repeats a served batch and
shows the warm verified-answer cache doing zero RPC round trips.

Reproduced claims:

* 4 replicas serve the batch at >= 2.5x the modeled throughput of 1
  (sublinear only because of per-batch fixed costs: switch
  verification, bus latency);
* a warm cache hit performs no network round trips at all — the
  answer was already verified at the current certified roots.

``REPRO_FLEET_QUERIES`` overrides the batch size (default 24).
"""

from __future__ import annotations

import os

from repro.bench.harness import fresh_vm
from repro.bench.reporting import bench_record, print_table
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core import (
    CertificateIssuer,
    ClientConfig,
    compute_expected_measurement,
    connect,
)
from repro.core.issuer import IssuerService
from repro.net import HealthPolicy, MessageBus, QueryGateway, RetryPolicy
from repro.query import HistoryQuery, QueryService
from repro.query.indexes import AccountHistoryIndexSpec
from repro.query.provider import QueryServiceProvider
from repro.sgx.attestation import AttestationService
from repro.sgx.costs import cost_model_disabled
from repro.crypto import generate_keypair

_NETWORK = "fleet-bench"
_BLOCKS = 8
_SERVICE_MS = 50.0
_FLEETS = (1, 2, 4)


def _batch_size() -> int:
    return int(os.environ.get("REPRO_FLEET_QUERIES", "24"))


def _build_world():
    """One certified chain shared by every fleet size."""
    keypair = generate_keypair(b"fleet-bench-user")
    builder = ChainBuilder(difficulty_bits=4, network=_NETWORK)
    genesis, state = make_genesis(network=_NETWORK)
    ias = AttestationService(seed=b"fleet-bench-ias")
    # One index keeps the per-replica switch verification (an
    # index_root round trip per certified index) from dominating the
    # small smoke-tier batches.
    specs = [AccountHistoryIndexSpec(name="history")]
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=specs, ias=ias, key_seed=b"fleet-bench-enclave",
    )
    provider = QueryServiceProvider(
        genesis, state, fresh_vm(), builder.pow, specs
    )
    nonce = 0
    for _ in range(_BLOCKS):
        txs = []
        for _ in range(3):
            txs.append(sign_transaction(
                keypair.private, nonce, "kvstore", "put",
                (f"k{nonce % 4}", f"v{nonce}"),
            ))
            nonce += 1
        block, _ = builder.add_block(txs)
        issuer.process_block(block)
        provider.ingest_block(block)
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec for spec in specs},
    )
    return issuer, provider, measurement, ias


def _make_fleet(world, replicas: int, queries: int):
    issuer, provider, measurement, ias = world
    bus = MessageBus(default_latency_ms=5.0)
    IssuerService(bus, "ci", issuer)
    names = [f"sp{i + 1}" for i in range(replicas)]
    for name in names:
        QueryService(bus, name, provider, service_time_ms=_SERVICE_MS)
    gateway = QueryGateway(
        bus, "gw", names,
        policy=RetryPolicy(
            timeout_ms=_SERVICE_MS * (queries + 4) + 1_000.0,
            max_attempts=1,
        ),
        health=HealthPolicy(failure_threshold=2),
    )
    client = connect(ClientConfig(
        measurement=measurement, ias_public_key=ias.public_key,
        bus=bus, name="client",
        issuers=("ci",), gateway=gateway,
    ))
    client.bootstrap()
    return bus, client, gateway


def _requests(queries: int):
    return [
        HistoryQuery(
            index="history",
            account=f"k{i % 4}",
            t_from=1,
            t_to=1 + i % _BLOCKS,
        )
        for i in range(queries)
    ]


def test_throughput_scales_with_replicas():
    queries = _batch_size()
    requests = _requests(queries)
    with cost_model_disabled():  # the busy model, not ecall charges
        world = _build_world()
        rows, record, throughput = [], {}, {}
        for replicas in _FLEETS:
            bus, client, gateway = _make_fleet(world, replicas, queries)
            started = bus.clock_ms
            answers = client.query_many(requests)
            elapsed_ms = bus.clock_ms - started
            assert len(answers) == queries
            qps = queries / (elapsed_ms / 1000.0)
            throughput[replicas] = qps
            rows.append([
                replicas, queries, round(elapsed_ms, 1), round(qps, 1),
                round(qps / throughput[_FLEETS[0]], 2),
            ])
            record[f"replicas{replicas}"] = {
                "replicas": replicas,
                "queries": queries,
                "virtual_ms": elapsed_ms,
                "modeled_qps": qps,
            }
    print_table(
        f"Fleet throughput vs replica count "
        f"({queries} queries, {_SERVICE_MS:.0f} ms service time)",
        ["replicas", "queries", "virtual ms", "modeled q/s", "speedup"],
        rows,
    )
    bench_record("fleet_scaling", record)

    # Reproduced claim: 4 replicas >= 2.5x the throughput of 1.
    speedup = throughput[4] / throughput[1]
    assert speedup >= 2.5, (
        f"4-replica fleet only {speedup:.2f}x a single replica"
    )
    assert throughput[2] > throughput[1]


def test_warm_cache_hits_do_zero_round_trips():
    queries = _batch_size()
    requests = _requests(queries)
    with cost_model_disabled():
        world = _build_world()
        bus, client, gateway = _make_fleet(world, 2, queries)
        cold = client.query_many(requests)
        calls_before = client.rpc.calls + gateway.rpc.calls
        clock_before = bus.clock_ms
        warm = client.query_many(requests)
    assert warm == cold
    assert client.rpc.calls + gateway.rpc.calls == calls_before, (
        "warm cache hits must not touch the network"
    )
    assert bus.clock_ms == clock_before  # not even virtual time passes
    assert client.cache.hits >= queries
    print_table(
        "Warm verified-answer cache",
        ["batch", "cold rpc calls", "warm rpc calls", "cache hits"],
        [[queries, calls_before, 0, client.cache.hits]],
    )
    bench_record(
        "fleet_cache",
        {
            "batch": queries,
            "cold_rpc_calls": calls_before,
            "warm_rpc_calls": 0,
            "cache_hits": client.cache.hits,
        },
    )
