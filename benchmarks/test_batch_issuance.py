"""Batched certificate issuance — speedup vs batch size.

Certify the same KV workload sequentially (one ecall per block + one
per index update) and through the batched pipeline at several batch
sizes K.  The modeled certification cost per block is the cost-model
ledger delta (in-enclave work + transitions + slowdown + paging) over
the run; batching amortizes the anchor-certificate verifications and
the enclave transitions, and the proof cache stops consecutive blocks
from re-shipping (and re-verifying) proofs for overlapping state.

Reproduced claims:

* K = 8 cuts the modeled per-block certification cost by >= 2x against
  the sequential path;
* the speedup plateaus rather than regresses past K = 8 (the per-block
  integrity work is a floor batching cannot remove; the deterministic
  transition overhead keeps shrinking with K);
* the batched path's certificates carry exactly the sequential path's
  digests and signatures (the determinism guarantee, checked in full
  in tests/core/test_batch_differential.py);
* the proof cache hits on the workload's hot keys (hit rate > 0).
"""

from __future__ import annotations

from repro import obs
from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import bench_record, print_table
from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec

#: Transactions per block.  The replay cost (one ECDSA verify per tx)
#: is identical on both paths, so small blocks isolate the amortizable
#: fraction (anchor-certificate verifies + transitions) the batch saves.
_BLOCK_SIZE = 4


def _specs():
    return [
        AccountHistoryIndexSpec(name="history"),
        KeywordIndexSpec(name="keyword"),
    ]


def _run(params, batch_size: int):
    """Certify one KV run at ``batch_size`` (1 = sequential path)."""
    harness = CertifiedChainHarness(
        params,
        index_specs=_specs(),
        network="batch-bench",
        proof_cache_entries=512 if batch_size > 1 else 0,
    )
    blocks = max(params.cert_blocks, 2 * batch_size)
    before = harness.issuer.enclave.ledger.snapshot()
    if batch_size == 1:
        harness.grow_workload("KV", blocks, _BLOCK_SIZE)
    else:
        harness.grow_workload_batched(
            "KV", blocks, _BLOCK_SIZE, batch_size=batch_size
        )
    delta = harness.issuer.enclave.ledger.delta(before)
    modeled_s = delta.in_enclave_s + delta.total_overhead_s()
    return harness, blocks, delta, modeled_s / blocks


def test_batch_issuance_speedup(params, benchmark):
    sweep = (1, 4, 8, 16)
    rows = []
    record = {}
    per_block = {}
    harnesses = {}
    with obs.observability():
        obs.registry().reset()
        for batch_size in sweep:
            harness, blocks, delta, cost_s = _run(params, batch_size)
            harnesses[batch_size] = harness
            per_block[batch_size] = cost_s
            stats = harness.issuer.proof_cache.stats()
            rows.append([
                batch_size,
                blocks,
                delta.ecalls,
                round(cost_s * 1000, 2),
                round(per_block[1] / cost_s, 2),
                f"{stats['hit_rate']:.0%}",
                delta.peak_epc_bytes,
            ])
            record[f"K{batch_size}"] = {
                "blocks": blocks,
                "ecalls": delta.ecalls,
                "modeled_cost_per_block_ms": cost_s * 1000,
                "speedup_vs_sequential": per_block[1] / cost_s,
                "cache_hit_rate": stats["hit_rate"],
                "cache_hits": stats["hits"],
                "cache_misses": stats["misses"],
                "peak_epc_bytes": delta.peak_epc_bytes,
            }
        snapshot = obs.registry().snapshot()
    print_table(
        "Batched issuance — modeled certification cost vs batch size "
        f"(block size {_BLOCK_SIZE}, 2 indexes)",
        ["K", "blocks", "ecalls", "cost/blk ms", "speedup", "cache hits",
         "peak EPC B"],
        rows,
    )
    record["metrics"] = {
        "transitions_saved": snapshot["counters"].get(
            "issuer.batch_transitions_saved", 0
        ),
        "proof_cache_hit_rate": snapshot["gauges"].get(
            "issuer.proof_cache_hit_rate", 0.0
        ),
        "proof_cache_entries": snapshot["gauges"].get(
            "issuer.proof_cache_entries", 0
        ),
    }
    bench_record("batch_issuance", record)

    # Reproduced claims.
    assert per_block[1] / per_block[8] >= 2.0, (
        f"K=8 speedup {per_block[1] / per_block[8]:.2f}x < 2x"
    )
    assert per_block[4] < per_block[1]
    # Past K=8 the cost plateaus: still >=2x vs sequential (in_enclave_s
    # is measured wall time, so K16-vs-K8 itself is within noise), while
    # the deterministic transition overhead keeps strictly shrinking.
    assert per_block[1] / per_block[16] >= 2.0
    assert (
        record["K16"]["ecalls"] / record["K16"]["blocks"]
        < record["K8"]["ecalls"] / record["K8"]["blocks"]
    )
    assert record["K8"]["cache_hit_rate"] > 0.0
    assert record["metrics"]["transitions_saved"] > 0

    # Determinism spot check: the batched run signed exactly the same
    # digests with the same signatures as the sequential run (reports
    # differ only because each harness platform has its own fused key).
    seq, k8 = harnesses[1].issuer, harnesses[8].issuer
    # Runs may differ in length (blocks = max(cert_blocks, 2K)); the
    # common prefix is the same mined chain and must certify identically.
    assert min(len(seq.certified), len(k8.certified)) >= params.cert_blocks
    for a, b in zip(seq.certified, k8.certified):
        assert a.certificate.dig == b.certificate.dig
        assert a.certificate.sig == b.certificate.sig
        assert a.index_roots == b.index_roots

    # pytest-benchmark target: one K=8 batch, staged and certified.
    bench_harness = CertifiedChainHarness(
        params,
        index_specs=_specs(),
        network="batch-bench-pedantic",
        proof_cache_entries=512,
    )

    def one_batch():
        bench_harness.grow_workload_batched("KV", 8, _BLOCK_SIZE, batch_size=8)

    benchmark.pedantic(one_batch, rounds=3, iterations=1)
