"""Fig. 9 — Impact of block size on certificate construction (KV, SB).

Sweeps the number of transactions per block for the two macro
benchmarks.  Expected shape: total construction time grows with block
size (more execution, bigger read/write sets, bigger Merkle proofs),
and the absolute enclave overhead grows with it because more proof
bytes are marshalled through the Ecall boundary.
"""

from __future__ import annotations

from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import print_table


def _sweep(params, workload):
    points = []
    for block_size in params.block_sizes:
        harness = CertifiedChainHarness(
            params, network=f"fig9-{workload}-{block_size}"
        )
        if workload == "SB":
            harness.setup_smallbank()
            harness.timings.clear()
        harness.grow_workload(workload, params.cert_blocks, block_size)
        points.append((block_size, harness.mean_timing(skip=1)))
    return points


def test_fig9_block_size_impact(params, benchmark):
    rows = []
    sweeps = {}
    for workload in ("KV", "SB"):
        points = _sweep(params, workload)
        sweeps[workload] = points
        for block_size, mean in points:
            rows.append(
                [
                    workload,
                    block_size,
                    round(mean.total_s * 1000, 1),
                    round(mean.outside_s * 1000, 1),
                    round(mean.inside_s * 1000, 1),
                    round(mean.enclave_overhead_s * 1000, 1),
                    mean.update_proof_bytes,
                ]
            )
    print_table(
        "Fig. 9 — certificate construction vs block size",
        ["workload", "txs/block", "total ms", "outside ms", "inside ms",
         "overhead ms", "proof B"],
        rows,
    )

    # Reproduced claims: totals, proofs, and overheads all grow.
    for workload, points in sweeps.items():
        smallest, largest = points[0][1], points[-1][1]
        assert largest.total_s > smallest.total_s, workload
        assert largest.update_proof_bytes > smallest.update_proof_bytes, workload
        assert largest.enclave_overhead_s > smallest.enclave_overhead_s, workload

    # pytest-benchmark target: KV at the largest swept block size.
    harness = CertifiedChainHarness(params, network="fig9-bench")
    largest_size = params.block_sizes[-1]

    def one_block():
        harness.add_and_certify(
            harness.generator.block_txs("KV", largest_size)
        )

    benchmark.pedantic(one_block, rounds=3, iterations=1)
