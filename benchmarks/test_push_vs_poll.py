"""Push vs poll — RPC round trips to keep a client fleet at the tip.

Polling charges the serving tier ``clients x polls`` round trips
whether or not anything changed; the subscription hub charges two
round trips per client *total* (bootstrap + subscribe) and then streams
every new certified tip over the bus, acks riding back outside the RPC
call path.  The first benchmark drives both tiers over the same
certified chain and reports total client RPC calls; the reproduced
claim is that push delivers every new tip to every subscribed client
with **>= 5x fewer round trips** than per-block polling.

The second benchmark is the recovery half: a subscriber that loses its
link for the whole stream, reconnects, and resyncs must end up
byte-identical (``to_json``) to a client that freshly polled the tip.

``REPRO_PUSH_CLIENTS`` sizes the fleet (default 64; `make push-smoke`
runs 8), ``REPRO_PUSH_BLOCKS`` the stream length (default 12).
"""

from __future__ import annotations

import os

from repro.bench.harness import fresh_vm
from repro.bench.reporting import bench_record, print_table
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.core import (
    CertificateIssuer,
    ClientConfig,
    IssuerService,
    compute_expected_measurement,
    connect,
)
from repro.crypto import generate_keypair
from repro.net import FaultInjector, LinkFaults, MessageBus
from repro.net.pubsub import SubscriptionHub
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from repro.sgx.costs import cost_model_disabled

_NETWORK = "push-bench"


def _fleet_size() -> int:
    return int(os.environ.get("REPRO_PUSH_CLIENTS", "64"))


def _stream_blocks() -> int:
    return int(os.environ.get("REPRO_PUSH_BLOCKS", "12"))


def _build_chain(blocks: int):
    """A base block plus ``blocks`` stream blocks (built once)."""
    keypair = generate_keypair(b"push-bench-user")
    builder = ChainBuilder(difficulty_bits=4, network=_NETWORK)
    nonce = 0
    for _ in range(blocks + 1):
        txs = []
        for _ in range(2):
            txs.append(sign_transaction(
                keypair.private, nonce, "kvstore", "put",
                (f"k{nonce % 4}", f"v{nonce}"),
            ))
            nonce += 1
        builder.add_block(txs)
    return builder


def _fresh_tier(chain, *, clients: int, subscribe: bool):
    """A fresh issuer (base block certified) + N connected clients."""
    spec = AccountHistoryIndexSpec(name="history")
    genesis, state = make_genesis(network=_NETWORK)
    ias = AttestationService(seed=b"push-bench-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), chain.pow,
        index_specs=[spec], ias=ias, key_seed=b"push-bench-enclave",
    )
    issuer.process_block(chain.blocks[1])
    bus = MessageBus(default_latency_ms=5.0)
    injector = FaultInjector(seed=5)
    bus.install_faults(injector)
    service = IssuerService(bus, "ci", issuer)
    hub = SubscriptionHub.embedded(service, history_limit=256)
    hub.attach(issuer)
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        chain.pow.difficulty_bits, {spec.name: spec},
    )
    fleet = [
        connect(ClientConfig(
            measurement=measurement, ias_public_key=ias.public_key,
            bus=bus, name=f"c{i}", issuers=("ci",),
            hub="ci" if subscribe else None,
            bootstrap=True, subscribe=subscribe,
        ))
        for i in range(clients)
    ]
    return bus, injector, issuer, hub, measurement, ias, fleet


def test_push_fans_out_with_5x_fewer_round_trips():
    clients, blocks = _fleet_size(), _stream_blocks()
    chain = _build_chain(blocks)
    with cost_model_disabled():
        # -- polling tier: every client pulls once per new block --
        bus, _, issuer, _, _, _, pollers = _fresh_tier(
            chain, clients=clients, subscribe=False
        )
        for block in chain.blocks[2:]:
            issuer.process_block(block)
            for client in pollers:
                client.sync()
        poll_calls = sum(c.rpc.calls for c in pollers)
        assert all(
            c.latest_header.height == blocks + 1 for c in pollers
        )

        # -- push tier: subscribe once, stream the rest --
        bus, _, issuer, hub, _, _, subscribers = _fresh_tier(
            chain, clients=clients, subscribe=True
        )
        for block in chain.blocks[2:]:
            issuer.process_block(block)
            bus.run_until_idle()
        push_calls = sum(c.rpc.calls for c in subscribers)
    for client in subscribers:
        assert client.latest_header.height == blocks + 1
        assert client.push_adopted == blocks
        assert client.push_rejected == 0
    assert hub.published == blocks

    ratio = poll_calls / push_calls
    print_table(
        f"Round trips to keep {clients} clients at the tip "
        f"({blocks} new blocks)",
        ["tier", "rpc calls", "calls/client", "ratio"],
        [
            ["poll", poll_calls, round(poll_calls / clients, 1), 1.0],
            ["push", push_calls, round(push_calls / clients, 1),
             round(ratio, 1)],
        ],
    )
    bench_record("push_vs_poll", {
        "clients": clients,
        "blocks": blocks,
        "poll_rpc_calls": poll_calls,
        "push_rpc_calls": push_calls,
        "ratio": ratio,
    })
    # Reproduced claim: push needs >= 5x fewer round trips.
    assert ratio >= 5.0, (
        f"push only saved {ratio:.1f}x round trips over polling"
    )


def test_reconnecting_subscriber_ends_byte_identical_to_fresh_poller():
    blocks = _stream_blocks()
    chain = _build_chain(blocks)
    with cost_model_disabled():
        bus, injector, issuer, hub, measurement, ias, (client,) = _fresh_tier(
            chain, clients=1, subscribe=True
        )
        # The link dies; every block of the stream is certified while
        # the subscriber is unreachable.
        injector.set_link("ci", "c0", LinkFaults(drop_rate=1.0))
        injector.set_link("c0", "ci", LinkFaults(drop_rate=1.0))
        calls_while_dark = client.rpc.calls
        for block in chain.blocks[2:]:
            issuer.process_block(block)
            bus.run_until_idle()
        assert client.latest_header.height == 1
        assert client.rpc.calls == calls_while_dark  # no polling fallback

        # Reconnect: one heartbeat discovers the distance and resyncs.
        injector.set_link("ci", "c0", LinkFaults())
        injector.set_link("c0", "ci", LinkFaults())
        client.heartbeat()
        bus.run_until_idle()
        assert client.latest_header.height == blocks + 1
        assert client.push_resyncs >= 1

        # The recovered state is byte-identical to a fresh poller's.
        poller = connect(ClientConfig(
            measurement=measurement, ias_public_key=ias.public_key,
            bus=bus, name="fresh-poller", issuers=("ci",), bootstrap=True,
        ))
    assert client.client.to_json() == poller.client.to_json(), (
        "resync converged to different bytes than a fresh poll"
    )
    bench_record("push_reconnect", {
        "blocks_missed": blocks,
        "resyncs": client.push_resyncs,
        "state_bytes": client.storage_bytes(),
    })
