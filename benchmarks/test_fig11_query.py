"""Fig. 11 — Verifiable historical queries: DCert vs LineageChain.

Builds a chain of account-update transactions, indexes it both ways —
DCert's two-level MPT + MB-tree index and LineageChain's skip-list
index — then sweeps the query window's *distance from the latest
block*.  For each distance it reports query latency, proof size, and
client verification time.

Expected shape (§7.4.5): DCert beats LineageChain on latency and proof
size at every distance, and the gap *widens* with distance — the skip
list must traverse backwards from the newest version, while the MB-tree
searches from the root regardless of where the window lies.
"""

from __future__ import annotations

import time

from repro.bench.params import BenchParams
from repro.bench.reporting import print_table
from repro.bench.workloadgen import WorkloadGenerator
from repro.chain.builder import ChainBuilder
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    TwoLevelHistoryIndex,
    verify_history_versions,
)
from repro.query.lineagechain import LineageChainIndex, verify_lineage_answer


def _build_indexed_chain(params: BenchParams):
    """One hot account updated every block (worst case for traversal),
    plus background accounts, mirroring the paper's update workload."""
    generator = WorkloadGenerator(params, seed=11)
    builder = ChainBuilder(difficulty_bits=params.difficulty_bits, network="fig11")
    spec = AccountHistoryIndexSpec(name="history")
    dcert_index = TwoLevelHistoryIndex(spec)
    lineage_index = LineageChainIndex(spec)
    for height in range(1, params.query_blocks + 1):
        txs = [generator.history_update_tx(0)]
        txs.append(generator.history_update_tx(1 + height % params.query_tuples))
        block, result = builder.add_block(txs)
        dcert_index.ingest_block(block, result.write_set)
        lineage_index.ingest_block(block, result.write_set)
    return builder, dcert_index, lineage_index


def _measure_queries(params, dcert_index, lineage_index, distance_fraction):
    """Mean (latency ms, proof bytes, verify ms) over queries_per_point
    windows at the given distance, for both indexes."""
    chain_length = params.query_blocks
    distance = int(chain_length * distance_fraction)
    t_to = max(1, chain_length - distance)
    t_from = max(1, t_to - params.query_window_blocks)
    account = "acct0"

    def run(query, verify, root):
        latencies, sizes, verifies = [], [], []
        for _ in range(params.queries_per_point):
            started = time.perf_counter()
            answer = query(account, t_from, t_to)
            latencies.append(time.perf_counter() - started)
            sizes.append(answer.proof_size_bytes())
            started = time.perf_counter()
            assert verify(root, answer)
            verifies.append(time.perf_counter() - started)
        count = len(latencies)
        return (
            sum(latencies) / count * 1000,
            sum(sizes) / count,
            sum(verifies) / count * 1000,
        )

    dcert = run(
        dcert_index.query_history, verify_history_versions, dcert_index.root
    )
    lineage = run(
        lineage_index.query_history, verify_lineage_answer, lineage_index.root
    )
    return distance, dcert, lineage


def test_fig11_historical_queries(params, benchmark):
    _, dcert_index, lineage_index = _build_indexed_chain(params)

    rows = []
    dcert_points, lineage_points = {}, {}
    for fraction in params.window_distances:
        distance, dcert, lineage = _measure_queries(
            params, dcert_index, lineage_index, fraction
        )
        dcert_points[fraction] = dcert
        lineage_points[fraction] = lineage
        rows.append(
            [
                distance,
                round(dcert[0], 3),
                round(lineage[0], 3),
                int(dcert[1]),
                int(lineage[1]),
                round(dcert[2], 3),
                round(lineage[2], 3),
            ]
        )
    print_table(
        "Fig. 11 — historical queries vs window distance from the tip "
        f"(window {params.query_window_blocks} blocks, chain {params.query_blocks})",
        ["distance", "DCert ms", "Lineage ms", "DCert proof B",
         "Lineage proof B", "DCert verify ms", "Lineage verify ms"],
        rows,
    )

    # Reproduced claims: DCert smaller proofs everywhere; the lineage
    # cost grows with distance while DCert stays flat.
    for fraction in params.window_distances:
        assert dcert_points[fraction][1] < lineage_points[fraction][1], fraction
    near, far = params.window_distances[0], params.window_distances[-1]
    assert lineage_points[far][1] > lineage_points[near][1] * 1.3
    dcert_sizes = [dcert_points[f][1] for f in params.window_distances]
    assert max(dcert_sizes) < min(dcert_sizes) * 2.0

    # pytest-benchmark target: one far-window DCert query + verification.
    t_to = max(1, int(params.query_blocks * 0.05))
    t_from = max(1, t_to - params.query_window_blocks)

    def far_query():
        answer = dcert_index.query_history("acct0", t_from, t_to)
        assert verify_history_versions(dcert_index.root, answer)

    benchmark(far_query)
