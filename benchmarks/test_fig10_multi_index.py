"""Fig. 10 — Augmented vs hierarchical certificates vs #indexes.

Certifies identical blocks under both index-certification schemes while
growing the number of authenticated indexes.  Expected shape (§7.4.4):

* augmented grows steeply — every index re-runs the full block
  verification inside the enclave (Alg. 4);
* hierarchical grows gently — the block is verified once, then each
  index costs one cheap certificate-check ecall (Alg. 5);
* at exactly one index, augmented wins slightly (one fewer Ecall).
"""

from __future__ import annotations

from repro.bench.harness import CertifiedChainHarness
from repro.bench.reporting import print_table
from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec


def _specs(count):
    specs = []
    for index in range(count):
        if index % 2 == 0:
            specs.append(AccountHistoryIndexSpec(name=f"history{index}"))
        else:
            specs.append(KeywordIndexSpec(name=f"keyword{index}"))
    return specs


def _mean_block_time(params, scheme, num_indexes):
    harness = CertifiedChainHarness(
        params,
        index_specs=_specs(num_indexes),
        network="fig10",
        seed=10,
    )
    harness.grow_workload(
        "KV", params.multi_index_blocks, params.default_block_size,
        schemes=(scheme,),
    )
    return harness.mean_timing(skip=1).total_s


def test_fig10_multi_index_schemes(params, benchmark):
    rows = []
    series = {"augmented": {}, "hierarchical": {}}
    for count in params.index_counts:
        augmented_s = _mean_block_time(params, "augmented", count)
        hierarchical_s = _mean_block_time(params, "hierarchical", count)
        series["augmented"][count] = augmented_s
        series["hierarchical"][count] = hierarchical_s
        rows.append(
            [count, round(augmented_s * 1000, 1), round(hierarchical_s * 1000, 1)]
        )
    print_table(
        "Fig. 10 — certificate construction vs number of indexes",
        ["#indexes", "augmented ms", "hierarchical ms"],
        rows,
    )

    counts = list(params.index_counts)
    one, many = counts[0], counts[-1]
    # Reproduced claims: augmented wins at 1 index, loses at many, and
    # its growth outpaces hierarchical's.
    assert series["augmented"][one] < series["hierarchical"][one]
    assert series["augmented"][many] > series["hierarchical"][many]
    aug_growth = series["augmented"][many] - series["augmented"][one]
    hier_growth = series["hierarchical"][many] - series["hierarchical"][one]
    assert aug_growth > hier_growth * 1.5

    # pytest-benchmark target: hierarchical certification, max indexes.
    harness = CertifiedChainHarness(
        params, index_specs=_specs(many), network="fig10-bench", seed=11
    )

    def one_block():
        harness.add_and_certify(
            harness.generator.block_txs("KV", params.default_block_size),
            schemes=("hierarchical",),
        )

    benchmark.pedantic(one_block, rounds=3, iterations=1)
