"""Verifiable conjunctive keyword search over transactions.

The second half of the paper's §5.4 case study: the SP maintains a
Merkle inverted index (keyword dictionary MPT + per-keyword posting
MB-trees), DCert certifies its root, and a superlight client runs
``[stock AND bank]`` queries whose results are provably complete.

Run with:  python examples/keyword_search.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    CertificateIssuer,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.crypto import generate_keypair
from repro.query.api import KeywordQuery, QueryAnswer
from repro.query.indexes import KeywordIndexSpec
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


DOCUMENTS = [
    "stock bank merger",
    "bank loan approved",
    "stock split announced",
    "grain futures stock bank",
    "weather report sunny",
    "bank holiday notice",
    "stock bank quarterly earnings",
    "election results certified",
]


def main() -> None:
    user = generate_keypair(b"keyword-user")
    builder = ChainBuilder(difficulty_bits=4)
    nonce = 0
    for height, text in enumerate(DOCUMENTS, start=1):
        tx = sign_transaction(
            user.private, nonce, "kvstore", "put", (f"doc{height}", text)
        )
        nonce += 1
        builder.add_block([tx])

    spec = KeywordIndexSpec(name="keyword")
    genesis, state = make_genesis()
    ias = AttestationService(seed=b"keyword-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"keyword-enclave",
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block)

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = SuperlightClient(measurement, ias.public_key)
    tip = issuer.certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        "keyword", tip.block.header,
        tip.index_roots["keyword"], tip.index_certificates["keyword"],
    )

    request = KeywordQuery(index="keyword", keywords=("stock", "bank"))
    answer = issuer.indexes["keyword"].query_conjunctive(["stock", "bank"])
    print("Query: transactions containing [stock AND bank]")
    for seq in answer.results:
        height, position = seq >> 20, seq & ((1 << 20) - 1)
        print(f"  block {height}, tx {position}: {DOCUMENTS[height - 1]!r}")
    print(f"  proof size: {answer.proof_size_bytes():,} bytes")

    assert client.verify_answer(request, QueryAnswer(request=request, payload=answer))
    print("  -> verified against the certified index root")

    # Completeness: withholding a matching transaction is detected.
    withheld = replace(answer, results=answer.results[:-1])
    assert not client.verify_answer(
        request, QueryAnswer(request=request, payload=withheld)
    )
    print("An incomplete answer (withheld match) is rejected.")

    # Soundness: injecting a non-matching transaction is detected.
    injected = replace(answer, results=answer.results + ((5 << 20) | 0,))
    assert not client.verify_answer(
        request, QueryAnswer(request=request, payload=injected)
    )
    print("A padded answer (injected non-match) is rejected.")


if __name__ == "__main__":
    main()
