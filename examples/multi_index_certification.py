"""Augmented vs hierarchical certificates as indexes multiply (§5.2).

DCert offers two ways to certify authenticated indexes:

* the **augmented** certificate (Alg. 4) binds block verification and
  index verification into one ecall — great for a single index, but it
  *re-verifies the whole block once per index*;
* the **hierarchical** certificate (Alg. 5) issues the block
  certificate once, then certifies each index against it with a cheap
  extra ecall.

This example certifies the same blocks under both schemes with 1..4
indexes and prints the construction-time crossover the paper shows in
Fig. 10 (augmented wins at exactly one index by saving an ecall;
hierarchical wins thereafter).

Run with:  python examples/multi_index_certification.py
"""

from __future__ import annotations

import time

from repro.bench import BenchParams, WorkloadGenerator
from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import CertificateIssuer
from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def make_specs(count: int) -> list:
    """``count`` distinct index specs (alternating the two families)."""
    specs = []
    for index in range(count):
        if index % 2 == 0:
            specs.append(AccountHistoryIndexSpec(name=f"history{index}"))
        else:
            specs.append(KeywordIndexSpec(name=f"keyword{index}"))
    return specs


def certify_with(scheme: str, num_indexes: int, blocks: list) -> float:
    """Mean per-block certification time under one scheme (seconds)."""
    genesis, state = make_genesis(network="multi-index")
    ias = AttestationService(seed=b"multi-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), POW,
        index_specs=make_specs(num_indexes), ias=ias,
        key_seed=b"multi-enclave",
    )
    started = time.perf_counter()
    for block in blocks:
        issuer.process_block(block, schemes=(scheme,))
    return (time.perf_counter() - started) / len(blocks)


def main() -> None:
    global POW
    params = BenchParams(name="example")
    generator = WorkloadGenerator(params, seed=7)
    builder = ChainBuilder(difficulty_bits=4, network="multi-index")
    POW = builder.pow
    for _ in range(5):
        builder.add_block(generator.block_txs("KV", 8))
    blocks = builder.blocks[1:]

    print(f"{'#indexes':>8}  {'augmented':>12}  {'hierarchical':>12}")
    for count in (1, 2, 3, 4):
        augmented_s = certify_with("augmented", count, blocks)
        hierarchical_s = certify_with("hierarchical", count, blocks)
        marker = "<- augmented wins" if augmented_s < hierarchical_s else ""
        print(
            f"{count:>8}  {augmented_s * 1000:>10.1f}ms  "
            f"{hierarchical_s * 1000:>10.1f}ms  {marker}"
        )
    print(
        "\nAugmented re-runs full block verification per index; "
        "hierarchical verifies the block once and reuses its certificate."
    )


if __name__ == "__main__":
    main()
