"""Quickstart: certify a chain and bootstrap a superlight client.

This walks the full DCert story end to end:

1. mine a small KVStore chain,
2. run an SGX-enabled Certificate Issuer that certifies every block,
3. bootstrap a *traditional* light client (it must fetch and validate
   every header), and
4. bootstrap a DCert *superlight* client from just the latest header
   and certificate — then compare their storage and validation costs.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.chain import ChainBuilder, LightClient
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    CertificateIssuer,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.crypto import generate_keypair
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def main() -> None:
    # --- 1. Mine a chain ---------------------------------------------------
    print("Mining a 30-block KVStore chain...")
    user = generate_keypair(b"quickstart-user")
    builder = ChainBuilder(difficulty_bits=4)
    nonce = 0
    for height in range(30):
        txs = []
        for _ in range(4):
            txs.append(
                sign_transaction(
                    user.private, nonce, "kvstore", "put",
                    (f"key{nonce % 7}", f"value-{nonce}"),
                )
            )
            nonce += 1
        builder.add_block(txs)
    print(f"  chain height: {builder.height}")

    # --- 2. The Certificate Issuer certifies every block --------------------
    print("Starting an SGX-enabled Certificate Issuer (simulated enclave)...")
    genesis, state = make_genesis()
    ias = AttestationService(seed=b"quickstart-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow, ias=ias,
        key_seed=b"quickstart-enclave",
    )
    started = time.perf_counter()
    for block in builder.blocks[1:]:
        issuer.process_block(block)
    per_block_ms = (time.perf_counter() - started) / builder.height * 1000
    print(f"  certified {builder.height} blocks "
          f"({per_block_ms:.0f} ms/block — well under a block interval)")

    # --- 3. Traditional light client ----------------------------------------
    light = LightClient(builder.genesis.header, builder.pow)
    started = time.perf_counter()
    light.bootstrap(builder.headers()[1:])
    light_ms = (time.perf_counter() - started) * 1000
    print(f"Light client:      validated {len(light.headers)} headers "
          f"in {light_ms:.2f} ms, stores {light.storage_bytes():,} bytes")

    # --- 4. DCert superlight client -----------------------------------------
    # The client derives the expected enclave measurement from public
    # code + configuration, then needs only the latest header + cert.
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits,
    )
    superlight = SuperlightClient(measurement, ias.public_key)
    tip = issuer.certified[-1]
    started = time.perf_counter()
    adopted = superlight.validate_chain(tip.block.header, tip.certificate)
    superlight_ms = (time.perf_counter() - started) * 1000
    print(f"Superlight client: validated the whole chain "
          f"in {superlight_ms:.2f} ms, stores {superlight.storage_bytes():,} bytes")
    assert adopted

    ratio_storage = light.storage_bytes() / superlight.storage_bytes()
    print(f"\nStorage ratio (light / superlight): {ratio_storage:.1f}x "
          f"— and it grows linearly with chain length.")
    print("Superlight costs stay constant no matter how long the chain gets.")


if __name__ == "__main__":
    main()
