"""A superlight client surviving an unreliable, adversarial network.

The paper's deployment model (Fig. 2) assumes superlight clients reach
*untrusted* Service Providers over links that can drop, delay, or
tamper with traffic.  This example wires a Certificate Issuer and two
SPs onto the simulated bus, then turns the screws:

* Act 1 — the client bootstraps over RPC and queries while 30% of all
  messages to/from SP1 are dropped: timeouts and bounded-backoff
  retries cover the loss.
* Act 2 — a tampering middlebox corrupts SP1's first response: the
  client detects the forgery against its certified index root, counts
  an integrity failure, and fails over to SP2 for a verified answer.
* Act 3 — both SPs go dark: after bounded retries against every
  endpoint the client raises ServiceUnavailableError instead of
  hanging (or worse, trusting anything).

Run with:  python examples/faulty_network.py
"""

from __future__ import annotations

import random

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    CertificateIssuer,
    ClientConfig,
    IssuerService,
    compute_expected_measurement,
    connect,
)
from repro.crypto import generate_keypair
from repro.errors import ServiceUnavailableError
from repro.net import (
    FaultInjector,
    LinkFaults,
    MessageBus,
    RetryPolicy,
    RpcResponse,
)
from repro.query import HistoryQuery, QueryService, QueryServiceProvider
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


class CorruptOnce:
    """A middlebox that tampers with exactly one RPC response."""

    def __init__(self) -> None:
        self.fired = False

    def __call__(self, message: object, rng: random.Random) -> object:
        if self.fired or not isinstance(message, RpcResponse):
            return message
        self.fired = True
        return message.corrupted(rng)


def main() -> None:
    user = generate_keypair(b"faulty-user")
    builder = ChainBuilder(difficulty_bits=4, network="faulty")
    nonce = 0
    for height in range(1, 9):
        txs = []
        for _ in range(2):
            txs.append(
                sign_transaction(
                    user.private, nonce, "kvstore", "put",
                    (f"acct{nonce % 3}", f"value-{nonce}"),
                )
            )
            nonce += 1
        builder.add_block(txs)

    spec = AccountHistoryIndexSpec(name="history")
    genesis, state = make_genesis(network="faulty")
    ias = AttestationService(seed=b"faulty-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"faulty-enclave",
    )
    sp_genesis, sp_state = make_genesis(network="faulty")
    provider = QueryServiceProvider(
        sp_genesis, sp_state, fresh_vm(), builder.pow, [spec]
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block)
        provider.ingest_block(block)
    print(f"Certified {builder.height} blocks; CI + 2 SPs joining the bus.")

    bus = MessageBus(default_latency_ms=20.0)
    injector = FaultInjector(seed=11)
    corrupt_once = CorruptOnce()
    # Act 1+2 faults: lossy link to SP1, plus a one-shot tamperer on
    # SP1's responses.
    injector.set_link("client", "sp1", LinkFaults(drop_rate=0.3))
    injector.set_link(
        "sp1", "client",
        LinkFaults(drop_rate=0.3, corrupt_rate=1.0, corrupter=corrupt_once),
    )
    bus.install_faults(injector)
    IssuerService(bus, "ci", issuer)
    QueryService(bus, "sp1", provider)
    QueryService(bus, "sp2", provider)

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = connect(ClientConfig(
        measurement=measurement, ias_public_key=ias.public_key,
        bus=bus, name="client",
        issuers=("ci",), providers=("sp1", "sp2"),
        policy=RetryPolicy(timeout_ms=150.0, max_attempts=3),
        integrity_retries=1,
    ))

    print("\nAct 1: bootstrap over RPC (30% loss on the SP1 links)...")
    client.bootstrap()
    assert client.latest_header is not None
    print(f"  adopted certified tip at height {client.latest_header.height}, "
          f"storing {client.storage_bytes():,} bytes")

    print("\nAct 2: query while a middlebox tampers with SP1's response...")
    request = HistoryQuery(
        index="history", account="acct1", t_from=1, t_to=builder.height
    )
    answer = client.query(request)
    assert client.client.verify_answer(request, answer)
    assert corrupt_once.fired, "the tamperer should have struck"
    assert client.integrity_failures >= 1, "tampering must be *detected*"
    print(f"  verified answer: {len(answer.payload.versions)} versions of "
          f"acct1, proof {answer.proof_size_bytes():,} bytes")
    print(f"  integrity failures detected: {client.integrity_failures}, "
          f"failovers: {client.failovers}, rpc timeouts: {client.rpc.timeouts}")

    print("\nAct 3: both SPs go dark mid-session...")
    injector.set_link("client", "sp1", LinkFaults(drop_rate=1.0))
    injector.set_link("sp1", "client", LinkFaults(drop_rate=1.0))
    injector.set_link("client", "sp2", LinkFaults(drop_rate=1.0))
    injector.set_link("sp2", "client", LinkFaults(drop_rate=1.0))
    # The answer that just verified is cached under (request, certified
    # root), so repeating the query is served locally — zero round trips
    # even with every SP unreachable.
    calls_before = client.rpc.calls
    cached = client.query(request)
    assert cached == answer and client.rpc.calls == calls_before
    print("  warm cache hit: the verified answer is served locally, 0 RPCs")
    # A query the cache has never verified must fail — with bounded work.
    fresh = HistoryQuery(index="history", account="acct1", t_from=1, t_to=1)
    before_ms = bus.clock_ms
    try:
        client.query(fresh)
        raise AssertionError("query should not succeed with every SP dark")
    except ServiceUnavailableError as exc:
        print(f"  bounded failure after retrying every endpoint: {exc}")
        print(f"  gave up after {bus.clock_ms - before_ms:.0f} virtual ms")

    print("\nFault injector summary:")
    for link, counts in injector.summary().items():
        print(f"  {link}: {counts}")
    print(f"Virtual network time: {bus.clock_ms:.0f} ms")


if __name__ == "__main__":
    main()
