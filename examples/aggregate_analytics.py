"""Verifiable on-chain analytics: aggregates over account history.

The paper (§5.1) notes DCert supports "complex queries such as
aggregations" through certified authenticated indexes.  This example
builds a SmallBank chain, certifies an *aggregate-authenticated* index
over every account's checking balance, and runs verifiable
SUM/AVG/MIN/MAX analytics — the kind of query a BigQuery-style service
answers today with no integrity guarantee (the paper's §1 motivation).

Run with:  python examples/aggregate_analytics.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    CertificateIssuer,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.crypto import generate_keypair
from repro.query import AggregateQuery, QueryAnswer
from repro.query.indexes import BalanceAggregateIndexSpec
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def main() -> None:
    user = generate_keypair(b"analytics-user")
    builder = ChainBuilder(difficulty_bits=4, network="analytics")
    nonce = [0]

    def bank(method, *args):
        tx = sign_transaction(
            user.private, nonce[0], "smallbank", method, tuple(args)
        )
        nonce[0] += 1
        return tx

    print("Mining a SmallBank chain (alice pays rent, gets salary)...")
    builder.add_block([bank("create", "alice", "1000", "500"),
                       bank("create", "landlord", "0", "0")])
    for month in range(12):
        builder.add_block([bank("deposit_checking", "alice", "300")])   # salary
        builder.add_block([bank("send_payment", "alice", "landlord", "250")])

    spec = BalanceAggregateIndexSpec(name="balances")
    genesis, state = make_genesis(network="analytics")
    ias = AttestationService(seed=b"analytics-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"analytics-enclave",
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block)
    print(f"Certified {builder.height} blocks + the aggregate index.")

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = SuperlightClient(measurement, ias.public_key)
    tip = issuer.certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        "balances", tip.block.header,
        tip.index_roots["balances"], tip.index_certificates["balances"],
    )

    # Analytics through the typed API: alice's balance statistics over
    # the whole year.
    request = AggregateQuery(index="balances", account="alice",
                             t_from=1, t_to=builder.height)
    answer = QueryAnswer(
        request=request,
        payload=issuer.indexes["balances"].query_aggregate(
            "alice", 1, builder.height
        ),
    )
    agg = answer.payload.aggregate
    print(f"\nalice's checking balance across {agg.count} updates:")
    print(f"  min {agg.minimum}, max {agg.maximum}, "
          f"avg {answer.payload.average:.1f}")
    print(f"  proof size: {answer.proof_size_bytes():,} bytes "
          "(flat in the window width — only boundary paths open)")
    assert client.verify_answer(request, answer)
    print("  -> verified against the certified index root")

    # Quarter 1 only.
    q1_request = AggregateQuery(index="balances", account="alice",
                                t_from=1, t_to=7)
    quarterly = QueryAnswer(
        request=q1_request,
        payload=issuer.indexes["balances"].query_aggregate("alice", 1, 7),
    )
    q = quarterly.payload.aggregate
    print(f"\nQ1 ({q.count} updates): min {q.minimum}, max {q.maximum}, "
          f"avg {quarterly.payload.average:.1f}")
    assert client.verify_answer(q1_request, quarterly)

    # A lying analytics provider inflates the average: caught.
    forged = replace(
        answer,
        payload=replace(answer.payload,
                        aggregate=replace(agg, total=agg.total + 10_000)),
    )
    assert not client.verify_answer(request, forged)
    print("\nA provider inflating the SUM by 10,000 is rejected.")


if __name__ == "__main__":
    main()
