"""A multi-node DCert deployment over the simulated network (Fig. 2).

Topology: one miner publishes blocks; a Certificate Issuer (full node +
enclave) certifies each block and broadcasts the certificate; a Service
Provider (full node + indexes) ingests blocks; three superlight clients
subscribe only to certificates and track the chain tip — including a
fork, which chain selection resolves.

Run with:  python examples/certificate_network.py
"""

from __future__ import annotations

from repro.bench import BenchParams, WorkloadGenerator
from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    CertificateIssuer,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.net import (
    BlockAnnouncement,
    CertificateAnnouncement,
    MessageBus,
    NetworkNode,
)
from repro.query import HistoryQuery
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def main() -> None:
    params = BenchParams(name="example")
    generator = WorkloadGenerator(params, seed=3)
    builder = ChainBuilder(difficulty_bits=4, network="netdemo")
    spec = AccountHistoryIndexSpec(name="history")
    genesis, state = make_genesis(network="netdemo")
    ias = AttestationService(seed=b"net-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"net-enclave",
    )
    from repro.query.provider import QueryServiceProvider

    sp_genesis, sp_state = make_genesis(network="netdemo")
    provider = QueryServiceProvider(
        sp_genesis, sp_state, fresh_vm(), builder.pow, [spec]
    )

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )

    bus = MessageBus(default_latency_ms=40.0)
    miner_node = bus.join(NetworkNode("miner"))
    ci_node = bus.join(NetworkNode("ci"))
    sp_node = bus.join(NetworkNode("sp"))
    clients = [
        (bus.join(NetworkNode(f"client{i}")), SuperlightClient(measurement, ias.public_key))
        for i in range(3)
    ]

    # Wire up behaviour: the CI certifies blocks and re-broadcasts certs;
    # the SP ingests blocks; clients validate certificates.
    def ci_handles_block(message: BlockAnnouncement) -> None:
        certified = issuer.process_block(message.block)
        bus.publish(
            "ci",
            "certificates",
            CertificateAnnouncement(
                header=message.block.header,
                certificate=certified.certificate,
                index_certificates=certified.index_certificates,
                index_roots=certified.index_roots,
            ),
        )

    ci_node.on("blocks", ci_handles_block)
    sp_node.on("blocks", lambda message: provider.ingest_block(message.block))

    def make_client_handler(client: SuperlightClient):
        def handle(message: CertificateAnnouncement) -> None:
            client.validate_chain(message.header, message.certificate)
            for name, cert in message.index_certificates.items():
                client.validate_index_certificate(
                    name, message.header, message.index_roots[name], cert
                )

        return handle

    for node, client in clients:
        node.on("certificates", make_client_handler(client))
        bus.subscribe(node.name, "certificates")
    bus.subscribe("ci", "blocks")
    bus.subscribe("sp", "blocks")

    # The miner produces blocks and announces them.
    print("Mining and broadcasting 10 blocks...")
    for _ in range(10):
        block, _ = builder.add_block(generator.block_txs("KV", 4))
        bus.publish("miner", "blocks", BlockAnnouncement(block))
    delivered = bus.run_until_idle()
    print(f"  delivered {delivered} messages "
          f"(virtual network time: {bus.clock_ms:.0f} ms)")

    for index, (_, client) in enumerate(clients):
        assert client.latest_header is not None
        print(f"  client{index}: tip height {client.latest_header.height}, "
              f"stores {client.storage_bytes():,} bytes")

    # Query the SP through the typed API and verify against the
    # certificate-tracked root with the unified entry point.
    request = HistoryQuery(index="history", account="i0:k0", t_from=1,
                           t_to=builder.height)
    answer = provider.execute(request)
    _, client0 = clients[0]
    print(f"\nSP answered a history query with {len(answer.payload.versions)} "
          f"versions; client verification: "
          f"{client0.verify_answer(request, answer)}")


if __name__ == "__main__":
    main()
