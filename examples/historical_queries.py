"""Verifiable historical account queries (the paper's §5.4 case study).

A Service Provider maintains DCert's two-level authenticated index
(Merkle Patricia Trie over accounts, Merkle B-tree over each account's
timestamped versions).  The CI's enclave certifies the index root after
every block, so a superlight client can

* ask "what values did account X have between blocks 10 and 25?",
* verify the answer is complete and untampered, and
* catch a malicious SP that drops or alters versions.

Run with:  python examples/historical_queries.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    CertificateIssuer,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.crypto import generate_keypair
from repro.query import HistoryQuery, QueryAnswer
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def main() -> None:
    accounts = [f"acct{i}" for i in range(5)]
    user = generate_keypair(b"history-user")

    # Mine a chain where accounts get updated over time.
    builder = ChainBuilder(difficulty_bits=4)
    nonce = 0
    for height in range(1, 41):
        txs = []
        account = accounts[height % len(accounts)]
        txs.append(
            sign_transaction(
                user.private, nonce, "kvstore", "put",
                (account, f"balance-{height}"),
            )
        )
        nonce += 1
        builder.add_block(txs)

    # CI certifies blocks *and* the history index.
    spec = AccountHistoryIndexSpec(name="history")
    genesis, state = make_genesis()
    ias = AttestationService(seed=b"history-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"history-enclave",
    )
    for block in builder.blocks[1:]:
        issuer.process_block(block)
    print(f"Certified {builder.height} blocks + index roots.")

    # Superlight client adopts the latest block and index certificates.
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = SuperlightClient(measurement, ias.public_key)
    tip = issuer.certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        "history", tip.block.header,
        tip.index_roots["history"], tip.index_certificates["history"],
    )
    print("Superlight client validated the chain and the index certificate.")

    # Query through the typed API: history of acct2 between blocks 10
    # and 30.  (The CI doubles as the SP here; see certificate_network.py
    # and faulty_network.py for topologies where they are separate nodes.)
    request = HistoryQuery(index="history", account="acct2", t_from=10, t_to=30)
    answer = QueryAnswer(
        request=request,
        payload=issuer.indexes["history"].query_history("acct2", 10, 30),
    )
    print(f"\nQuery: versions of acct2 in window [10, 30]")
    for timestamp, value in answer.payload.versions:
        print(f"  block {timestamp}: {value.decode()}")
    print(f"  proof size: {answer.proof_size_bytes():,} bytes")

    assert client.verify_answer(request, answer)
    print("  -> verified against the certified index root")

    # A malicious SP drops the middle version...
    versions = answer.payload.versions
    tampered = replace(answer, payload=replace(answer.payload,
                                               versions=versions[:-1]))
    assert not client.verify_answer(request, tampered)
    print("A tampered answer (dropped version) is rejected.")

    # ...or forges a value.
    forged_versions = ((versions[0][0], b"forged"),) + versions[1:]
    forged = replace(answer, payload=replace(answer.payload,
                                             versions=forged_versions))
    assert not client.verify_answer(request, forged)
    print("A forged answer (altered value) is rejected.")

    # ...or answers a *different* (cheaper) query: the request echo
    # check catches it even though the proof itself verifies.
    narrower = QueryAnswer(
        request=replace(request, t_to=20),
        payload=issuer.indexes["history"].query_history("acct2", 10, 20),
    )
    assert not client.verify_answer(request, narrower)
    print("An answer to a different query than asked is rejected.")


if __name__ == "__main__":
    main()
