"""Certified state sync: become a full node without replaying history.

DCert's constant-cost validation enables more than superlight wallets:
a brand-new node can validate the latest certificate (O(1)), download
the state snapshot from *any untrusted peer*, check it against the
certified ``H_state``, and immediately operate as a full node — the
"snap sync" pattern, with trust anchored in the enclave certificate
instead of developer-hard-coded checkpoints.

Run with:  python examples/state_sync.py
"""

from __future__ import annotations

import copy
import time

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.node import FullNode
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    CertificateIssuer,
    SuperlightClient,
    bootstrap_full_node,
    compute_expected_measurement,
    export_snapshot,
)
from repro.core.statesync import StateSnapshot
from repro.crypto import generate_keypair
from repro.errors import StateError
from repro.sgx.attestation import AttestationService


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def main() -> None:
    user = generate_keypair(b"sync-user")
    builder = ChainBuilder(difficulty_bits=4, network="syncnet")
    nonce = 0
    print("Mining and certifying a 50-block chain...")
    genesis, state = make_genesis(network="syncnet")
    ias = AttestationService(seed=b"sync-ias")
    issuer = CertificateIssuer(
        genesis, state, fresh_vm(), builder.pow,
        ias=ias, key_seed=b"sync-enclave",
    )
    for height in range(1, 51):
        tx = sign_transaction(
            user.private, nonce, "kvstore", "put",
            (f"cell{height % 9}", f"value-{height}"),
        )
        nonce += 1
        block, _ = builder.add_block([tx])
        issuer.process_block(block)

    # --- The classical way: replay everything -------------------------------
    started = time.perf_counter()
    replay_genesis, replay_state = make_genesis(network="syncnet")
    replaying = FullNode(replay_genesis, replay_state, fresh_vm(), builder.pow)
    for block in builder.blocks[1:]:
        replaying.append_block(block)
    replay_s = time.perf_counter() - started
    print(f"Full replay sync:      {replay_s * 1000:.0f} ms "
          f"({builder.height} blocks re-executed)")

    # --- The DCert way: O(1) validation + verified snapshot ------------------
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, fresh_vm(),
        builder.pow.difficulty_bits,
    )
    tip = issuer.certified[-1]
    snapshot = export_snapshot(issuer.node)  # served by an untrusted peer
    started = time.perf_counter()
    client = SuperlightClient(measurement, ias.public_key)
    node = bootstrap_full_node(
        client, tip.block, tip.certificate, snapshot,
        fresh_vm(), builder.pow,
    )
    sync_s = time.perf_counter() - started
    print(f"Certified state sync:  {sync_s * 1000:.0f} ms "
          f"({snapshot.size_bytes():,} snapshot bytes verified against H_state)")
    assert node.state.root == replaying.state.root

    # The synced node keeps up with the chain like any full node.
    next_tx = sign_transaction(user.private, nonce, "kvstore", "put", ("cell0", "post-sync"))
    scratch = copy.deepcopy(builder.state)
    block, _ = builder.miner.make_block(builder.tip.header, scratch, [next_tx])
    node.append_block(block)
    print(f"Synced node validated and committed block {node.height} normally.")

    # A peer serving a doctored snapshot is caught immediately.
    cells = list(snapshot.cells)
    key, value = cells[0]
    doctored = StateSnapshot(
        height=snapshot.height,
        cells=tuple([(key, value + b"!")] + cells[1:]),
        depth=snapshot.depth,
    )
    try:
        bootstrap_full_node(
            SuperlightClient(measurement, ias.public_key),
            tip.block, tip.certificate, doctored, fresh_vm(), builder.pow,
        )
        raise AssertionError("doctored snapshot accepted")
    except StateError:
        print("A doctored snapshot from a malicious peer is rejected.")


if __name__ == "__main__":
    main()
