"""DCert reproduction: secure, efficient, and versatile blockchain light clients.

This package is a from-scratch Python reproduction of the Middleware '22
paper *DCert: Towards Secure, Efficient, and Versatile Blockchain Light
Clients* (Ji, Xu, Zhang, Xu).  It contains every substrate the paper
depends on — cryptography, authenticated data structures, a blockchain
with a contract VM and the Blockbench workloads, a simulated SGX enclave —
plus the paper's contribution: the decentralized certification framework
(block / augmented / hierarchical certificates) and the verifiable query
layer for superlight clients.

Quick tour of the public API::

    from repro.chain import ChainBuilder
    from repro.core import CertificateIssuer, SuperlightClient
    from repro.sgx import EnclaveHost, AttestationService

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
