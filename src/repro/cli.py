"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — print the library inventory and version.
* ``demo`` — a one-minute end-to-end demonstration: mine, certify,
  bootstrap a superlight client, run a verifiable query.
* ``demo-network`` — the same flow over the simulated network: a
  remote superlight client bootstraps and queries two Service
  Providers over RPC while a fault injector drops messages to the
  first one.
* ``demo-fleet`` — scaling demonstration: a remote client serves a
  query batch through a load-balanced fleet of Service Provider
  replicas behind a :class:`repro.net.gateway.QueryGateway`, repeats
  it warm from the verified-answer cache, then survives a replica
  kill and watches the probe path readmit it.
* ``demo-overload`` — overload-resilience demonstration: deadline
  propagation refuses doomed work up front, admission control sheds a
  saturating flood with ``retry_after`` hints, circuit breakers trip,
  the client degrades to a verified-stale answer, and hedged requests
  collapse a slow replica's tail.
* ``demo-crash`` — crash-safety demonstration: a durable issuer is
  killed at a chosen crashpoint mid-``certify_range``, its supervisor
  restores it from the write-ahead archive (sealed checkpoint + WAL
  tail replay), and the remote client finishes its verified query
  against the restarted issuer without re-attesting.
* ``selftest`` — a fast certification round trip with tamper checks;
  exits non-zero on any failure (useful as a deployment smoke test).
* ``metrics`` — run the networked demo with observability enabled and
  report the collected counters, gauges, and latency/size histograms
  (``--json`` for machine-readable output).
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.obs import wallclock


def _fresh_vm():
    from repro.chain.vm import VM
    from repro.contracts import BLOCKBENCH

    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


def _build_world(
    blocks: int = 10,
    block_size: int = 3,
    batch_size: int = 1,
    hold_back: int = 0,
):
    from repro.chain import ChainBuilder
    from repro.chain.genesis import make_genesis
    from repro.chain.transaction import sign_transaction
    from repro.chain.vm import VM
    from repro.contracts import BLOCKBENCH
    from repro.core import CertificateIssuer, CertificationPipeline
    from repro.crypto import generate_keypair
    from repro.query.indexes import AccountHistoryIndexSpec
    from repro.sgx.attestation import AttestationService

    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    user = generate_keypair(b"cli-user")
    builder = ChainBuilder(difficulty_bits=4, network="cli")
    nonce = 0
    for _ in range(blocks):
        txs = []
        for _ in range(block_size):
            txs.append(
                sign_transaction(
                    user.private, nonce, "kvstore", "put",
                    (f"acct{nonce % 4}", f"value-{nonce}"),
                )
            )
            nonce += 1
        builder.add_block(txs)
    genesis, state = make_genesis(network="cli")
    ias = AttestationService(seed=b"cli-ias")
    spec = AccountHistoryIndexSpec(name="history")
    issuer = CertificateIssuer(
        genesis, state, vm, builder.pow,
        index_specs=[spec], ias=ias, key_seed=b"cli-enclave",
        proof_cache_entries=256 if batch_size > 1 else 0,
    )
    # ``hold_back`` keeps the newest blocks mined-but-uncertified so a
    # command can certify them later (the push-stream demonstrations).
    to_certify = builder.blocks[1 : len(builder.blocks) - hold_back]
    if batch_size > 1:
        pipeline = CertificationPipeline(issuer, batch_size=batch_size)
        for block in to_certify:
            pipeline.submit(block)
        pipeline.close()
    else:
        for block in to_certify:
            issuer.process_block(block)
    return builder, issuer, ias, spec, genesis, vm


def cmd_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__} — DCert reproduction (Middleware '22)")
    print()
    inventory = [
        ("repro.crypto", "secp256k1 ECDSA (RFC-6979), SHA-256 hashing"),
        ("repro.merkle", "MHT, sparse Merkle tree + partial trees, MPT, "
                         "MB-tree, aggregate MB-tree, skip list, MMR, inverted index"),
        ("repro.chain", "transactions, PoW blocks, contract VM, miner, "
                        "full/fork-aware nodes, light client"),
        ("repro.contracts", "Blockbench: DoNothing, CPUHeavy, IOHeavy, KVStore, SmallBank"),
        ("repro.sgx", "simulated enclaves, attestation, sealing, cost model"),
        ("repro.core", "DCert: gen_cert, ecall_sig_gen, superlight client, "
                       "augmented + hierarchical certificates"),
        ("repro.query", "SP, two-level history index, keyword index, "
                        "aggregate index, LineageChain baseline"),
        ("repro.baselines", "FlyClient-style MMR sampling client"),
    ]
    for package, description in inventory:
        print(f"  {package:18} {description}")
    return 0


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import SuperlightClient, compute_expected_measurement

    batch = getattr(args, "batch_size", 1)
    mode = f" in batches of {batch}" if batch > 1 else ""
    print(f"Mining and certifying {args.blocks} blocks{mode}...")
    started = wallclock.now_s()
    builder, issuer, ias, spec, genesis, vm = _build_world(
        blocks=args.blocks, batch_size=batch
    )
    print(f"  done in {wallclock.elapsed_s(started):.1f}s "
          f"({issuer.enclave.ledger.ecalls} ecalls)")
    if batch > 1:
        stats = issuer.proof_cache.stats()
        saved = args.blocks * 2 - issuer.enclave.ledger.ecalls
        print(f"  proof cache: {stats['hits']} hits / {stats['misses']} misses "
              f"({stats['hit_rate']:.0%} hit rate), "
              f"{saved} enclave transitions saved")

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, vm,
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = SuperlightClient(measurement, ias.public_key)
    tip = issuer.certified[-1]
    started = wallclock.now_s()
    client.validate_chain(tip.block.header, tip.certificate)
    print(f"Superlight client validated a {builder.height}-block chain in "
          f"{wallclock.elapsed_ms(started):.1f} ms, "
          f"storing {client.storage_bytes()} bytes.")

    client.validate_index_certificate(
        "history", tip.block.header,
        tip.index_roots["history"], tip.index_certificates["history"],
    )
    from repro.query.api import HistoryQuery, QueryAnswer

    request = HistoryQuery(
        index="history", account="acct1", t_from=1, t_to=builder.height
    )
    answer = issuer.indexes["history"].query_history("acct1", 1, builder.height)
    ok = client.verify_answer(request, QueryAnswer(request=request, payload=answer))
    print(f"Verifiable query: {len(answer.versions)} versions of acct1, "
          f"proof {answer.proof_size_bytes()} bytes, verified={ok}.")
    return 0


def _network_world(blocks: int, drop: float, seed: int):
    """The Fig. 2 deployment on the simulated network: a CI and two SPs
    (with a lossy link to sp1) serving one remote superlight client,
    with a subscription hub mounted on the CI endpoint.  The newest
    mined block is held back uncertified so commands can demonstrate
    push propagation (``world.issuer.process_block(world.held_back)``).
    """
    from types import SimpleNamespace

    from repro.chain.genesis import make_genesis
    from repro.core import (
        ClientConfig,
        IssuerService,
        compute_expected_measurement,
        connect,
    )
    from repro.net import (
        FaultInjector,
        LinkFaults,
        MessageBus,
        RetryPolicy,
        SubscriptionHub,
    )
    from repro.query import QueryService, QueryServiceProvider

    builder, issuer, ias, spec, genesis, vm = _build_world(
        blocks=blocks, hold_back=1
    )

    sp_genesis, sp_state = make_genesis(network="cli")
    provider = QueryServiceProvider(
        sp_genesis, sp_state, _fresh_vm(), builder.pow, [spec]
    )
    for block in builder.blocks[1:-1]:
        provider.ingest_block(block)

    bus = MessageBus(default_latency_ms=20.0)
    injector = FaultInjector(seed=seed)
    injector.set_link("client", "sp1", LinkFaults(drop_rate=drop))
    injector.set_link("sp1", "client", LinkFaults(drop_rate=drop))
    bus.install_faults(injector)
    service = IssuerService(bus, "ci", issuer)
    hub = SubscriptionHub.embedded(service)
    hub.attach(issuer)
    QueryService(bus, "sp1", provider)
    QueryService(bus, "sp2", provider)

    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, _fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = connect(ClientConfig(
        measurement=measurement, ias_public_key=ias.public_key,
        bus=bus, name="client",
        issuers=("ci",), providers=("sp1", "sp2"), hub="ci",
        policy=RetryPolicy(timeout_ms=200.0, max_attempts=3),
    ))
    return SimpleNamespace(
        builder=builder, bus=bus, injector=injector, client=client,
        hub=hub, issuer=issuer, provider=provider,
        held_back=builder.blocks[-1],
    )


def cmd_demo_network(args: argparse.Namespace) -> int:
    from repro.query import HistoryQuery

    print(f"Mining {args.blocks} blocks, certifying all but the newest...")
    world = _network_world(args.blocks, args.drop, args.seed)
    builder, bus, client = world.builder, world.bus, world.client
    print(f"Remote client bootstrapping over RPC "
          f"(dropping {args.drop:.0%} of messages to/from sp1)...")
    client.bootstrap()
    print(f"  adopted certified tip at height {client.latest_header.height}, "
          f"storing {client.storage_bytes():,} bytes")

    request = HistoryQuery(
        index="history", account="acct1", t_from=1,
        t_to=client.latest_header.height,
    )
    answer = client.query(request)
    print(f"Verified query over RPC: {len(answer.payload.versions)} versions "
          f"of acct1, proof {answer.proof_size_bytes():,} bytes.")
    print(f"  retries/timeouts: {client.rpc.timeouts}, "
          f"failovers: {client.failovers}, "
          f"integrity failures: {client.integrity_failures}")

    print("Subscribing to the push stream; the CI certifies one more block...")
    client.subscribe()
    calls_before = client.rpc.calls
    world.issuer.process_block(world.held_back)
    world.provider.ingest_block(world.held_back)
    bus.run_until_idle()
    print(f"  pushed tip at height {client.latest_header.height} adopted "
          f"with {client.rpc.calls - calls_before} client RPC round trips "
          f"({client.push_adopted} push adoptions)")
    print(f"  virtual network time: {bus.clock_ms:.0f} ms")
    for link, counts in world.injector.summary().items():
        print(f"  {link}: {counts}")
    return 0 if client.push_adopted else 1


def _fleet_world(blocks: int, replicas: int, service_ms: float,
                 balancer: str, seed: int):
    """A load-balanced SP fleet behind a QueryGateway: one CI, N
    busy-worker QueryService replicas, one remote superlight client
    with a verified-answer cache, and a subscription hub on the CI."""
    from types import SimpleNamespace

    from repro.chain.genesis import make_genesis
    from repro.core import (
        ClientConfig,
        IssuerService,
        compute_expected_measurement,
        connect,
    )
    from repro.net import (
        HealthPolicy,
        MessageBus,
        QueryGateway,
        RetryPolicy,
        SubscriptionHub,
    )
    from repro.query import QueryService, QueryServiceProvider

    builder, issuer, ias, spec, genesis, vm = _build_world(
        blocks=blocks, hold_back=1
    )
    sp_genesis, sp_state = make_genesis(network="cli")
    provider = QueryServiceProvider(
        sp_genesis, sp_state, _fresh_vm(), builder.pow, [spec]
    )
    for block in builder.blocks[1:-1]:
        provider.ingest_block(block)

    bus = MessageBus(default_latency_ms=10.0)
    service = IssuerService(bus, "ci", issuer)
    hub = SubscriptionHub.embedded(service)
    hub.attach(issuer)
    names = [f"sp{i + 1}" for i in range(replicas)]
    services = {
        name: QueryService(bus, name, provider, service_time_ms=service_ms)
        for name in names
    }
    gateway = QueryGateway(
        bus, "gw", names,
        balancer=balancer, seed=seed,
        policy=RetryPolicy(timeout_ms=service_ms * 40 + 1_000.0,
                           max_attempts=1),
        health=HealthPolicy(failure_threshold=1, probe_base_ms=200.0),
    )
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, _fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = connect(ClientConfig(
        measurement=measurement, ias_public_key=ias.public_key,
        bus=bus, name="client",
        issuers=("ci",), gateway=gateway, hub="ci",
    ))
    return SimpleNamespace(
        builder=builder, bus=bus, services=services, gateway=gateway,
        client=client, hub=hub, issuer=issuer, provider=provider,
        held_back=builder.blocks[-1],
    )


def cmd_demo_fleet(args: argparse.Namespace) -> int:
    from repro.query import HistoryQuery

    print(f"Mining {args.blocks} blocks, certifying all but the newest...")
    world = _fleet_world(
        args.blocks, args.replicas, args.service_ms, args.balancer, args.seed
    )
    builder, bus, services, gateway, client = (
        world.builder, world.bus, world.services, world.gateway, world.client
    )
    client.bootstrap()
    print(f"Remote client adopted the certified tip at height "
          f"{client.latest_header.height}; gateway fronts "
          f"{args.replicas} replicas ({args.balancer}, "
          f"{args.service_ms:.0f} ms modeled service time).")

    requests = [
        HistoryQuery(index="history", account=f"acct{i % 4}",
                     t_from=1, t_to=1 + i % builder.height)
        for i in range(args.queries)
    ]
    started = bus.clock_ms
    client.query_many(requests)
    elapsed = bus.clock_ms - started
    served = {name: s.server.requests_served for name, s in services.items()}
    print(f"\nServed {args.queries} verified queries in {elapsed:.0f} virtual "
          f"ms ({args.queries / (elapsed / 1000.0):.1f} modeled q/s)")
    print(f"  per-replica load: {served}")

    calls_before = client.rpc.calls + gateway.rpc.calls
    client.query_many(requests)
    print(f"Repeated the batch warm: {client.cache.hits} cache hits, "
          f"{client.rpc.calls + gateway.rpc.calls - calls_before} new RPC "
          f"round trips.")

    victim = next(iter(services))
    services[victim].server.paused = True
    fresh = [
        HistoryQuery(index="history", account=f"acct{i % 4}",
                     t_from=2, t_to=max(2, 1 + i % builder.height))
        for i in range(args.replicas * 2)
    ]
    for request in fresh:
        client.query(request)
    print(f"\nKilled {victim}: fleet failed over "
          f"({gateway.failovers} failovers), healthy replicas now "
          f"{gateway.healthy_replicas()}")
    services[victim].server.paused = False
    bus.run_for(500.0)
    for i in range(args.replicas * 3):
        client.query(HistoryQuery(index="history", account=f"acct{i % 4}",
                                  t_from=3,
                                  t_to=max(3, 1 + i % builder.height)))
    back = victim in gateway.healthy_replicas()
    print(f"Restarted {victim}: probe readmitted it: {back}")
    print(f"  totals — dispatches: {gateway.rpc.calls}, "
          f"timeouts: {gateway.rpc.timeouts}, "
          f"replica switches verified: {gateway.switches}, "
          f"cache hits/misses: {client.cache.hits}/{client.cache.misses}")
    return 0 if back else 1


def _overload_world(blocks: int, replicas: int, service_ms: float, seed: int):
    """The fleet deployment with the full overload-protection stack
    armed: admission control on every busy-worker replica, per-replica
    circuit breakers and hedging on the gateway, and a client that
    degrades to verified-stale answers when the whole tier sheds."""
    from types import SimpleNamespace

    from repro.chain.genesis import make_genesis
    from repro.core import (
        ClientConfig,
        IssuerService,
        compute_expected_measurement,
        connect,
    )
    from repro.net import (
        AdmissionPolicy,
        CircuitBreakerPolicy,
        HealthPolicy,
        HedgePolicy,
        MessageBus,
        QueryGateway,
        RetryPolicy,
    )
    from repro.net.rpc import RpcClient
    from repro.query import QueryService, QueryServiceProvider

    builder, issuer, ias, spec, genesis, vm = _build_world(
        blocks=blocks, hold_back=1
    )
    sp_genesis, sp_state = make_genesis(network="cli")
    provider = QueryServiceProvider(
        sp_genesis, sp_state, _fresh_vm(), builder.pow, [spec]
    )
    for block in builder.blocks[1:-1]:
        provider.ingest_block(block)

    bus = MessageBus(default_latency_ms=5.0)
    IssuerService(bus, "ci", issuer)
    names = [f"sp{i + 1}" for i in range(replicas)]
    admission = AdmissionPolicy(shed_delay_ms=40.0, queue_limit=32)
    services = {
        name: QueryService(
            bus, name, provider,
            service_time_ms=service_ms, admission=admission,
        )
        for name in names
    }
    gateway = QueryGateway(
        bus, "gw", names,
        balancer="round-robin", seed=seed,
        policy=RetryPolicy(timeout_ms=2_000.0, max_attempts=2),
        health=HealthPolicy(failure_threshold=3, probe_base_ms=200.0),
        breaker=CircuitBreakerPolicy(),
        hedge=HedgePolicy(),
    )
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, _fresh_vm(),
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = connect(ClientConfig(
        measurement=measurement, ias_public_key=ias.public_key,
        bus=bus, name="client",
        issuers=("ci",), gateway=gateway,
        degrade_to_stale=True,
    ))
    flood = RpcClient(
        bus, "flood", policy=RetryPolicy(timeout_ms=5_000.0, max_attempts=1)
    )
    return SimpleNamespace(
        builder=builder, bus=bus, services=services, gateway=gateway,
        client=client, issuer=issuer, provider=provider, flood=flood,
        held_back=builder.blocks[-1],
    )


def cmd_demo_overload(args: argparse.Namespace) -> int:
    """Narrated overload resilience: deadline propagation, admission
    shedding + retry_after, circuit breakers, graceful stale
    degradation, and hedged requests, one segment each."""
    from repro.errors import DeadlineExceededError
    from repro.query import HistoryQuery, StaleAnswer

    world = _overload_world(
        args.blocks, args.replicas, args.service_ms, args.seed
    )
    bus, gateway, client, services = (
        world.bus, world.gateway, world.client, world.services
    )
    client.bootstrap()
    print(f"Fleet of {args.replicas} replicas "
          f"({args.service_ms:.0f} ms service time) behind a gateway with "
          f"admission control, circuit breakers, and hedging; client "
          f"adopted the certified tip at height "
          f"{client.latest_header.height}.")

    height = client.latest_header.height
    request = HistoryQuery(index="history", account="acct1",
                           t_from=1, t_to=height)

    tight_ms = args.service_ms * 1.6
    print(f"\n[1] Deadline propagation — a query with a "
          f"{tight_ms:.0f} ms budget (after per-hop shrinking, less "
          f"than one service time):")
    executes_before = world.provider.executes
    try:
        client.query(request, deadline_ms=bus.clock_ms + tight_ms)
        print("  unexpectedly served!")
        return 1
    except DeadlineExceededError:
        refused = sum(s.server.deadline_refused for s in services.values())
        print(f"  refused up front (DEADLINE_EXCEEDED): the per-hop "
              f"budget shrinks in flight and cannot cover one service "
              f"time, so the replica refuses at admission")
        print(f"  provider executions: "
              f"{world.provider.executes - executes_before} "
              f"(doomed work costs zero), deadline refusals: {refused}")

    print("\n[2] Normal operation — the same query with headroom:")
    answer = client.query(request)
    print(f"  verified answer: {len(answer.payload.versions)} versions of "
          f"acct1, cached under the certified root")

    # Advance the tip so the *fresh* cache entry is swept (it is keyed
    # by root) while the stale sidecar keeps the last verified answer.
    world.issuer.process_block(world.held_back)
    world.provider.ingest_block(world.held_back)
    bus.run_until_idle()
    client.sync()
    print(f"  tip advanced to height {client.latest_header.height}; the "
          f"root-keyed cache entry is swept, the stale sidecar remembers")

    saturation_ms = args.service_ms * 2.5
    print(f"\n[3] Saturation — flooding both replicas with "
          f"{args.flood} fire-and-forget queries each, then asking again "
          f"with a {saturation_ms:.0f} ms budget:")
    flood_ids = []
    for name in services:
        for _ in range(args.flood):
            flood_ids.append(world.flood.begin(name, "execute", request))
    shed_before = sum(s.server.requests_shed for s in services.values())
    result = client.query(
        request, deadline_ms=bus.clock_ms + saturation_ms
    )
    shed = sum(s.server.requests_shed for s in services.values()) - shed_before
    hint = next(
        (r.retry_after_ms for i in flood_ids
         if (r := world.flood.take(i)) is not None and r.code == "net.overloaded"),
        0.0,
    )
    print(f"  replicas shed {shed} requests at admission "
          f"(OVERLOADED, retry_after ~{hint:.0f} ms)")
    if isinstance(result, StaleAnswer):
        print(f"  client degraded gracefully: served the last verified "
              f"answer flagged stale=True (root height {result.height}) "
              f"instead of failing")
    else:
        print("  tier recovered inside the budget; served fresh")
    bus.run_until_idle()
    for request_id in flood_ids:
        world.flood.abandon(request_id)

    print("\n[4] Hedging — one replica turns 10x slow mid-run:")
    height = client.latest_header.height
    for i in range(16):  # warm the per-endpoint latency trackers
        lo, hi = sorted((1 + i // 8, 1 + i % height))
        client.query(HistoryQuery(index="history", account=f"acct{i % 4}",
                                  t_from=lo, t_to=hi))
    slow = list(services)[-1]
    services[slow].server._service_times["execute"] = args.service_ms * 10
    hedges_before = gateway.hedges
    for i in range(6):
        client.query(HistoryQuery(index="history", account=f"acct{i % 4}",
                                  t_from=3, t_to=max(3, 1 + i % height)))
    print(f"  {slow} degraded; gateway hedged "
          f"{gateway.hedges - hedges_before} dispatches at the observed "
          f"p90, {gateway.hedge_wins} won by the fast replica")

    print(f"\nTotals — shed: "
          f"{sum(s.server.requests_shed for s in services.values())}, "
          f"deadline refusals: "
          f"{sum(s.server.deadline_refused for s in services.values())}, "
          f"breaker trips: {gateway.breaker_trips()}, "
          f"hedge wins: {gateway.hedge_wins}, "
          f"stale served: {client.stale_served}, "
          f"retry_after waits honored: {gateway.rpc.retry_after_waits}")
    ok = (
        shed > 0
        and client.stale_served > 0
        and gateway.hedge_wins > 0
        and world.provider.executes > 0
    )
    return 0 if ok else 1


def cmd_demo_crash(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from repro.chain import ChainBuilder
    from repro.chain.genesis import make_genesis
    from repro.chain.transaction import sign_transaction
    from repro.core import (
        ClientConfig,
        IssuerService,
        compute_expected_measurement,
        connect,
    )
    from repro.core.recovery import DurableIssuer, recover_issuer
    from repro.crypto import generate_keypair
    from repro.fault.crashpoints import CATALOG, crash_armed
    from repro.net import IssuerSupervisor, MessageBus, RestartPolicy, RetryPolicy
    from repro.net.rpc import RpcClient
    from repro.query import HistoryQuery, QueryService, QueryServiceProvider
    from repro.query.indexes import AccountHistoryIndexSpec
    from repro.sgx.attestation import AttestationService
    from repro.sgx.platform import SGXPlatform
    from repro.storage import ChainArchive

    if args.point not in CATALOG:
        print(f"unknown crashpoint {args.point!r}; one of:", file=sys.stderr)
        for name in CATALOG:
            print(f"  {name}", file=sys.stderr)
        return 2

    user = generate_keypair(b"cli-user")
    builder = ChainBuilder(difficulty_bits=4, network="cli")
    nonce = 0
    for _ in range(args.blocks):
        txs = []
        for _ in range(3):
            txs.append(
                sign_transaction(
                    user.private, nonce, "kvstore", "put",
                    (f"acct{nonce % 4}", f"value-{nonce}"),
                )
            )
            nonce += 1
        builder.add_block(txs)

    spec = AccountHistoryIndexSpec(name="history")
    ias = AttestationService(seed=b"cli-ias")
    platform = SGXPlatform(seed=b"cli-platform")
    half = args.blocks // 2

    with tempfile.TemporaryDirectory(prefix="repro-demo-crash-") as tmp:
        archive = ChainArchive(Path(tmp) / "issuer.wal")
        genesis, state = make_genesis(network="cli")
        durable = DurableIssuer.create(
            archive, genesis, state, _fresh_vm(), builder.pow,
            index_specs=[spec], platform=platform, ias=ias,
            key_seed=b"cli-enclave", checkpoint_interval=3,
        )
        print(f"Mining {args.blocks} blocks; durably certifying the first "
              f"{half} (WAL + sealed checkpoint every 3)...")
        for block in builder.blocks[1 : 1 + half]:
            durable.process_block(block)

        sp_genesis, sp_state = make_genesis(network="cli")
        provider = QueryServiceProvider(
            sp_genesis, sp_state, _fresh_vm(), builder.pow, [spec]
        )
        for block in builder.blocks[1:]:
            provider.ingest_block(block)

        def restore():
            genesis2, state2 = make_genesis(network="cli")
            return recover_issuer(
                archive, genesis2, state2, _fresh_vm(), builder.pow,
                index_specs=[spec], platform=platform, ias=ias,
                checkpoint_interval=3,
            )

        bus = MessageBus(default_latency_ms=10.0)
        service = IssuerService(bus, "ci", durable)
        supervisor = IssuerSupervisor(
            service, restore,
            policy=RestartPolicy(max_attempts=3, backoff_base_ms=40.0),
        )
        QueryService(bus, "sp", provider)
        measurement = compute_expected_measurement(
            genesis.header.header_hash(), ias.public_key, _fresh_vm(),
            builder.pow.difficulty_bits, {spec.name: spec},
        )
        client = connect(ClientConfig(
            measurement=measurement, ias_public_key=ias.public_key,
            bus=bus, name="client",
            issuers=("ci",), providers=("sp",),
            policy=RetryPolicy(timeout_ms=150.0, max_attempts=4,
                               backoff_base_ms=20.0),
        ))
        client.bootstrap()
        pk_before = service.issuer.pk_enc.to_bytes()
        print(f"Remote client attested and adopted the certified tip at "
              f"height {client.latest_header.height}.")

        print(f"\nMiner submits blocks {half + 1}..{args.blocks}; the issuer "
              f"is armed to die at {args.point!r} (hit {args.hit}).")
        miner = RpcClient(
            bus, "miner",
            policy=RetryPolicy(timeout_ms=200.0, max_attempts=5,
                               backoff_base_ms=30.0),
        )
        with crash_armed(args.point, hit=args.hit) as schedule:
            tips = miner.call(
                "ci", "certify_range", tuple(builder.blocks[1 + half :])
            )
        if not schedule.fired:
            print("  (the crashpoint was never reached by this workload)")
        report = service.issuer.last_recovery
        print(f"  crash fired: {schedule.fired}; supervisor restarts: "
              f"{supervisor.restarts} (of {supervisor.crashes} crashes)")
        if report is not None:
            print(f"  recovery: checkpoint_used={report.checkpoint_used} "
                  f"(height {report.checkpoint_height}), "
                  f"replayed {report.replayed_blocks} WAL-tail blocks, "
                  f"resumed {report.staged_resumed} staged")
        print(f"  miner's retried call returned certified tips "
              f"{[tip.header.height for tip in tips]}")
        same_key = service.issuer.pk_enc.to_bytes() == pk_before
        print(f"  pk_enc stable across restart (sealed key): {same_key}")

        client.sync()
        request = HistoryQuery(
            index="history", account="acct1", t_from=1, t_to=builder.height
        )
        answer = client.query(request)
        ok = client.client.verify_answer(request, answer)
        print(f"\nClient synced to height {client.latest_header.height} and "
              f"verified a history query ({len(answer.payload.versions)} "
              f"versions of acct1): {ok}")
        print(f"  attestation reports verified in total: "
              f"{len(client.client._verified_reports)} (no re-attestation)")
        return 0 if (ok and same_key and not supervisor.gave_up) else 1


def cmd_sim(args: argparse.Namespace) -> int:
    """One deterministic whole-system simulation run."""
    from repro.sim import CANARIES, replay_command, run_sim

    if args.canary is not None and args.canary not in CANARIES:
        print(f"unknown canary {args.canary!r}; "
              f"available: {', '.join(sorted(CANARIES))}")
        return 2
    result = run_sim(
        args.seed, args.events, canary=args.canary, profile=args.profile
    )
    if args.verbose:
        for line in result.log:
            print(line)
    print(f"Applied {result.events_applied}/{result.events} events "
          f"(seed {result.seed}, profile {args.profile})")
    print(f"event-log fingerprint: {result.fingerprint}")
    if result.violation is not None:
        shrink_hint = result.violation.event_index + 1
        print(f"INVARIANT VIOLATION: {result.violation}")
        print(f"replay: "
              f"{replay_command(result.seed, shrink_hint, args.canary, args.profile)}")
        return 1
    print("all invariants held after every event")
    return 0


def cmd_demo_sim(args: argparse.Namespace) -> int:
    """Narrated simulation: compose, run, fingerprint, rerun."""
    from repro.sim import SimConfig, run_sim

    config = SimConfig()
    print("Composing the whole stack on the virtual-clock bus:")
    print(f"  miner/chain -> durable issuer (WAL, checkpoints every "
          f"{config.checkpoint_interval} blocks) -> {config.replicas} query "
          f"replicas -> subscription hub")
    print(f"  client fleet: {config.pollers} polling, "
          f"{config.gateway_clients} gateway+cache, "
          f"{config.subscribers} push-subscribed")
    print(f"Running {args.events} seeded events (seed {args.seed}): mine, "
          f"certify, query, heartbeat, crashes, torn writes, lossy links, "
          f"partitions, replica pauses, hub remounts, client churn...")
    result = run_sim(args.seed, args.events)
    if result.violation is not None:
        print(f"INVARIANT VIOLATION: {result.violation}")
        return 1
    crashes = sum(1 for line in result.log if " crash(" in line)
    churns = sum(1 for line in result.log if " churn(" in line)
    print(f"  {result.events_applied} events applied; {crashes} injected "
          f"crashes recovered, {churns} clients churned")
    print("  every event passed: tip monotonicity, no unverified adoption, "
          "storage budget, oracle byte-identity, cache coherence, WAL "
          "consistency, metrics monotonicity")
    print("Sample of the deterministic event log:")
    for line in result.log[-5:]:
        print(f"  {line}")
    print(f"event-log fingerprint: {result.fingerprint}")
    print("Re-running the same seed to prove determinism...")
    again = run_sim(args.seed, args.events)
    identical = again.fingerprint == result.fingerprint
    print(f"  byte-identical: {identical}")
    return 0 if identical else 1


def cmd_selftest(_: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.core import SuperlightClient, compute_expected_measurement
    from repro.errors import CertificateError

    builder, issuer, ias, spec, genesis, vm = _build_world(blocks=4)
    measurement = compute_expected_measurement(
        genesis.header.header_hash(), ias.public_key, vm,
        builder.pow.difficulty_bits, {spec.name: spec},
    )
    client = SuperlightClient(measurement, ias.public_key)
    tip = issuer.certified[-1]
    checks = 0
    assert client.validate_chain(tip.block.header, tip.certificate)
    checks += 1
    try:
        client.validate_chain(
            tip.block.header, replace(tip.certificate, dig=bytes(32))
        )
        print("FAIL: forged certificate accepted", file=sys.stderr)
        return 1
    except CertificateError:
        checks += 1
    client.validate_index_certificate(
        "history", tip.block.header,
        tip.index_roots["history"], tip.index_certificates["history"],
    )
    from repro.query.api import HistoryQuery, QueryAnswer

    request = HistoryQuery(index="history", account="acct1", t_from=1, t_to=4)
    answer = issuer.indexes["history"].query_history("acct1", 1, 4)
    assert client.verify_answer(
        request, QueryAnswer(request=request, payload=answer)
    )
    checks += 1
    if answer.versions:
        tampered = replace(answer, versions=answer.versions[:-1])
        assert not client.verify_answer(
            request, QueryAnswer(request=request, payload=tampered)
        )
        checks += 1
    print(f"selftest ok ({checks} checks)")
    return 0


def _components(world) -> dict:
    """One JSON document covering every registered component of a demo
    world — client, hub, gateway, replicas — for ``metrics --all``."""
    client = world.client
    components: dict = {
        "client": {
            "rpc_calls": client.rpc.calls,
            "rpc_timeouts": client.rpc.timeouts,
            "failovers": client.failovers,
            "integrity_failures": client.integrity_failures,
            "push_adopted": client.push_adopted,
            "push_rejected": client.push_rejected,
            "push_duplicates": client.push_duplicates,
            "push_gaps": client.push_gaps,
            "push_resyncs": client.push_resyncs,
            "storage_bytes": client.storage_bytes(),
        },
        "hub": {
            "published": world.hub.published,
            "subscribers": len(world.hub.subscribers),
            "reaped": world.hub.reaped,
            "resyncs": world.hub.resyncs,
            "latest_seq": world.hub.seq,
        },
    }
    if client.cache is not None:
        components["client"]["cache_hits"] = client.cache.hits
        components["client"]["cache_misses"] = client.cache.misses
        components["client"]["cache_entries"] = len(client.cache)
    gateway = getattr(world, "gateway", None)
    if gateway is not None:
        components["gateway"] = {
            "dispatches": gateway.rpc.calls,
            "timeouts": gateway.rpc.timeouts,
            "failovers": gateway.failovers,
            "switches_verified": gateway.switches,
            "healthy_replicas": sorted(gateway.healthy_replicas()),
        }
    services = getattr(world, "services", None)
    if services is not None:
        components["replicas"] = {
            name: {
                "requests_served": service.server.requests_served,
                "requests_dropped": service.server.requests_dropped,
            }
            for name, service in services.items()
        }
    return components


def _flatten(tree: dict, prefix: str = "") -> dict:
    flat: dict = {}
    for key, value in tree.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        else:
            flat[path] = value
    return flat


def cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.bench.reporting import print_table
    from repro.query import HistoryQuery

    with obs.observability():
        obs.registry().reset()
        if args.replicas > 0:
            world = _fleet_world(
                args.blocks, args.replicas, 25.0, "round-robin", args.seed
            )
        else:
            world = _network_world(args.blocks, args.drop, args.seed)
        bus, client = world.bus, world.client
        obs.set_virtual_clock(lambda: bus.clock_ms)
        try:
            client.bootstrap()
            request = HistoryQuery(
                index="history", account="acct1", t_from=1,
                t_to=client.latest_header.height,
            )
            client.query(request)
            client.query(request)  # the warm path: a cache hit
            if args.all:
                # Exercise the push tier too, so its metrics are live.
                client.subscribe()
                world.issuer.process_block(world.held_back)
                world.provider.ingest_block(world.held_back)
                bus.run_until_idle()
                client.heartbeat()
            snapshot = obs.registry().snapshot()
        finally:
            obs.set_virtual_clock(None)
    if args.all:
        snapshot = {"registry": snapshot, "components": _components(world)}
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    if args.all:
        print_table(
            "Components", ["component.metric", "value"],
            sorted(_flatten(snapshot["components"]).items()),
        )
        snapshot = snapshot["registry"]
    print_table(
        "Counters", ["counter", "value"],
        sorted(snapshot["counters"].items()),
    )
    print_table(
        "Gauges", ["gauge", "value"],
        sorted(snapshot["gauges"].items()),
    )
    print_table(
        "Histograms",
        ["histogram", "count", "min", "mean", "max"],
        [
            [
                name,
                h["count"],
                h["min"],
                (h["sum"] / h["count"]) if h["count"] else 0.0,
                h["max"],
            ]
            for name, h in sorted(snapshot["histograms"].items())
        ],
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "analyze":
        # The analyzer owns its argument surface (--json, --baseline,
        # --rule ...); hand everything after the subcommand straight to
        # it rather than mirroring each flag here.
        from repro.analysis import main as analysis_main

        return analysis_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro", description="DCert reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    subparsers.add_parser("info", help="print the library inventory")
    demo = subparsers.add_parser("demo", help="end-to-end demonstration")
    demo.add_argument("--blocks", type=int, default=10)
    demo.add_argument(
        "--batch-size", type=int, default=1, dest="batch_size",
        help="certify in batches of this many blocks per ecall "
             "(1 = sequential; >1 enables the proof cache)",
    )
    network = subparsers.add_parser(
        "demo-network",
        help="remote client over RPC with fault injection and SP failover",
    )
    network.add_argument("--blocks", type=int, default=8)
    network.add_argument(
        "--drop", type=float, default=0.3,
        help="drop rate on the client<->sp1 links (default 0.3)",
    )
    network.add_argument("--seed", type=int, default=7)
    crash = subparsers.add_parser(
        "demo-crash",
        help="kill the issuer at a crashpoint; supervised recovery demo",
    )
    crash.add_argument("--blocks", type=int, default=8)
    crash.add_argument(
        "--point", default="issuer.certify_staged.post",
        help="crashpoint to arm (see repro.fault.crashpoints.CATALOG)",
    )
    crash.add_argument(
        "--hit", type=int, default=1,
        help="fire on the n-th arrival at the crashpoint (default 1)",
    )
    fleet = subparsers.add_parser(
        "demo-fleet",
        help="load-balanced SP fleet behind the query gateway: scaling, "
             "cached hits, failover, probe recovery",
    )
    fleet.add_argument("--blocks", type=int, default=8)
    fleet.add_argument("--replicas", type=int, default=3)
    fleet.add_argument("--queries", type=int, default=12)
    fleet.add_argument(
        "--service-ms", type=float, default=25.0, dest="service_ms",
        help="modeled per-query service time per replica (default 25)",
    )
    fleet.add_argument(
        "--balancer", default="round-robin",
        choices=["round-robin", "least-outstanding", "seeded-random"],
    )
    fleet.add_argument("--seed", type=int, default=7)
    overload = subparsers.add_parser(
        "demo-overload",
        help="overload resilience: deadline propagation, admission "
             "shedding, circuit breakers, stale degradation, hedging",
    )
    overload.add_argument("--blocks", type=int, default=8)
    overload.add_argument("--replicas", type=int, default=2)
    overload.add_argument(
        "--service-ms", type=float, default=25.0, dest="service_ms",
        help="modeled per-query service time per replica (default 25)",
    )
    overload.add_argument(
        "--flood", type=int, default=30,
        help="fire-and-forget queries per replica in the saturation "
             "segment (default 30)",
    )
    overload.add_argument("--seed", type=int, default=7)
    sim = subparsers.add_parser(
        "sim",
        help="deterministic whole-system simulation with global "
             "invariant checking (exit 1 + replay command on violation)",
    )
    sim.add_argument("--seed", type=int, default=2026)
    sim.add_argument(
        "--events", type=int, default=200,
        help="schedule length: seeded workload + fault events "
             "(default 200; `make sim` runs 500)",
    )
    sim.add_argument(
        "--canary", default=None,
        help="arm a deliberately-broken invariant "
             "(see repro.sim.CANARIES) to exercise catch/shrink/replay",
    )
    sim.add_argument(
        "--profile", default="mixed", choices=["mixed", "overload"],
        help="event mix: 'mixed' (default) or 'overload' "
             "(saturation-heavy: bursts, deadline batches, slow replicas)",
    )
    sim.add_argument(
        "--verbose", action="store_true",
        help="print the full deterministic event log",
    )
    demo_sim = subparsers.add_parser(
        "demo-sim",
        help="narrated simulation run: the whole stack under one seeded "
             "schedule, invariants checked after every event",
    )
    demo_sim.add_argument("--seed", type=int, default=2026)
    demo_sim.add_argument("--events", type=int, default=80)
    subparsers.add_parser("selftest", help="fast certification round trip")
    metrics = subparsers.add_parser(
        "metrics",
        help="run the networked demo with observability on; report metrics",
    )
    metrics.add_argument("--blocks", type=int, default=6)
    metrics.add_argument(
        "--drop", type=float, default=0.3,
        help="drop rate on the client<->sp1 links (default 0.3)",
    )
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument(
        "--replicas", type=int, default=0,
        help="run the workload against a gateway-fronted fleet of this "
             "many replicas instead of the two-SP demo (default 0 = off)",
    )
    metrics.add_argument(
        "--json", action="store_true",
        help="emit the raw metrics snapshot as JSON",
    )
    metrics.add_argument(
        "--all", action="store_true",
        help="snapshot every registered component (client, hub, gateway, "
             "replicas) together with the metrics registry in one document, "
             "exercising the push stream along the way",
    )
    subparsers.add_parser(
        "analyze",
        help="AST-based invariant linter over src/ and tests/ "
             "(DET/VER/ERR/BND/WIRE/OBS/CAT rules; see docs/analysis.md)",
        add_help=False,
    )
    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "demo": cmd_demo,
        "demo-network": cmd_demo_network,
        "demo-fleet": cmd_demo_fleet,
        "demo-overload": cmd_demo_overload,
        "demo-crash": cmd_demo_crash,
        "sim": cmd_sim,
        "demo-sim": cmd_demo_sim,
        "selftest": cmd_selftest,
        "metrics": cmd_metrics,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
