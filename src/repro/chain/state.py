"""Global state: a key/value store committed by a sparse Merkle tree.

State cells are addressed by ``(contract, field)`` pairs, hashed into
the SMT's 32-byte keyspace.  Two views matter to DCert:

* :class:`StateStore` — the full state a CI/full node/miner holds;
* :class:`TrackedView` — a recording wrapper used during execution that
  captures the *read set* (pre-state values consulted) and the *write
  set* (post-state values produced).  Those two sets, plus their SMT
  proofs, are exactly the update proof ``pi_i`` of Alg. 1/2.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.crypto.hashing import Digest, tagged_hash
from repro.merkle.smt import SMTProof, SparseMerkleTree


def state_key(contract: str, field: str) -> bytes:
    """Derive the 32-byte SMT key for one contract state cell."""
    return tagged_hash("state-cell", contract.encode("utf-8") + b"\x00" + field.encode("utf-8"))


class BackingState(Protocol):
    """Anything that can serve pre-state reads during execution."""

    def get_raw(self, key: bytes) -> bytes | None: ...


class StateStore:
    """Full global state backed by a :class:`SparseMerkleTree`."""

    def __init__(self, depth: int = 64) -> None:
        self._tree = SparseMerkleTree(depth=depth)

    @property
    def root(self) -> Digest:
        return self._tree.root

    @property
    def depth(self) -> int:
        return self._tree.depth

    def __len__(self) -> int:
        return len(self._tree)

    def get_raw(self, key: bytes) -> bytes | None:
        return self._tree.get(key)

    def get(self, contract: str, field: str) -> bytes | None:
        return self._tree.get(state_key(contract, field))

    def put_raw(self, key: bytes, value: bytes | None) -> None:
        self._tree.update(key, value)

    def apply_writes(self, writes: dict[bytes, bytes | None]) -> None:
        """Commit a block's write set in one batched tree update."""
        self._tree.update_batch(writes)

    def items(self) -> list[tuple[bytes, bytes]]:
        """Every live ``(key, value)`` cell — the material a recovery
        checkpoint snapshots (see :mod:`repro.core.recovery`)."""
        return list(self._tree.items())

    def prove(self, key: bytes) -> SMTProof:
        return self._tree.prove(key)

    def prove_many(self, keys: list[bytes]) -> list[tuple[bytes, bytes | None, SMTProof]]:
        """(key, current value, proof) for each key — an update proof slice."""
        return [(key, self._tree.get(key), self._tree.prove(key)) for key in keys]


class TrackedView:
    """Execution view that records reads and buffers writes.

    Reads hit the write buffer first (read-your-writes inside a block),
    then the pre-state, noting each pre-state value consulted.  Nothing
    touches the backing store until the caller commits the write set.
    """

    def __init__(self, backing: BackingState | Callable[[bytes], bytes | None]) -> None:
        self._lookup: Callable[[bytes], bytes | None]
        if callable(backing):
            self._lookup = backing
        else:
            self._lookup = backing.get_raw
        self.reads: dict[bytes, bytes | None] = {}
        self.writes: dict[bytes, bytes | None] = {}

    def get_raw(self, key: bytes) -> bytes | None:
        if key in self.writes:
            return self.writes[key]
        if key in self.reads:
            return self.reads[key]
        value = self._lookup(key)
        self.reads[key] = value
        return value

    def put_raw(self, key: bytes, value: bytes | None) -> None:
        self.writes[key] = value

    def touched_keys(self) -> list[bytes]:
        """Every key whose SMT path the update proof must cover."""
        return sorted(set(self.reads) | set(self.writes))
