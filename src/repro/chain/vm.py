"""Deterministic contract virtual machine.

Stands in for the paper's Rust EVM: contracts are deterministic Python
classes dispatched by name, reading and writing state cells through a
:class:`ContractContext`.  Determinism is what lets the enclave *replay*
a block's transactions from the proven read set and arrive at the same
write set the miner produced (Alg. 2, lines 18-21) — any ambient source
of nondeterminism would break certification, so contracts get no access
to clocks, randomness, or I/O.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.chain.state import TrackedView, state_key
from repro.errors import TransactionError


class ContractContext:
    """State access handle scoped to one contract's namespace."""

    def __init__(self, contract: str, view: TrackedView) -> None:
        self._contract = contract
        self._view = view

    def get(self, field: str) -> bytes | None:
        return self._view.get_raw(state_key(self._contract, field))

    def put(self, field: str, value: bytes) -> None:
        self._view.put_raw(state_key(self._contract, field), value)

    def delete(self, field: str) -> None:
        self._view.put_raw(state_key(self._contract, field), None)

    def get_int(self, field: str, default: int = 0) -> int:
        raw = self.get(field)
        return int.from_bytes(raw, "big", signed=True) if raw is not None else default

    def put_int(self, field: str, value: int) -> None:
        self.put(field, value.to_bytes(16, "big", signed=True))

    def get_str(self, field: str) -> str | None:
        raw = self.get(field)
        return raw.decode("utf-8") if raw is not None else None

    def put_str(self, field: str, value: str) -> None:
        self.put(field, value.encode("utf-8"))


class Contract(ABC):
    """Base class for deterministic contracts."""

    #: Registry name; transactions address contracts by this string.
    name: str = ""

    @abstractmethod
    def call(
        self, ctx: ContractContext, method: str, args: tuple[str, ...], sender: str
    ) -> None:
        """Execute ``method(args)`` on behalf of ``sender``.

        Raise :class:`TransactionError` to reject the call; any state
        written before the raise is discarded by the executor.
        """


class VM:
    """Registry and dispatcher for contracts."""

    def __init__(self) -> None:
        self._contracts: dict[str, Contract] = {}

    def deploy(self, contract: Contract) -> None:
        if not contract.name:
            raise TransactionError("contract must declare a name")
        self._contracts[contract.name] = contract

    def deployed(self) -> list[str]:
        return sorted(self._contracts)

    def execute_call(
        self,
        view: TrackedView,
        contract: str,
        method: str,
        args: tuple[str, ...],
        sender: str,
    ) -> None:
        """Dispatch one call; state effects land in ``view``'s buffers."""
        target = self._contracts.get(contract)
        if target is None:
            raise TransactionError(f"unknown contract {contract!r}")
        target.call(ContractContext(contract, view), method, args, sender)
