"""A minimal FIFO mempool."""

from __future__ import annotations

from collections import deque

from repro.chain.transaction import Transaction


class Mempool:
    """Pending transactions awaiting inclusion, in arrival order."""

    def __init__(self) -> None:
        self._pending: deque[Transaction] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, tx: Transaction) -> None:
        self._pending.append(tx)

    def add_many(self, txs: list[Transaction]) -> None:
        self._pending.extend(txs)

    def take(self, count: int) -> list[Transaction]:
        """Remove and return up to ``count`` transactions."""
        taken = []
        while self._pending and len(taken) < count:
            taken.append(self._pending.popleft())
        return taken
