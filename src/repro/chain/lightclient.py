"""The traditional light client — DCert's baseline in Fig. 7.

It synchronizes *every* block header, validating linkage and the
consensus proof for each, and keeps them all.  Storage therefore grows
linearly with chain length and bootstrapping revalidates the whole
header chain — the two costs DCert's superlight client replaces with
constants.
"""

from __future__ import annotations

from repro.chain.block import BlockHeader
from repro.chain.consensus import ProofOfWork
from repro.errors import BlockValidationError


class LightClient:
    """Header-only client with full-chain validation."""

    def __init__(self, genesis: BlockHeader, pow_engine: ProofOfWork) -> None:
        if genesis.height != 0:
            raise BlockValidationError("genesis header must have height 0")
        self.headers: list[BlockHeader] = [genesis]
        self.pow = pow_engine

    @property
    def tip(self) -> BlockHeader:
        return self.headers[-1]

    def sync_header(self, header: BlockHeader) -> None:
        """Validate one new header against the current tip and keep it."""
        prev = self.tip
        if header.height != prev.height + 1:
            raise BlockValidationError("header does not extend the tip")
        if header.prev_hash != prev.header_hash():
            raise BlockValidationError("previous-hash linkage broken")
        if not self.pow.check(header):
            raise BlockValidationError("consensus proof (PoW) invalid")
        self.headers.append(header)

    def bootstrap(self, headers: list[BlockHeader]) -> None:
        """Sync a whole header chain (the Fig. 7b measurement target)."""
        for header in headers:
            self.sync_header(header)

    def validate_stored_chain(self) -> bool:
        """Re-validate everything already stored (cold-start check)."""
        for prev, header in zip(self.headers, self.headers[1:]):
            if header.prev_hash != prev.header_hash():
                return False
            if not self.pow.check(header):
                return False
        return True

    def storage_bytes(self) -> int:
        """Total bytes of stored headers (the Fig. 7a measurement)."""
        return sum(header.size_bytes() for header in self.headers)
