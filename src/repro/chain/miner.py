"""Block production.

A miner executes candidate transactions against the current state
(filtering out invalid ones), commits the write set to obtain the new
state root, assembles the header, and solves the PoW puzzle — the
process §2.1 of the paper describes.
"""

from __future__ import annotations

from repro.chain.block import Block, BlockHeader
from repro.chain.executor import ExecutionResult, TransactionExecutor
from repro.chain.state import StateStore
from repro.chain.consensus import ProofOfWork
from repro.chain.transaction import Transaction
from repro.chain.vm import VM
from repro.merkle.mht import MerkleTree


class Miner:
    """Produces blocks on top of a state store it owns."""

    def __init__(self, vm: VM, pow_engine: ProofOfWork) -> None:
        self.executor = TransactionExecutor(vm)
        self.pow = pow_engine

    def make_block(
        self,
        prev: BlockHeader,
        state: StateStore,
        candidates: list[Transaction],
        *,
        timestamp: int | None = None,
        verify_signatures: bool = True,
    ) -> tuple[Block, ExecutionResult]:
        """Build, execute, and mine the next block; commits state writes.

        Returns the mined block and the execution result (whose read and
        write sets a CI reuses to build the update proof — the proof must
        be generated against the *pre*-state, so CIs call
        ``StateStore.prove_many`` before handing writes to this method's
        state commit; see ``repro.core.issuer``).
        """
        result = self.executor.execute(
            state,
            candidates,
            strict=False,
            verify_signatures=verify_signatures,
        )
        state.apply_writes(result.write_set)
        tx_root = MerkleTree([tx.encode() for tx in result.executed]).root
        template = BlockHeader(
            height=prev.height + 1,
            prev_hash=prev.header_hash(),
            nonce=0,
            difficulty_bits=self.pow.difficulty_bits,
            state_root=state.root,
            tx_root=tx_root,
            timestamp=timestamp if timestamp is not None else prev.timestamp + 15,
        )
        header = self.pow.solve(template)
        return Block(header=header, transactions=tuple(result.executed)), result
