"""Genesis block construction.

The genesis block is deterministic and certificate-free: the enclave
program hard-codes its digest (Alg. 2, line 4), so everyone must derive
bit-identical genesis data from the same network name.
"""

from __future__ import annotations

from repro.chain.block import Block, BlockHeader, ZERO_HASH
from repro.chain.state import StateStore
from repro.merkle.mht import MerkleTree

GENESIS_TIMESTAMP = 1_650_000_000


def make_genesis(network: str = "repro-net", state_depth: int = 64) -> tuple[Block, StateStore]:
    """Create the genesis block and the (empty) genesis state.

    ``network`` is folded into the header via the nonce-free hash chain
    (as the previous-hash field), so distinct networks cannot replay one
    another's certificates.
    """
    state = StateStore(depth=state_depth)
    seed = ZERO_HASH if network == "repro-net" else _network_tag(network)
    header = BlockHeader(
        height=0,
        prev_hash=seed,
        nonce=0,
        difficulty_bits=0,
        state_root=state.root,
        tx_root=MerkleTree([]).root,
        timestamp=GENESIS_TIMESTAMP,
    )
    return Block(header=header, transactions=()), state


def _network_tag(network: str) -> bytes:
    from repro.crypto.hashing import tagged_hash

    return tagged_hash("genesis-network", network.encode("utf-8"))
