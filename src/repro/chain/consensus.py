"""Proof-of-work consensus and the longest-chain selection rule.

The consensus proof ``pi_cons`` in a header is a nonce whose inclusion
drives the header hash below a difficulty target.  Difficulty here is
expressed in leading zero *bits* and deliberately kept low in the
simulations — DCert is consensus-agnostic (it only re-checks the proof,
Alg. 2 line 15), so puzzle hardness is not load-bearing for any result.

Chain selection (Alg. 3 line 8) is Bitcoin's longest-chain rule: among
certified tips, a client follows the greatest height, with the smaller
header hash as a deterministic tie-break.
"""

from __future__ import annotations

from repro.chain.block import BlockHeader
from repro.errors import ConsensusError


class ProofOfWork:
    """PoW puzzle: ``header_hash < 2^(256 - difficulty_bits)``."""

    def __init__(self, difficulty_bits: int = 8) -> None:
        if not 0 <= difficulty_bits <= 64:
            raise ConsensusError("difficulty out of simulated range")
        self.difficulty_bits = difficulty_bits

    @property
    def target(self) -> int:
        return 1 << (256 - self.difficulty_bits)

    def check(self, header: BlockHeader) -> bool:
        """Verify the header's consensus proof (nonce meets its target)."""
        if header.difficulty_bits != self.difficulty_bits:
            return False
        return int.from_bytes(header.header_hash(), "big") < self.target

    def solve(self, template: BlockHeader) -> BlockHeader:
        """Find a nonce for ``template``; returns the solved header."""
        nonce = 0
        while True:
            candidate = BlockHeader(
                height=template.height,
                prev_hash=template.prev_hash,
                nonce=nonce,
                difficulty_bits=self.difficulty_bits,
                state_root=template.state_root,
                tx_root=template.tx_root,
                timestamp=template.timestamp,
            )
            if int.from_bytes(candidate.header_hash(), "big") < self.target:
                return candidate
            nonce += 1


def select_chain(tips: list[BlockHeader]) -> BlockHeader:
    """Longest-chain rule over candidate tips (greatest height wins)."""
    if not tips:
        raise ConsensusError("no candidate tips to select from")
    return min(tips, key=lambda hdr: (-hdr.height, hdr.header_hash()))
