"""Transaction execution with read/write-set tracking.

The executor is shared by three parties with different trust stances:

* the **miner**, which executes candidate transactions to build a block
  (invalid ones are filtered out),
* the **full node / CI**, which re-executes a received block strictly
  (any invalid transaction rejects the whole block), and
* the **enclave program**, which replays the block against a *partial*
  state reconstructed from Merkle proofs (Alg. 2, lines 18-21) — reads
  outside the proven slice raise, which is how incomplete update proofs
  are caught.

The block-level read set contains pre-state values only (later reads of
a cell written earlier in the same block hit the write buffer), matching
what the update proof must cover.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.state import BackingState, TrackedView
from repro.chain.transaction import Transaction
from repro.chain.vm import VM
from repro.errors import BlockValidationError, TransactionError


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of executing a transaction batch."""

    read_set: dict[bytes, bytes | None] = field(default_factory=dict)
    write_set: dict[bytes, bytes | None] = field(default_factory=dict)
    executed: list[Transaction] = field(default_factory=list)
    rejected: list[tuple[Transaction, str]] = field(default_factory=list)

    def touched_keys(self) -> list[bytes]:
        """Keys whose SMT paths an update proof must cover."""
        return sorted(set(self.read_set) | set(self.write_set))


class TransactionExecutor:
    """Deterministic batch executor over a VM."""

    def __init__(self, vm: VM) -> None:
        self.vm = vm

    def execute(
        self,
        backing: BackingState,
        transactions: list[Transaction],
        *,
        strict: bool = True,
        verify_signatures: bool = True,
    ) -> ExecutionResult:
        """Execute ``transactions`` against the pre-state ``backing``.

        ``strict=True`` (validator / enclave mode) raises on the first
        invalid transaction; ``strict=False`` (miner mode) filters
        invalid transactions into ``result.rejected`` instead.
        """
        block_view = TrackedView(backing)
        result = ExecutionResult()
        for tx in transactions:
            if verify_signatures and not tx.verify_signature():
                self._reject(result, tx, "invalid signature", strict)
                continue
            tx_view = TrackedView(block_view)
            sender = tx.sender.fingerprint().hex()
            try:
                self.vm.execute_call(tx_view, tx.contract, tx.method, tx.args, sender)
            except TransactionError as exc:
                self._reject(result, tx, str(exc), strict)
                continue
            # Commit the transaction's writes into the block view.
            for key, value in tx_view.writes.items():
                block_view.put_raw(key, value)
            result.executed.append(tx)
        result.read_set = dict(block_view.reads)
        result.write_set = dict(block_view.writes)
        return result

    def _reject(
        self, result: ExecutionResult, tx: Transaction, reason: str, strict: bool
    ) -> None:
        if strict:
            raise BlockValidationError(f"invalid transaction in block: {reason}")
        result.rejected.append((tx, reason))
