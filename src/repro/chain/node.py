"""Full node: validates and stores the complete chain.

On each incoming block a full node re-checks everything §2.1 lists:
header linkage, the consensus proof, the transaction root, every
transaction's signature, and — by re-executing the block — the state
root.  The CI in :mod:`repro.core.issuer` builds on this class, adding
certificate construction on top of validation.
"""

from __future__ import annotations

from repro.chain.block import Block
from repro.chain.consensus import ProofOfWork
from repro.chain.executor import ExecutionResult, TransactionExecutor
from repro.chain.state import StateStore
from repro.chain.vm import VM
from repro.errors import BlockValidationError


class FullNode:
    """Holds the full chain and the materialized global state."""

    def __init__(
        self,
        genesis: Block,
        genesis_state: StateStore,
        vm: VM,
        pow_engine: ProofOfWork,
    ) -> None:
        if genesis.header.height != 0:
            raise BlockValidationError("genesis block must have height 0")
        self.blocks: list[Block] = [genesis]
        self.state = genesis_state
        self.executor = TransactionExecutor(vm)
        self.pow = pow_engine

    @property
    def tip(self) -> Block:
        return self.blocks[-1]

    @property
    def height(self) -> int:
        return self.tip.header.height

    def headers(self) -> list:
        return [block.header for block in self.blocks]

    def validate_block(self, block: Block) -> ExecutionResult:
        """Validate ``block`` against the current tip without committing.

        Returns the execution result (read/write sets) on success so a
        CI can reuse it; raises :class:`BlockValidationError` otherwise.
        """
        header = block.header
        prev = self.tip.header
        if header.height != prev.height + 1:
            raise BlockValidationError(
                f"height {header.height} does not extend tip {prev.height}"
            )
        if header.prev_hash != prev.header_hash():
            raise BlockValidationError("previous-hash linkage broken")
        if not self.pow.check(header):
            raise BlockValidationError("consensus proof (PoW) invalid")
        if not block.check_tx_root():
            raise BlockValidationError("transaction root mismatch")
        result = self.executor.execute(
            self.state, list(block.transactions), strict=True
        )
        # Predict the post-state root without committing: replay the
        # writes on proofs (cheap) rather than copying the whole state.
        predicted = self._predict_root(result)
        if predicted != header.state_root:
            raise BlockValidationError("state root mismatch after re-execution")
        return result

    def append_block(self, block: Block) -> ExecutionResult:
        """Validate then commit ``block``."""
        result = self.validate_block(block)
        self.state.apply_writes(result.write_set)
        self.blocks.append(block)
        return result

    # -- internals ---------------------------------------------------------

    def _predict_root(self, result: ExecutionResult) -> bytes:
        from repro.merkle.partial import PartialSMT

        touched = result.touched_keys()
        if not touched:
            return self.state.root
        entries = self.state.prove_many(touched)
        partial = PartialSMT.from_proofs(self.state.root, entries)
        partial.update_batch(result.write_set)
        return partial.root
