"""Signed account-model transactions.

A transaction invokes one method of one contract with byte-encoded
arguments.  The sender authorizes it with an ECDSA signature over its
canonical encoding; miners, full nodes, *and the enclave program*
(Alg. 2, line 19) all re-check that signature before accepting it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto import PublicKey, Signature, sign, verify
from repro.crypto.hashing import Digest, hash_concat
from repro.crypto.keys import PrivateKey
from repro.errors import TransactionError

_SIG_DOMAIN = "repro-tx"


@dataclass(frozen=True, slots=True)
class Transaction:
    """One signed contract invocation."""

    sender: PublicKey
    nonce: int
    contract: str
    method: str
    args: tuple[str, ...]
    signature: Signature | None = field(default=None, compare=False)

    def signing_payload(self) -> bytes:
        """Canonical byte encoding covered by the signature."""
        return hash_concat(
            self.sender.to_bytes(),
            self.nonce.to_bytes(8, "big"),
            self.contract.encode("utf-8"),
            self.method.encode("utf-8"),
            json.dumps(list(self.args)).encode("utf-8"),
        )

    def tx_hash(self) -> Digest:
        """Transaction id: hash of payload and signature."""
        sig = self.signature.to_bytes() if self.signature is not None else b""
        return hash_concat(b"txid", self.signing_payload(), sig)

    def encode(self) -> bytes:
        """Wire encoding, also used as the Merkle tree leaf payload."""
        body = json.dumps(
            {
                "sender": self.sender.to_bytes().hex(),
                "nonce": self.nonce,
                "contract": self.contract,
                "method": self.method,
                "args": list(self.args),
                "sig": self.signature.to_bytes().hex() if self.signature else None,
            },
            sort_keys=True,
        )
        return body.encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> "Transaction":
        try:
            raw = json.loads(data.decode("utf-8"))
            return cls(
                sender=PublicKey.from_bytes(bytes.fromhex(raw["sender"])),
                nonce=int(raw["nonce"]),
                contract=raw["contract"],
                method=raw["method"],
                args=tuple(raw["args"]),
                signature=(
                    Signature.from_bytes(bytes.fromhex(raw["sig"]))
                    if raw["sig"]
                    else None
                ),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise TransactionError(f"malformed transaction encoding: {exc}") from exc

    def verify_signature(self) -> bool:
        """True iff the sender's signature is present and valid."""
        if self.signature is None:
            return False
        return verify(self.sender, self.signing_payload(), self.signature, _SIG_DOMAIN)


def sign_transaction(
    private: PrivateKey,
    nonce: int,
    contract: str,
    method: str,
    args: tuple[str, ...],
) -> Transaction:
    """Build and sign a transaction with the sender's private key."""
    unsigned = Transaction(
        sender=private.public_key(),
        nonce=nonce,
        contract=contract,
        method=method,
        args=args,
    )
    signature = sign(private, unsigned.signing_payload(), _SIG_DOMAIN)
    return Transaction(
        sender=unsigned.sender,
        nonce=nonce,
        contract=contract,
        method=method,
        args=args,
        signature=signature,
    )
