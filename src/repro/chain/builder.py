"""ChainBuilder: a convenience harness that assembles whole chains.

Tests, examples, and the benchmark workload generators all need "a
chain of N blocks running workload W".  ChainBuilder wires a VM with
the Blockbench contracts, a miner, and a full state together and exposes
a compact API for growing the chain block by block.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.chain.block import Block
from repro.chain.consensus import ProofOfWork
from repro.chain.executor import ExecutionResult
from repro.chain.genesis import make_genesis
from repro.chain.miner import Miner
from repro.chain.state import StateStore
from repro.chain.transaction import Transaction
from repro.chain.vm import VM, Contract
from repro.contracts import BLOCKBENCH


class ChainBuilder:
    """Owns a VM + miner + state and grows a chain deterministically."""

    def __init__(
        self,
        *,
        difficulty_bits: int = 4,
        state_depth: int = 64,
        network: str = "repro-net",
        contracts: Iterable[Contract] | None = None,
    ) -> None:
        self.vm = VM()
        deployed = (
            list(contracts)
            if contracts is not None
            else [factory() for factory in BLOCKBENCH.values()]
        )
        for contract in deployed:
            self.vm.deploy(contract)
        self.pow = ProofOfWork(difficulty_bits)
        self.miner = Miner(self.vm, self.pow)
        genesis, state = make_genesis(network=network, state_depth=state_depth)
        self.genesis = genesis
        self.state: StateStore = state
        self.blocks: list[Block] = [genesis]
        self.results: list[ExecutionResult | None] = [None]

    @property
    def tip(self) -> Block:
        return self.blocks[-1]

    @property
    def height(self) -> int:
        return self.tip.header.height

    def add_block(
        self, transactions: list[Transaction], *, verify_signatures: bool = True
    ) -> tuple[Block, ExecutionResult]:
        """Mine one block containing ``transactions`` and append it."""
        block, result = self.miner.make_block(
            self.tip.header,
            self.state,
            transactions,
            verify_signatures=verify_signatures,
        )
        self.blocks.append(block)
        self.results.append(result)
        return block, result

    def grow(
        self,
        num_blocks: int,
        tx_factory: Callable[[int], list[Transaction]],
        *,
        verify_signatures: bool = True,
    ) -> None:
        """Mine ``num_blocks`` blocks; ``tx_factory(height)`` supplies txs."""
        for _ in range(num_blocks):
            self.add_block(
                tx_factory(self.height + 1), verify_signatures=verify_signatures
            )

    def headers(self) -> list:
        return [block.header for block in self.blocks]
