"""Blockchain substrate: blocks, state, consensus, execution, nodes.

DCert sits *on top of* an existing blockchain (the paper prototypes on
Ethereum).  This package is that underlying system, built from scratch:

* account-model transactions signed with secp256k1 (:mod:`transaction`),
* block headers exactly as in the paper's Fig. 1 — ``H_prev_blk``,
  ``pi_cons``, ``H_state``, ``H_tx`` (:mod:`block`),
* global state committed by a sparse Merkle tree (:mod:`state`),
* a deterministic contract VM hosting the Blockbench workloads
  (:mod:`vm` and :mod:`repro.contracts`),
* a transaction executor that tracks read/write sets — the raw material
  for DCert's update proofs (:mod:`executor`),
* proof-of-work consensus and the longest-chain selection rule
  (:mod:`consensus`),
* miner / full node / mempool roles (:mod:`miner`, :mod:`node`), and
* the *traditional light client*, kept as the baseline DCert is measured
  against in Fig. 7 (:mod:`lightclient`).
"""

from repro.chain.block import Block, BlockHeader
from repro.chain.builder import ChainBuilder
from repro.chain.consensus import ProofOfWork
from repro.chain.executor import ExecutionResult, TransactionExecutor
from repro.chain.forktree import ForkAwareNode
from repro.chain.genesis import make_genesis
from repro.chain.lightclient import LightClient
from repro.chain.miner import Miner
from repro.chain.node import FullNode
from repro.chain.state import StateStore, state_key
from repro.chain.transaction import Transaction

__all__ = [
    "Block",
    "BlockHeader",
    "ChainBuilder",
    "ExecutionResult",
    "ForkAwareNode",
    "FullNode",
    "LightClient",
    "Miner",
    "ProofOfWork",
    "StateStore",
    "Transaction",
    "TransactionExecutor",
    "make_genesis",
    "state_key",
]
