"""Fork-aware block storage with reorg support.

The paper's chain-selection discussion (Alg. 3 line 8, §4.3) assumes
forks happen; superlight clients handle them by comparing certified
tips.  Full nodes — and therefore CIs and SPs — need more: they must
accept blocks on *any* known parent, track competing branches, and
reorganize their materialized state when a longer branch overtakes the
one they followed.

:class:`ForkAwareNode` does this with undo logs: committing a block
records each written cell's previous value, so rolling back to a fork
point is exact and cheap (no replay from genesis).  A reorg rolls back
to the common ancestor and applies the winning branch's blocks, fully
validating each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import Block
from repro.chain.consensus import ProofOfWork
from repro.chain.executor import ExecutionResult, TransactionExecutor
from repro.chain.state import StateStore
from repro.chain.vm import VM
from repro.crypto.hashing import Digest
from repro.errors import BlockValidationError
from repro.merkle.partial import PartialSMT


@dataclass(slots=True)
class _StoredBlock:
    block: Block
    parent: Digest
    height: int
    children: list[Digest] = field(default_factory=list)


class ForkAwareNode:
    """A full node that stores all branches and follows the best one.

    The *active* branch's state is materialized in ``self.state``;
    blocks on side branches are validated structurally (linkage, PoW,
    tx root, signatures) on arrival and semantically (state transition)
    when their branch becomes active.
    """

    def __init__(
        self,
        genesis: Block,
        genesis_state: StateStore,
        vm: VM,
        pow_engine: ProofOfWork,
    ) -> None:
        if genesis.header.height != 0:
            raise BlockValidationError("genesis block must have height 0")
        self.state = genesis_state
        self.executor = TransactionExecutor(vm)
        self.pow = pow_engine
        genesis_hash = genesis.header.header_hash()
        self._blocks: dict[Digest, _StoredBlock] = {
            genesis_hash: _StoredBlock(block=genesis, parent=b"", height=0)
        }
        self._genesis_hash = genesis_hash
        self._active: list[Digest] = [genesis_hash]  # genesis..tip hashes
        # Undo log per active block hash: cell -> value before the block.
        self._undo: dict[Digest, dict[bytes, bytes | None]] = {}
        self.reorg_count = 0

    # -- views ---------------------------------------------------------------

    @property
    def tip(self) -> Block:
        return self._blocks[self._active[-1]].block

    @property
    def height(self) -> int:
        return self.tip.header.height

    def active_chain(self) -> list[Block]:
        return [self._blocks[block_hash].block for block_hash in self._active]

    def knows(self, block_hash: Digest) -> bool:
        return block_hash in self._blocks

    def branch_tips(self) -> list[Block]:
        """Every leaf of the block tree (the active tip included)."""
        return [
            stored.block
            for stored in self._blocks.values()
            if not stored.children
        ]

    # -- ingestion -------------------------------------------------------------

    def add_block(self, block: Block) -> bool:
        """Store ``block`` and follow it if its branch is now best.

        Returns True when the active tip changed (extension or reorg).
        Raises :class:`BlockValidationError` for structurally invalid or
        orphan blocks, and for semantic failures on the active branch.
        """
        block_hash = block.header.header_hash()
        if block_hash in self._blocks:
            return False
        parent_hash = block.header.prev_hash
        parent = self._blocks.get(parent_hash)
        if parent is None:
            raise BlockValidationError("orphan block: unknown parent")
        if block.header.height != parent.height + 1:
            raise BlockValidationError("height does not extend its parent")
        if not self.pow.check(block.header):
            raise BlockValidationError("consensus proof (PoW) invalid")
        if not block.check_tx_root():
            raise BlockValidationError("transaction root mismatch")

        self._blocks[block_hash] = _StoredBlock(
            block=block, parent=parent_hash, height=block.header.height
        )
        parent.children.append(block_hash)

        if parent_hash == self._active[-1]:
            self._extend_active(block_hash)  # plain extension
            return True
        if block.header.height > self.height:
            self._reorg_to(block_hash)
            return True
        return False

    # -- internals ---------------------------------------------------------------

    def _execute_active(self, block: Block) -> ExecutionResult:
        result = self.executor.execute(self.state, list(block.transactions), strict=True)
        predicted = self._predict_root(result)
        if predicted != block.header.state_root:
            raise BlockValidationError("state root mismatch after re-execution")
        return result

    def _predict_root(self, result: ExecutionResult) -> Digest:
        touched = result.touched_keys()
        if not touched:
            return self.state.root
        entries = self.state.prove_many(touched)
        partial = PartialSMT.from_proofs(self.state.root, entries)
        partial.update_batch(result.write_set)
        return partial.root

    def _extend_active(self, block_hash: Digest) -> None:
        block = self._blocks[block_hash].block
        result = self._execute_active(block)
        undo = {
            key: self.state.get_raw(key) for key in result.write_set
        }
        self.state.apply_writes(result.write_set)
        self._undo[block_hash] = undo
        self._active.append(block_hash)

    def _rollback_one(self) -> None:
        block_hash = self._active.pop()
        undo = self._undo.pop(block_hash)
        self.state.apply_writes(undo)

    def _path_from_genesis(self, block_hash: Digest) -> list[Digest]:
        path = []
        cursor = block_hash
        while cursor != self._genesis_hash:
            path.append(cursor)
            cursor = self._blocks[cursor].parent
        path.append(self._genesis_hash)
        path.reverse()
        return path

    def _reorg_to(self, new_tip: Digest) -> None:
        """Switch the active branch to end at ``new_tip``.

        If a block on the winning branch turns out semantically invalid
        (its state transition lies), the reorg is aborted, the invalid
        suffix is discarded, and the original branch is restored.
        """
        old_active = list(self._active)
        target_path = self._path_from_genesis(new_tip)
        # Find the fork point: longest common prefix of the two paths.
        fork_depth = 0
        for ours, theirs in zip(self._active, target_path):
            if ours != theirs:
                break
            fork_depth += 1
        while len(self._active) > fork_depth:
            self._rollback_one()
        try:
            for block_hash in target_path[fork_depth:]:
                self._extend_active(block_hash)
        except BlockValidationError:
            # Discard the poisoned branch and restore the old one.
            bad_suffix = target_path[len(self._active):]
            for block_hash in bad_suffix:
                stored = self._blocks.pop(block_hash, None)
                if stored is not None:
                    parent = self._blocks.get(stored.parent)
                    if parent is not None and block_hash in parent.children:
                        parent.children.remove(block_hash)
            while len(self._active) > fork_depth:
                self._rollback_one()
            for block_hash in old_active[fork_depth:]:
                self._extend_active(block_hash)
            raise
        self.reorg_count += 1
