"""Blocks and block headers (the paper's Fig. 1 layout).

A header carries exactly the four fields the paper names — the previous
block hash ``H_prev_blk``, the consensus proof ``pi_cons`` (a PoW nonce
plus its difficulty), the state root ``H_state``, and the transaction
root ``H_tx`` — plus the height and a timestamp.  Headers serialize to a
stable byte encoding so that light-client storage (Fig. 7a) is measured
in honest bytes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.chain.transaction import Transaction
from repro.crypto.hashing import Digest, hash_concat
from repro.errors import BlockValidationError
from repro.merkle.mht import MerkleTree

ZERO_HASH: Digest = bytes(32)


@dataclass(frozen=True, slots=True)
class BlockHeader:
    """Immutable block header."""

    height: int
    prev_hash: Digest
    nonce: int  # pi_cons: the PoW solution
    difficulty_bits: int  # pi_cons: the target this block met
    state_root: Digest  # H_state
    tx_root: Digest  # H_tx
    timestamp: int

    def header_hash(self) -> Digest:
        """The block hash: H(hdr)."""
        return hash_concat(
            b"blk-hdr",
            self.height.to_bytes(8, "big"),
            self.prev_hash,
            self.nonce.to_bytes(8, "big"),
            self.difficulty_bits.to_bytes(2, "big"),
            self.state_root,
            self.tx_root,
            self.timestamp.to_bytes(8, "big"),
        )

    def encode(self) -> bytes:
        """Stable wire encoding (used for storage accounting)."""
        return json.dumps(
            {
                "height": self.height,
                "prev": self.prev_hash.hex(),
                "nonce": self.nonce,
                "bits": self.difficulty_bits,
                "state": self.state_root.hex(),
                "tx": self.tx_root.hex(),
                "ts": self.timestamp,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> "BlockHeader":
        try:
            raw = json.loads(data.decode("utf-8"))
            return cls(
                height=int(raw["height"]),
                prev_hash=bytes.fromhex(raw["prev"]),
                nonce=int(raw["nonce"]),
                difficulty_bits=int(raw["bits"]),
                state_root=bytes.fromhex(raw["state"]),
                tx_root=bytes.fromhex(raw["tx"]),
                timestamp=int(raw["ts"]),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise BlockValidationError(f"malformed header encoding: {exc}") from exc

    def size_bytes(self) -> int:
        return len(self.encode())


@dataclass(frozen=True, slots=True)
class Block:
    """A header plus its full transaction list."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]

    def block_hash(self) -> Digest:
        return self.header.header_hash()

    def compute_tx_root(self) -> Digest:
        return MerkleTree([tx.encode() for tx in self.transactions]).root

    def check_tx_root(self) -> bool:
        """True iff the header's H_tx commits to these transactions."""
        return self.compute_tx_root() == self.header.tx_root


def encode_block(block: Block) -> bytes:
    """Stable wire encoding of a full block (header + transactions)."""
    import json

    return json.dumps(
        {
            "header": block.header.encode().decode("utf-8"),
            "txs": [tx.encode().decode("utf-8") for tx in block.transactions],
        },
        sort_keys=True,
    ).encode("utf-8")


def decode_block(data: bytes) -> Block:
    """Parse :func:`encode_block` output; raises on malformed input."""
    import json

    from repro.chain.transaction import Transaction

    try:
        raw = json.loads(data.decode("utf-8"))
        header = BlockHeader.decode(raw["header"].encode("utf-8"))
        transactions = tuple(
            Transaction.decode(tx.encode("utf-8")) for tx in raw["txs"]
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise BlockValidationError(f"malformed block encoding: {exc}") from exc
    return Block(header=header, transactions=transactions)
