"""Durable on-disk chain archive: a crash-safe WAL plus checkpoints.

A production CI must survive restarts: the chain, the certificates it
issued, and the enclave signing key (sealed — see
:mod:`repro.sgx.sealing`) all need to outlive the process — and outlive
it *through a crash*, not just a clean shutdown.  The archive is built
from two pieces:

* :class:`WriteAheadLog` — an append-only file of length-and-CRC framed
  records behind a simulated fsync boundary.  A crash can lose the
  un-fsynced tail or tear the final record; on load a torn tail is
  detected (incomplete frame) and *truncated away* instead of failing
  the whole archive, while a CRC mismatch anywhere (bytes present but
  wrong) is surfaced as a typed
  :class:`~repro.errors.ArchiveCorruptionError`.
* a **checkpoint sidecar** updated atomically (write temp file, then
  ``os.replace``) holding an enclave-sealed snapshot of issuer state,
  so recovery unseals the snapshot and replays only the WAL records
  past it — O(gap) enclave work instead of O(chain) (see
  :mod:`repro.core.recovery`).

Record stream layout: one ``head`` record first (exactly once, carrying
the sealed signing key), then ``block`` records (block, certificates,
index roots, write set) interleaved with ``staged`` records — the
staging journal of the batched path, letting recovery finish a batch
the crash interrupted.  Certificates are stored as issued (they cannot
be re-derived without the enclave) and are re-verified on restore, so a
tampered archive is rejected rather than trusted.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.chain.block import Block, decode_block, encode_block
from repro.core.certificate import Certificate
from repro.errors import ArchiveCorruptionError, ArchiveFormatError
from repro.fault.crashpoints import crash_now, crashpoint, torn_prefix

_FRAME_HEADER_BYTES = 8  # 4-byte big-endian length + 4-byte CRC32
#: Sanity bound on a single framed record; a length field beyond this is
#: treated as corruption rather than an (absurd) allocation request.
_MAX_RECORD_BYTES = 64 * 1024 * 1024


def _frame(payload: bytes) -> bytes:
    return (
        len(payload).to_bytes(4, "big")
        + zlib.crc32(payload).to_bytes(4, "big")
        + payload
    )


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-temp-then-rename: readers see the old file or the new one,
    never a partial mix."""
    handle, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as temp:
            temp.write(data)
            temp.flush()
            os.fsync(temp.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


class WriteAheadLog:
    """Append-only CRC-framed record log with torn-tail recovery."""

    MAGIC = b"DCWAL2\n"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def create(self, first_payloads: tuple[bytes, ...] = ()) -> None:
        """(Re)create the log atomically, optionally pre-seeded with
        records — the archive head lands durably or not at all."""
        data = self.MAGIC + b"".join(_frame(p) for p in first_payloads)
        _atomic_write(self.path, data)

    def append(self, payload: bytes) -> None:
        """Durably append one framed record (the fsync boundary).

        Crashpoints model the three interesting positions: before any
        byte lands (record lost whole), after a torn partial write, and
        after the fsync (record durable, crash right after).
        """
        data = _frame(payload)
        crashpoint("wal.append.pre_write")
        torn = torn_prefix("wal.append.torn_write", len(data))
        with self.path.open("ab") as handle:
            if torn is not None:
                handle.write(data[:torn])
                handle.flush()
                os.fsync(handle.fileno())
                crash_now("wal.append.torn_write")
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        if obs.enabled():
            obs.inc("storage.wal_appends")
            obs.inc("storage.wal_bytes_written", len(data))
        crashpoint("wal.append.post_fsync")

    def read(self, *, repair: bool = True) -> tuple[list[bytes], int]:
        """Read every record payload; returns ``(payloads, torn_bytes)``.

        An incomplete final frame is a torn tail: with ``repair`` the
        file is truncated back to the last complete record (and the
        dropped byte count returned); without it the torn bytes are
        only skipped.  A complete frame whose CRC does not match raises
        :class:`ArchiveCorruptionError` — that is corruption or
        tampering, not a crash artifact, and must not be silently
        dropped.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError as exc:
            raise ArchiveFormatError(f"no archive at {self.path}") from exc
        if not data.startswith(self.MAGIC):
            raise ArchiveFormatError(
                f"{self.path} is not a DCert WAL (bad magic)"
            )
        payloads: list[bytes] = []
        offset = len(self.MAGIC)
        while offset < len(data):
            remaining = len(data) - offset
            if remaining < _FRAME_HEADER_BYTES:
                break  # torn: not even a whole frame header
            length = int.from_bytes(data[offset : offset + 4], "big")
            crc = int.from_bytes(data[offset + 4 : offset + 8], "big")
            if length > _MAX_RECORD_BYTES:
                raise ArchiveCorruptionError(
                    f"record at byte {offset} claims {length} bytes "
                    f"(corrupted length field)"
                )
            if remaining - _FRAME_HEADER_BYTES < length:
                break  # torn: payload incomplete
            payload = data[
                offset + _FRAME_HEADER_BYTES : offset + _FRAME_HEADER_BYTES + length
            ]
            if zlib.crc32(payload) != crc:
                raise ArchiveCorruptionError(
                    f"CRC mismatch in record {len(payloads)} "
                    f"at byte {offset} of {self.path}"
                )
            payloads.append(payload)
            offset += _FRAME_HEADER_BYTES + length
        torn_bytes = len(data) - offset
        if torn_bytes and repair:
            with self.path.open("rb+") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
            obs.inc("storage.torn_tail_truncations")
            obs.inc("storage.torn_tail_bytes_dropped", torn_bytes)
        return payloads, torn_bytes


@dataclass(slots=True)
class ArchiveEntry:
    """One certified block as persisted: everything recovery needs to
    rebuild the CI's untrusted state without re-executing the block."""

    block: Block
    certificate: Certificate | None
    index_certificates: dict[str, Certificate] = field(default_factory=dict)
    index_roots: dict[str, bytes] = field(default_factory=dict)
    write_set: dict[bytes, bytes | None] = field(default_factory=dict)


@dataclass(slots=True)
class StagedEntry:
    """One staging-journal record: validated + committed, not certified."""

    block: Block
    write_set: dict[bytes, bytes | None] = field(default_factory=dict)


@dataclass(slots=True)
class ArchiveContents:
    """Everything :meth:`ChainArchive.load` recovered from disk."""

    sealed_key: bytes
    entries: list[ArchiveEntry]
    staged: list[StagedEntry]
    torn_bytes_dropped: int = 0

    def pending_staged(self) -> list[StagedEntry]:
        """Staged blocks the crash left uncertified, in replayable order.

        A staged height is consumed once a ``block`` record exists for
        it.  The survivors must chain contiguously on the certified
        tip; anything past a gap (its predecessor's staged record was
        lost to a torn tail) cannot be replayed and is dropped — the
        workload source re-submits it.
        """
        certified = {entry.block.header.height for entry in self.entries}
        tip = len(self.entries)
        by_height: dict[int, StagedEntry] = {}
        for staged in self.staged:  # last occurrence wins (re-staged on recovery)
            if staged.block.header.height not in certified:
                by_height[staged.block.header.height] = staged
        pending: list[StagedEntry] = []
        expect = tip + 1
        for height in sorted(by_height):
            if height != expect:
                break
            pending.append(by_height[height])
            expect += 1
        return pending


def _encode_write_set(write_set: dict[bytes, bytes | None]) -> dict[str, str | None]:
    return {
        key.hex(): (value.hex() if value is not None else None)
        for key, value in write_set.items()
    }


def _decode_write_set(raw: dict) -> dict[bytes, bytes | None]:
    try:
        return {
            bytes.fromhex(key): (bytes.fromhex(value) if value is not None else None)
            for key, value in raw.items()
        }
    except (ValueError, AttributeError) as exc:
        raise ArchiveCorruptionError(f"malformed write set in archive: {exc}") from exc


class ChainArchive:
    """Append-only archive of certified blocks over a durable WAL."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.wal = WriteAheadLog(self.path)

    @property
    def checkpoint_path(self) -> Path:
        return self.path.with_name(self.path.name + ".ckpt")

    # -- writing ------------------------------------------------------------

    def initialize(self, sealed_key: bytes) -> None:
        """Write the head record (truncates any existing archive).

        Atomic: the new archive (magic + head) replaces the old file in
        one rename, so a crash mid-initialize leaves either the old
        archive or a complete new one.  A stale checkpoint from the
        replaced archive is removed first — it cannot describe the new
        record stream.
        """
        try:
            os.unlink(self.checkpoint_path)
        except OSError:
            pass
        head = {"kind": "head", "format": 2, "sealed_key": sealed_key.hex()}
        self.wal.create((self._dump(head),))

    def append(self, block: Block, certificate: Certificate | None) -> None:
        """Append one certified block (compatibility form: no indexes)."""
        self.append_record(
            block,
            certificate,
            index_certificates={},
            index_roots={},
            write_set={},
        )

    def append_record(
        self,
        block: Block,
        certificate: Certificate | None,
        *,
        index_certificates: dict[str, Certificate],
        index_roots: dict[str, bytes],
        write_set: dict[bytes, bytes | None],
    ) -> None:
        """Durably append one fully-described certified block."""
        record = {
            "kind": "block",
            "block": encode_block(block).decode("utf-8"),
            "certificate": (
                certificate.encode().decode("utf-8")
                if certificate is not None
                else None
            ),
            "index_certificates": {
                name: cert.encode().decode("utf-8")
                for name, cert in index_certificates.items()
            },
            "index_roots": {
                name: root.hex() for name, root in index_roots.items()
            },
            "write_set": _encode_write_set(write_set),
        }
        self.wal.append(self._dump(record))

    def append_staged(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> None:
        """Journal one staged (validated, uncertified) block."""
        record = {
            "kind": "staged",
            "block": encode_block(block).decode("utf-8"),
            "write_set": _encode_write_set(write_set),
        }
        self.wal.append(self._dump(record))

    def write_checkpoint(self, height: int, sealed: bytes) -> None:
        """Atomically replace the checkpoint sidecar (temp + rename)."""
        payload = self._dump(
            {"kind": "checkpoint", "height": height, "sealed": sealed.hex()}
        )
        crashpoint("archive.checkpoint.pre_rename")
        _atomic_write(self.checkpoint_path, WriteAheadLog.MAGIC + _frame(payload))
        if obs.enabled():
            obs.inc("storage.checkpoint_writes")
            obs.set_gauge("storage.checkpoint_bytes", len(sealed))
            obs.set_gauge("storage.checkpoint_height", height)
        crashpoint("archive.checkpoint.post_rename")

    # -- reading ------------------------------------------------------------

    def read_checkpoint(self) -> tuple[int, bytes] | None:
        """The latest checkpoint as ``(height, sealed blob)``, if any.

        The sidecar is written atomically, so a malformed file is
        tampering or media corruption — surfaced as
        :class:`ArchiveCorruptionError`, never silently ignored.
        """
        sidecar = WriteAheadLog(self.checkpoint_path)
        try:
            payloads, torn = sidecar.read(repair=False)
        except ArchiveFormatError as exc:
            if self.checkpoint_path.exists():
                raise ArchiveCorruptionError(
                    f"checkpoint sidecar {self.checkpoint_path} is malformed"
                ) from exc
            return None
        if torn or len(payloads) != 1:
            raise ArchiveCorruptionError(
                f"checkpoint sidecar {self.checkpoint_path} is malformed"
            )
        record = self._parse(payloads[0])
        if record.get("kind") != "checkpoint":
            raise ArchiveCorruptionError("checkpoint sidecar has wrong record kind")
        try:
            return int(record["height"]), bytes.fromhex(record["sealed"])
        except (KeyError, ValueError) as exc:
            raise ArchiveCorruptionError(
                f"checkpoint sidecar fields malformed: {exc}"
            ) from exc

    def load(self) -> ArchiveContents:
        """Read and structurally validate the whole archive.

        Enforces the record-stream contract — head record first,
        exactly once; block records at consecutive heights from 1 —
        and repairs a torn tail by truncation.  Raises typed
        :class:`~repro.errors.StorageError` subclasses on violations
        (never a bare ``JSONDecodeError``).
        """
        payloads, torn_bytes = self.wal.read(repair=True)
        if not payloads:
            raise ArchiveFormatError("archive has no head record")
        sealed_key: bytes | None = None
        entries: list[ArchiveEntry] = []
        staged: list[StagedEntry] = []
        for position, payload in enumerate(payloads):
            record = self._parse(payload)
            kind = record.get("kind")
            if kind == "head":
                if position != 0:
                    raise ArchiveFormatError(
                        "head record must be first"
                        if sealed_key is None
                        else "duplicate head record"
                    )
                try:
                    sealed_key = bytes.fromhex(record["sealed_key"])
                except (KeyError, ValueError) as exc:
                    raise ArchiveCorruptionError(
                        f"head record malformed: {exc}"
                    ) from exc
            elif kind == "block":
                if sealed_key is None:
                    raise ArchiveFormatError(
                        "archive does not start with its head record"
                    )
                entry = self._decode_block_record(record)
                expected = len(entries) + 1
                if entry.block.header.height != expected:
                    raise ArchiveFormatError(
                        f"block record at height {entry.block.header.height} "
                        f"where {expected} was expected"
                    )
                entries.append(entry)
            elif kind == "staged":
                if sealed_key is None:
                    raise ArchiveFormatError(
                        "archive does not start with its head record"
                    )
                staged.append(
                    StagedEntry(
                        block=decode_block(record["block"].encode("utf-8")),
                        write_set=_decode_write_set(record.get("write_set", {})),
                    )
                )
            else:
                raise ArchiveFormatError(
                    f"unknown archive record kind {kind!r}"
                )
        if sealed_key is None:
            raise ArchiveFormatError("archive has no head record")
        return ArchiveContents(
            sealed_key=sealed_key,
            entries=entries,
            staged=staged,
            torn_bytes_dropped=torn_bytes,
        )

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _dump(record: dict) -> bytes:
        return json.dumps(record, sort_keys=True).encode("utf-8")

    @staticmethod
    def _parse(payload: bytes) -> dict:
        try:
            record = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ArchiveCorruptionError(
                f"archive record is not valid JSON: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ArchiveCorruptionError("archive record is not an object")
        return record

    @staticmethod
    def _decode_block_record(record: dict) -> ArchiveEntry:
        try:
            block = decode_block(record["block"].encode("utf-8"))
            certificate = (
                Certificate.decode(record["certificate"].encode("utf-8"))
                if record.get("certificate") is not None
                else None
            )
            index_certificates = {
                name: Certificate.decode(cert.encode("utf-8"))
                for name, cert in record.get("index_certificates", {}).items()
            }
            index_roots = {
                name: bytes.fromhex(root)
                for name, root in record.get("index_roots", {}).items()
            }
        except (KeyError, AttributeError, ValueError) as exc:
            raise ArchiveCorruptionError(
                f"block record malformed: {exc}"
            ) from exc
        return ArchiveEntry(
            block=block,
            certificate=certificate,
            index_certificates=index_certificates,
            index_roots=index_roots,
            write_set=_decode_write_set(record.get("write_set", {})),
        )


def restore_issuer(
    archive: ChainArchive,
    genesis: Block,
    genesis_state,
    vm,
    pow_engine,
    *,
    index_specs=None,
    platform=None,
    ias=None,
):
    """Rebuild a :class:`~repro.core.issuer.CertificateIssuer` from an
    archive (compatibility entry point).

    The enclave unseals the archived signing key (same platform + same
    program required); with a checkpoint present, recovery is
    checkpoint-unseal plus O(gap) WAL-tail replay, otherwise every
    archived block is re-validated and re-certified and each archived
    certificate checked against the replay — a certificate that does
    not match means the archive was tampered with, and loading fails.
    See :func:`repro.core.recovery.recover_issuer` for the durable
    (journaling) form this wraps.
    """
    from repro.core.recovery import recover_issuer

    durable = recover_issuer(
        archive,
        genesis,
        genesis_state,
        vm,
        pow_engine,
        index_specs=index_specs,
        platform=platform,
        ias=ias,
    )
    return durable.issuer
