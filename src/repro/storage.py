"""On-disk chain archive: persist and restore a certified chain.

A production CI must survive restarts: the chain, the certificates it
issued, and the enclave signing key (sealed — see
:mod:`repro.sgx.sealing`) all need to outlive the process.  The archive
is an append-only JSON-lines file — one record per certified block —
plus a head record carrying the sealed key.  Restoring replays the
blocks through a fresh :class:`~repro.core.issuer.CertificateIssuer`
whose enclave unseals the original key, so the restored CI issues
certificates under the *same* ``pk_enc`` and clients notice nothing.

Certificates are stored as issued (they cannot be re-derived without
the enclave) and are verified against the replayed chain on load, so a
tampered archive is rejected rather than trusted.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.chain.block import Block, decode_block, encode_block
from repro.core.certificate import Certificate
from repro.core.digest import block_digest
from repro.errors import CertificateError


class ChainArchive:
    """Append-only archive of certified blocks."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def initialize(self, sealed_key: bytes) -> None:
        """Write the head record (truncates any existing archive)."""
        head = {"kind": "head", "sealed_key": sealed_key.hex()}
        self.path.write_text(json.dumps(head, sort_keys=True) + "\n")

    def append(self, block: Block, certificate: Certificate | None) -> None:
        """Append one certified block."""
        record = {
            "kind": "block",
            "block": encode_block(block).decode("utf-8"),
            "certificate": (
                certificate.encode().decode("utf-8")
                if certificate is not None
                else None
            ),
        }
        with self.path.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def load(self) -> tuple[bytes, list[tuple[Block, Certificate | None]]]:
        """Read the sealed key and the certified block sequence."""
        sealed_key: bytes | None = None
        entries: list[tuple[Block, Certificate | None]] = []
        with self.path.open() as handle:
            for line in handle:
                record = json.loads(line)
                if record["kind"] == "head":
                    sealed_key = bytes.fromhex(record["sealed_key"])
                elif record["kind"] == "block":
                    block = decode_block(record["block"].encode("utf-8"))
                    certificate = (
                        Certificate.decode(record["certificate"].encode("utf-8"))
                        if record["certificate"] is not None
                        else None
                    )
                    entries.append((block, certificate))
                else:
                    raise CertificateError(
                        f"unknown archive record kind {record['kind']!r}"
                    )
        if sealed_key is None:
            raise CertificateError("archive has no head record")
        return sealed_key, entries


def restore_issuer(
    archive: ChainArchive,
    genesis: Block,
    genesis_state,
    vm,
    pow_engine,
    *,
    index_specs=None,
    platform=None,
    ias=None,
):
    """Rebuild a :class:`CertificateIssuer` from an archive.

    The enclave unseals the archived signing key (same platform + same
    program required), every archived block is re-validated and
    re-certified during replay, and each archived certificate is checked
    against the replayed chain — a certificate that does not match its
    block means the archive was tampered with, and loading fails.
    """
    from repro.core.issuer import CertificateIssuer
    from repro.sgx.attestation import WELL_KNOWN_IAS

    sealed_key, entries = archive.load()
    issuer = CertificateIssuer(
        genesis,
        genesis_state,
        vm,
        pow_engine,
        index_specs=index_specs,
        platform=platform,
        ias=ias if ias is not None else WELL_KNOWN_IAS,
        sealed_key=sealed_key,
    )
    for block, certificate in entries:
        certified = issuer.process_block(block)
        if certificate is not None:
            if certificate.dig != block_digest(block.header):
                raise CertificateError("archived certificate does not match block")
            if certified.certificate is not None and (
                certificate.sig != certified.certificate.sig
            ):
                raise CertificateError(
                    "archived certificate was not issued by this enclave key"
                )
    return issuer
