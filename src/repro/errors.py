"""Exception hierarchy shared across the DCert reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without catching programming errors.  Verification
failures deliberately carry a human-readable reason: in the paper's threat
model the CI and SP are untrusted, so "why did verification fail" is part
of the observable behaviour that tests assert on.

Every class additionally carries a **stable wire code** (``code``) and a
**retryability flag** (``retryable``).  The RPC layer puts the code in
:class:`repro.net.rpc.RpcResponse` so a remote failure crosses the
network as a typed member of this taxonomy rather than a stringly-typed
payload, and the gateway/retry machinery uses ``retryable`` to separate
transport faults worth another attempt (timeouts, unreachable or
overloaded endpoints) from terminal failures that no amount of retrying
fixes (a query against a missing index, a certificate that does not
verify).  Codes are part of the wire contract: renaming one is a
protocol change.
"""

from __future__ import annotations

from typing import ClassVar


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""

    #: Stable identifier used on the wire (see :func:`code_for`).
    code: ClassVar[str] = "error"
    #: Whether a retry or failover may plausibly succeed.  Transport
    #: faults are retryable; semantic/verification failures are not.
    retryable: ClassVar[bool] = False


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, malformed signature...)."""

    code = "crypto"


class SignatureError(CryptoError):
    """A signature failed to verify."""

    code = "crypto.signature"


class ProofError(ReproError):
    """An authenticated-structure proof failed to verify."""

    code = "proof"


class StateError(ReproError):
    """Blockchain state is inconsistent with what a block commits to."""

    code = "state"


class ConsensusError(ReproError):
    """A consensus rule was violated (difficulty, chain selection...)."""

    code = "consensus"


class BlockValidationError(ReproError):
    """A block failed structural or semantic validation."""

    code = "block"


class TransactionError(ReproError):
    """A transaction is malformed, unauthorized, or failed to execute."""

    code = "transaction"


class EnclaveError(ReproError):
    """The (simulated) SGX enclave rejected an operation."""

    code = "enclave"


class AttestationError(EnclaveError):
    """Remote attestation failed (bad quote, wrong measurement...)."""

    code = "enclave.attestation"


class CertificateError(ReproError):
    """A DCert certificate failed construction or verification."""

    code = "certificate"


class QueryError(ReproError):
    """A verifiable query failed processing or result verification."""

    code = "query"


class StorageError(ReproError):
    """Base class for durable-archive (WAL/checkpoint) failures."""

    code = "storage"


class ArchiveFormatError(StorageError):
    """The archive violates its structural contract (bad magic, head
    record missing/duplicated/out of place, non-consecutive heights)."""

    code = "storage.format"


class ArchiveCorruptionError(StorageError):
    """Archive bytes are present but wrong (CRC mismatch, undecodable
    record) — corruption or tampering, distinct from a torn tail, which
    is a normal crash artifact and repaired by truncation."""

    code = "storage.corruption"


class ConfigError(ReproError):
    """A component was constructed or configured incoherently.

    Raised before any protocol work happens (a client config mixing
    local- and remote-mode settings, a schedule generator asked for an
    unknown profile), so never retryable: the caller's arguments are
    wrong and will be wrong again."""

    code = "config"


class NetworkError(ReproError):
    """Base class for failures in the simulated network / RPC layer."""

    code = "net"
    retryable = True


class BusError(NetworkError):
    """The simulated message bus was mis-wired (duplicate or unknown
    node names).

    Not retryable, despite being a :class:`NetworkError`: topology is
    static once built, so re-sending to a node that is not wired will
    deterministically fail again."""

    code = "net.bus"
    retryable = False


class WireError(NetworkError):
    """A message could not be encoded to or decoded from wire bytes."""

    code = "net.wire"


class RpcTimeoutError(NetworkError):
    """An RPC call got no response within its deadline (after retries)."""

    code = "net.timeout"


class ServiceUnavailableError(NetworkError):
    """Every candidate service endpoint failed within bounded retries."""

    code = "net.unavailable"


class ResponseIntegrityError(NetworkError):
    """A response arrived but failed integrity checks (corrupted wire
    bytes, mismatched request echo, or proof verification against the
    certified roots) — the paper's untrusted-SP threat model surfacing
    at the network layer."""

    code = "net.integrity"


class RemoteCallError(NetworkError):
    """The remote endpoint reported a failure that has no local
    exception type to map back onto.

    Not retryable, despite being a :class:`NetworkError`: the endpoint
    *answered* — repeating the identical request will deterministically
    fail the same way (e.g. an unknown method)."""

    code = "net.remote"
    retryable = False


class OverloadedError(NetworkError):
    """The endpoint is alive but shed this request under load.

    Retryable, but only *with backoff*: the server attaches a
    ``retry_after_ms`` hint (how long until its admission queue should
    drain back under the shed threshold) and clients wait at least that
    long — clamped, since the hint crosses the wire from an untrusted
    endpoint — before the next attempt.  Immediate retries are exactly
    the amplification that turns a load spike into a metastable
    failure."""

    code = "net.overloaded"

    def __init__(self, message: str = "", *, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        #: Server-suggested backoff before retrying.  Advisory and
        #: untrusted: consumers clamp it (see
        #: :func:`repro.net.resilience.clamp_retry_after`).
        self.retry_after_ms = retry_after_ms


class DeadlineExceededError(NetworkError):
    """The request's propagated deadline expired before an answer.

    Not retryable, despite being transport-class: the time budget is a
    property of the *call*, not the endpoint — re-sending the same
    expired deadline deterministically fails again, and minting a fresh
    deadline is the caller's decision, not the retry loop's."""

    code = "net.deadline"
    retryable = False


# -- the code registry --------------------------------------------------------


def _walk(cls: type[ReproError]):
    yield cls
    for sub in cls.__subclasses__():
        yield from _walk(sub)


#: code -> class, for every error defined above.  Subclasses that do not
#: declare their own ``code`` inherit their parent's, so the parent (the
#: first registrant) wins the mapping — decoding stays within the
#: taxonomy even for codes minted after this build.
ERROR_CODES: dict[str, type[ReproError]] = {}
for _cls in _walk(ReproError):
    ERROR_CODES.setdefault(_cls.code, _cls)
del _cls


def code_for(exc: BaseException | type[BaseException]) -> str:
    """The stable wire code for ``exc`` (class or instance)."""
    cls = exc if isinstance(exc, type) else type(exc)
    if issubclass(cls, ReproError):
        return cls.code
    return RemoteCallError.code


def error_for_code(code: object) -> type[ReproError]:
    """The local class a wire code maps back onto.

    Unknown or missing codes map to :class:`RemoteCallError` — a remote
    endpoint running newer code must degrade to "some remote failure",
    never crash the client.
    """
    if isinstance(code, str):
        known = ERROR_CODES.get(code)
        if known is not None:
            return known
    return RemoteCallError


def is_retryable_code(code: object) -> bool:
    """Whether a remote failure with this wire code is worth retrying."""
    return error_for_code(code).retryable
