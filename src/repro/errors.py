"""Exception hierarchy shared across the DCert reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without catching programming errors.  Verification
failures deliberately carry a human-readable reason: in the paper's threat
model the CI and SP are untrusted, so "why did verification fail" is part
of the observable behaviour that tests assert on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CryptoError(ReproError):
    """A cryptographic operation failed (bad key, malformed signature...)."""


class SignatureError(CryptoError):
    """A signature failed to verify."""


class ProofError(ReproError):
    """An authenticated-structure proof failed to verify."""


class StateError(ReproError):
    """Blockchain state is inconsistent with what a block commits to."""


class ConsensusError(ReproError):
    """A consensus rule was violated (difficulty, chain selection...)."""


class BlockValidationError(ReproError):
    """A block failed structural or semantic validation."""


class TransactionError(ReproError):
    """A transaction is malformed, unauthorized, or failed to execute."""


class EnclaveError(ReproError):
    """The (simulated) SGX enclave rejected an operation."""


class AttestationError(EnclaveError):
    """Remote attestation failed (bad quote, wrong measurement...)."""


class CertificateError(ReproError):
    """A DCert certificate failed construction or verification."""


class QueryError(ReproError):
    """A verifiable query failed processing or result verification."""


class StorageError(ReproError):
    """Base class for durable-archive (WAL/checkpoint) failures."""


class ArchiveFormatError(StorageError):
    """The archive violates its structural contract (bad magic, head
    record missing/duplicated/out of place, non-consecutive heights)."""


class ArchiveCorruptionError(StorageError):
    """Archive bytes are present but wrong (CRC mismatch, undecodable
    record) — corruption or tampering, distinct from a torn tail, which
    is a normal crash artifact and repaired by truncation."""


class NetworkError(ReproError):
    """Base class for failures in the simulated network / RPC layer."""


class WireError(NetworkError):
    """A message could not be encoded to or decoded from wire bytes."""


class RpcTimeoutError(NetworkError):
    """An RPC call got no response within its deadline (after retries)."""


class ServiceUnavailableError(NetworkError):
    """Every candidate service endpoint failed within bounded retries."""


class ResponseIntegrityError(NetworkError):
    """A response arrived but failed integrity checks (corrupted wire
    bytes, mismatched request echo, or proof verification against the
    certified roots) — the paper's untrusted-SP threat model surfacing
    at the network layer."""


class RemoteCallError(NetworkError):
    """The remote endpoint reported a failure that has no local
    exception type to map back onto."""
