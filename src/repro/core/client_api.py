"""The unified light-client verification surface.

Both client flavors — the in-process :class:`SuperlightClient` and the
networked :class:`RemoteSuperlightClient` — expose the same five-method
contract, captured here as a :class:`typing.Protocol` so call sites can
be written once against :class:`LightClient` and handed either flavor.

The protocol is ``runtime_checkable``: ``isinstance(obj, LightClient)``
verifies (structurally) that every member is present, which is what the
conformance tests assert for both implementations.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.chain.block import BlockHeader
from repro.core.certificate import Certificate
from repro.crypto.hashing import Digest
from repro.query.api import QueryAnswer, QueryRequest


@runtime_checkable
class LightClient(Protocol):
    """What every DCert light client can do, regardless of transport."""

    @property
    def latest_header(self) -> BlockHeader | None:
        """The adopted chain tip's header (None before bootstrap)."""
        ...

    def validate_chain(self, header: BlockHeader, cert: Certificate) -> bool:
        """Alg. 3: adopt a candidate certified tip if it wins chain
        selection; raise :class:`~repro.errors.CertificateError` when
        the certificate is invalid."""
        ...

    def verify_answer(self, request: QueryRequest, answer: QueryAnswer) -> bool:
        """Check a typed query answer against the certified index roots."""
        ...

    def certified_index_root(self, name: str) -> Digest:
        """The latest certified root of index ``name``; raises
        :class:`~repro.errors.CertificateError` when none is held."""
        ...

    def storage_bytes(self) -> int:
        """The client's durable state size — the paper's constant budget."""
        ...
