"""The unified light-client surface: one protocol, one entry point.

Both client flavors — the in-process :class:`SuperlightClient` and the
networked :class:`RemoteSuperlightClient` — expose the same contract,
captured here as a :class:`typing.Protocol` so call sites can be
written once against :class:`LightClient` and handed either flavor.
Since the push tier landed, the contract covers *staying* at the tip
too: ``on_tip``/``subscribe``/``unsubscribe`` are part of the protocol,
implemented by the local client as a direct issuer callback and by the
remote client as a hub subscription (:mod:`repro.net.pubsub`).

The protocol is ``runtime_checkable``: ``isinstance(obj, LightClient)``
verifies (structurally) that every member is present, which is what the
conformance tests assert for both implementations.

Construction goes through one factory::

    from repro.core.client_api import ClientConfig, connect

    client = connect(ClientConfig(
        measurement=measurement,
        ias_public_key=ias.public_key,
        bus=bus, name="wallet",
        issuers=("ci",), gateway=gateway, hub="ci",
        bootstrap=True, subscribe=True,
    ))

:func:`connect` builds every client shape uniformly — local
(``bus=None``), remote single-provider, remote gateway-fronted, and
subscribing — replacing the constructor sprawl the clients had accreted
(transport vs gateway mode, retry knobs, cache wiring).  The old
constructors keep working for one release behind a
``DeprecationWarning``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.chain.block import BlockHeader
from repro.core.certificate import Certificate
from repro.crypto import PublicKey
from repro.crypto.hashing import Digest
from repro.errors import ConfigError
from repro.query.api import QueryAnswer, QueryRequest


@runtime_checkable
class LightClient(Protocol):
    """What every DCert light client can do, regardless of transport."""

    @property
    def latest_header(self) -> BlockHeader | None:
        """The adopted chain tip's header (None before bootstrap)."""
        ...

    def validate_chain(self, header: BlockHeader, cert: Certificate) -> bool:
        """Alg. 3: adopt a candidate certified tip if it wins chain
        selection; raise :class:`~repro.errors.CertificateError` when
        the certificate is invalid."""
        ...

    def verify_answer(self, request: QueryRequest, answer: QueryAnswer) -> bool:
        """Check a typed query answer against the certified index roots."""
        ...

    def certified_index_root(self, name: str) -> Digest:
        """The latest certified root of index ``name``; raises
        :class:`~repro.errors.CertificateError` when none is held."""
        ...

    def storage_bytes(self) -> int:
        """The client's durable state size — the paper's constant budget."""
        ...

    # -- the streaming surface (push-based tip propagation) ------------------

    def on_tip(
        self, callback: Callable[[BlockHeader, Certificate], object]
    ) -> Callable[[BlockHeader, Certificate], object]:
        """Register ``callback(header, certificate)`` to fire whenever a
        new certified tip is adopted (pushed, pulled, or validated
        directly).  Returns the callback, decorator-style."""
        ...

    def subscribe(self, source: object | None = None) -> None:
        """Start receiving certified tips as they are issued.  A local
        client attaches directly to an issuer's ``on_certified`` hook
        (pass it as ``source``); a remote client subscribes to its
        configured :class:`~repro.net.pubsub.SubscriptionHub`."""
        ...

    def unsubscribe(self) -> None:
        """Stop receiving pushed tips (idempotent)."""
        ...


@dataclass(frozen=True, slots=True)
class ClientConfig:
    """Everything needed to build any light-client shape.

    ``measurement`` and ``ias_public_key`` are the trust anchors every
    client needs.  ``bus=None`` selects the in-process
    :class:`~repro.core.superlight.SuperlightClient`; with a bus the
    factory builds a :class:`~repro.core.superlight
    .RemoteSuperlightClient` whose query transport is the ``providers``
    list, a ``gateway``, or neither (a tip-only client).  ``hub`` names
    a :class:`~repro.net.pubsub.SubscriptionHub` endpoint for push
    sync; ``issuer`` is a local in-process issuer the local client can
    subscribe to directly.
    """

    measurement: Digest
    ias_public_key: PublicKey
    # -- transport (remote modes) --
    bus: object | None = None
    name: str = "client"
    issuers: tuple[str, ...] = ()
    providers: tuple[str, ...] = ()
    gateway: object | None = None
    hub: str | None = None
    policy: object | None = None
    integrity_retries: int = 2
    cache_capacity: int = 128
    # -- overload resilience (remote modes) --
    #: Serve a previously-verified answer flagged ``stale=True`` when
    #: the whole serving tier sheds or the deadline budget runs out,
    #: instead of raising.  Off by default: staleness is an explicit
    #: opt-in (see docs/overload.md for the contract).
    degrade_to_stale: bool = False
    #: A :class:`repro.net.resilience.CircuitBreakerPolicy` arming one
    #: breaker per issuer/provider endpoint (None = no client-side
    #: breakers).  Gateway-fronted clients configure breakers on the
    #: gateway instead.
    endpoint_breaker: object | None = None
    # -- local mode --
    issuer: object | None = None
    # -- post-construction steps --
    bootstrap: bool = False
    subscribe: bool = False
    # -- push stream knobs (remote subscribing clients) --
    heartbeat_ms: float = field(default=5_000.0)

    def validate(self) -> None:
        if self.bus is not None and not self.issuers:
            raise ConfigError("a remote client needs at least one issuer")
        if self.providers and self.gateway is not None:
            raise ConfigError(
                "pass providers or a gateway, not both"
            )
        if self.bus is None and (self.providers or self.gateway or self.hub):
            raise ConfigError(
                "providers/gateway/hub are remote-mode settings; pass a bus"
            )
        if self.issuer is not None and (
            self.bus is not None or self.gateway is not None
        ):
            raise ConfigError(
                "issuer= is the local-mode hook; a remote client names "
                "issuers= endpoints instead"
            )
        if self.subscribe and self.bus is not None and self.hub is None:
            raise ConfigError("subscribe=True needs a hub endpoint")
        if self.subscribe and self.bus is None and self.issuer is None:
            raise ConfigError("a local subscribing client needs issuer=")


def connect(config: ClientConfig) -> LightClient:
    """Build (and optionally bootstrap + subscribe) a light client.

    The canonical entry point: every client shape — local, remote
    single-provider, remote gateway-fronted, subscribing — comes out of
    this one factory, already wired per ``config``.
    """
    from repro.core.superlight import RemoteSuperlightClient, SuperlightClient

    config.validate()
    if config.bus is None:
        local = SuperlightClient(config.measurement, config.ias_public_key)
        if config.subscribe:
            local.subscribe(config.issuer)
        return local
    client = RemoteSuperlightClient(_config=config)
    if config.bootstrap:
        client.bootstrap()
    if config.subscribe:
        client.subscribe()
    return client
