"""Pipelined batch certification: staging overlaps enclave work.

The batched issuance path has two halves with disjoint resources:

* **staging** (:meth:`CertificateIssuer.stage_block`) is untrusted
  host-side work — validate the block, build the pruned update proof,
  ingest index updates;
* **certification** (:meth:`CertificateIssuer.certify_staged`) is one
  enclave ecall over the whole staged run.

Because staging block ``i+1`` needs only the untrusted node state
(which staging itself advances), it does not have to wait for the
enclave to finish certifying batch ``i`` — a two-core CI overlaps
them.  This simulation is single-threaded, so the pipeline *models*
the overlap instead of running it: it measures both halves and
accounts ``min(previous certify time, this batch's staging time)`` as
saved latency.  :meth:`PipelineStats.pipelined_latency_s` is therefore
the modeled two-core latency; the measured wall clock is the honest
single-threaded figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Block
from repro.core.issuer import CertificateIssuer, CertifiedBlock
from repro.fault.crashpoints import crashpoint
from repro.obs.wallclock import elapsed_s, now_s


@dataclass(slots=True)
class PipelineStats:
    """Measured + modeled timing of a :class:`CertificationPipeline`."""

    blocks: int = 0
    batches: int = 0
    stage_s: float = 0.0
    certify_s: float = 0.0
    #: Latency a two-core CI would hide by staging the next batch while
    #: the enclave certifies the previous one (modeled, see module doc).
    overlap_saved_s: float = 0.0

    def pipelined_latency_s(self) -> float:
        """Modeled end-to-end latency with staging/certify overlapped."""
        return self.stage_s + self.certify_s - self.overlap_saved_s


class CertificationPipeline:
    """Feed blocks one at a time; certification happens in batches.

    ``submit`` stages a block and — once ``batch_size`` blocks are
    queued (and ``auto_flush`` is on) — certifies the whole run in one
    ecall, returning the new :class:`CertifiedBlock` objects (empty
    list while the batch is still filling).  ``flush`` forces a partial
    batch out; always call it (or ``close``) after the last submit.
    """

    def __init__(
        self,
        issuer: CertificateIssuer,
        *,
        batch_size: int = 8,
        auto_flush: bool = True,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.issuer = issuer
        self.batch_size = batch_size
        self.auto_flush = auto_flush
        self.stats = PipelineStats()
        self._prev_certify_s = 0.0
        self._pending_stage_s = 0.0

    def submit(self, block: Block) -> list[CertifiedBlock]:
        start = now_s()
        self.issuer.stage_block(block)
        elapsed = elapsed_s(start)
        self.stats.blocks += 1
        self.stats.stage_s += elapsed
        self._pending_stage_s += elapsed
        if self.auto_flush and self.issuer.staged_count >= self.batch_size:
            return self.flush()
        return []

    def flush(self) -> list[CertifiedBlock]:
        """Certify whatever is staged (no-op on an empty queue)."""
        if self.issuer.staged_count == 0:
            return []
        crashpoint("pipeline.flush.pre")
        # This batch staged while the enclave was (modeled) busy with
        # the previous one; the shorter of the two is hidden latency.
        self.stats.overlap_saved_s += min(
            self._prev_certify_s, self._pending_stage_s
        )
        start = now_s()
        certified = self.issuer.certify_staged()
        elapsed = elapsed_s(start)
        self.stats.batches += 1
        self.stats.certify_s += elapsed
        self._prev_certify_s = elapsed
        self._pending_stage_s = 0.0
        return certified

    def close(self) -> list[CertifiedBlock]:
        """Flush the final partial batch."""
        return self.flush()
