"""The DCert certificate: ``<pk_enc, rep, dig, sig>`` (§3.3).

One object serves both roles — block certificate (``dig = H(hdr)``) and
index certificate (``dig = H(hdr || H_idx)``).  The serialization is a
stable byte encoding so that the superlight client's storage (the
paper's 2.97 KB constant) is measured honestly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.crypto import PublicKey, Signature
from repro.crypto.hashing import Digest
from repro.errors import CertificateError
from repro.sgx.attestation import AttestationReport

#: Signature domain for certificate digests (block and index alike).
CERT_SIG_DOMAIN = "dcert-cert"


@dataclass(frozen=True, slots=True)
class Certificate:
    """A certificate issued by a CI's enclave."""

    pk_enc: PublicKey
    report: AttestationReport
    dig: Digest
    sig: Signature

    def encode(self) -> bytes:
        """Stable wire encoding (used for storage accounting)."""
        return json.dumps(
            {
                "pk_enc": self.pk_enc.to_bytes().hex(),
                "rep": {
                    "measurement": self.report.measurement.hex(),
                    "report_data": self.report.report_data.hex(),
                    "ias_key": self.report.ias_key.to_bytes().hex(),
                    "sig": self.report.signature.to_bytes().hex(),
                },
                "dig": self.dig.hex(),
                "sig": self.sig.to_bytes().hex(),
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        try:
            raw = json.loads(data.decode("utf-8"))
            rep = raw["rep"]
            return cls(
                pk_enc=PublicKey.from_bytes(bytes.fromhex(raw["pk_enc"])),
                report=AttestationReport(
                    measurement=bytes.fromhex(rep["measurement"]),
                    report_data=bytes.fromhex(rep["report_data"]),
                    ias_key=PublicKey.from_bytes(bytes.fromhex(rep["ias_key"])),
                    signature=Signature.from_bytes(bytes.fromhex(rep["sig"])),
                ),
                dig=bytes.fromhex(raw["dig"]),
                sig=Signature.from_bytes(bytes.fromhex(raw["sig"])),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CertificateError(f"malformed certificate encoding: {exc}") from exc

    def size_bytes(self) -> int:
        return len(self.encode())
