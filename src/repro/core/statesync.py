"""Certified state sync: bootstrap a full node without replaying history.

A natural application of DCert's constant-cost validation: a new node
first acts as a superlight client (validate the latest header +
certificate — O(1)), then downloads the full state *snapshot* from any
untrusted peer and checks it against the certified ``H_state``.  If the
recomputed commitment matches, the node can serve as a full node / SP
from that height onward — no header-chain replay, no transaction
re-execution, and nothing to trust but the enclave certificate.

This mirrors how production chains bootstrap ("snap sync"), but with
the trust anchored in the DCert certificate instead of in checkpoints
hard-coded by client developers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Block, BlockHeader
from repro.chain.consensus import ProofOfWork
from repro.chain.node import FullNode
from repro.chain.state import StateStore
from repro.chain.vm import VM
from repro.core.certificate import Certificate
from repro.core.superlight import SuperlightClient
from repro.errors import StateError


@dataclass(frozen=True, slots=True)
class StateSnapshot:
    """A full state dump as served by an (untrusted) peer."""

    height: int
    cells: tuple[tuple[bytes, bytes], ...]
    depth: int

    def size_bytes(self) -> int:
        return sum(len(key) + len(value) for key, value in self.cells)


def export_snapshot(node: FullNode) -> StateSnapshot:
    """Peer side: dump the node's current state."""
    return StateSnapshot(
        height=node.height,
        cells=tuple(sorted(node.state._tree.items())),
        depth=node.state.depth,
    )


def bootstrap_full_node(
    client: SuperlightClient,
    tip_block: Block,
    tip_certificate: Certificate,
    snapshot: StateSnapshot,
    vm: VM,
    pow_engine: ProofOfWork,
) -> FullNode:
    """Build a full node at the certified tip from an untrusted snapshot.

    1. Validate the tip certificate as a superlight client (Alg. 3).
    2. Rebuild the state commitment from the snapshot cells and compare
       it to the certified header's ``H_state`` — any added, removed, or
       altered cell changes the SMT root and is caught here.
    3. Hand back a :class:`FullNode` anchored at the certified block.

    Raises :class:`StateError` if the snapshot does not commit to the
    certified state root.
    """
    client.validate_chain(tip_block.header, tip_certificate)
    state = StateStore(depth=snapshot.depth)
    state.apply_writes({key: value for key, value in snapshot.cells})
    if state.root != tip_block.header.state_root:
        raise StateError(
            "snapshot does not match the certified state root "
            "(tampered or stale snapshot)"
        )
    if snapshot.height != tip_block.header.height:
        raise StateError("snapshot height does not match the certified tip")
    node = FullNode.__new__(FullNode)
    node.blocks = [tip_block]
    node.state = state
    from repro.chain.executor import TransactionExecutor

    node.executor = TransactionExecutor(vm)
    node.pow = pow_engine
    return node


def continue_chain(node: FullNode, header: BlockHeader) -> bool:
    """Convenience: can ``node`` (bootstrapped mid-chain) extend to
    ``header``?  True iff the header links to the node's tip."""
    return (
        header.prev_hash == node.tip.header.header_hash()
        and header.height == node.height + 1
    )
