"""Checkpointed issuer recovery: sealed snapshots + O(gap) tail replay.

Without checkpoints, restoring a CI replays the *entire* chain through
the enclave — recovery cost grows linearly with history, which defeats
the point of a long-lived service.  This module adds:

* :class:`IssuerCheckpoint` — a snapshot of the issuer's replayable
  state (state SMT cells + root, index roots and latest index/augmented
  certificates, the latest block certificate, ``pk_enc``), sealed by
  the enclave (``seal_checkpoint``) so on-disk tampering fails the MAC
  instead of being replayed.  The batched path's staging journal lives
  in the WAL itself (``staged`` records), so a checkpoint is only taken
  at a batch boundary (staging queue empty) and need not include it.
* :class:`DurableIssuer` — wraps a :class:`CertificateIssuer` so every
  certification lands in the :class:`~repro.storage.ChainArchive` WAL
  before the call returns, and a checkpoint is re-sealed every
  ``checkpoint_interval`` certified blocks.
* :func:`recover_issuer` — the restore path: unseal the newest
  checkpoint, verify it against the WAL prefix (state root, index
  roots, per-block certificates re-checked in untrusted code), then
  replay only the WAL records *past* the checkpoint through the
  enclave.  Per-restart enclave work is O(gap), independent of chain
  length.

Recovery invariants (enforced here, swept by :mod:`repro.fault.chaos`):
the recovered tip is byte-identical to the no-crash run (RFC-6979
deterministic signatures make re-issuing idempotent), ``pk_enc`` is
unchanged (sealed key), and an archived certificate that differs from
its replayed twin means the archive was tampered with — recovery fails
rather than serving it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro import obs
from repro.chain.block import Block
from repro.chain.consensus import ProofOfWork
from repro.chain.state import StateStore
from repro.chain.vm import VM
from repro.core.certificate import CERT_SIG_DOMAIN, Certificate
from repro.core.digest import block_digest
from repro.core.issuer import CertificateIssuer, CertifiedBlock
from repro.crypto import verify
from repro.errors import ArchiveCorruptionError, CertificateError
from repro.fault.crashpoints import crashpoint
from repro.query.indexes import AuthenticatedIndexSpec
from repro.sgx.attestation import AttestationService, WELL_KNOWN_IAS
from repro.sgx.costs import SGXCostModel
from repro.sgx.platform import SGXPlatform
from repro.storage import ArchiveEntry, ChainArchive


def _encode_cert(cert: Certificate | None) -> str | None:
    return cert.encode().decode("utf-8") if cert is not None else None


def _decode_cert(raw: str | None) -> Certificate | None:
    return Certificate.decode(raw.encode("utf-8")) if raw is not None else None


@dataclass(slots=True)
class IssuerCheckpoint:
    """The issuer state a restart needs, as of a certified height."""

    height: int
    tip_hash: str
    state_cells: dict[str, str]
    state_root: str
    index_roots: dict[str, str]
    index_certs: dict[str, str | None]
    aug_certs: dict[str, str | None]
    latest_certificate: str | None
    pk_enc: str

    @classmethod
    def capture(cls, issuer: CertificateIssuer) -> "IssuerCheckpoint":
        if issuer.staged_count:
            raise CertificateError(
                "cannot checkpoint with staged blocks pending certification"
            )
        return cls(
            height=issuer.node.height,
            tip_hash=issuer.node.tip.header.header_hash().hex(),
            state_cells={
                key.hex(): value.hex() for key, value in issuer.node.state.items()
            },
            state_root=issuer.node.state.root.hex(),
            index_roots={
                name: root.hex() for name, root in issuer._index_roots.items()
            },
            index_certs={
                name: _encode_cert(cert)
                for name, cert in issuer._index_certs.items()
            },
            aug_certs={
                name: _encode_cert(cert)
                for name, cert in issuer._aug_certs.items()
            },
            latest_certificate=_encode_cert(issuer.latest_certificate),
            pk_enc=issuer.pk_enc.to_bytes().hex(),
        )

    def to_bytes(self) -> bytes:
        return json.dumps(
            {
                "height": self.height,
                "tip_hash": self.tip_hash,
                "state_cells": self.state_cells,
                "state_root": self.state_root,
                "index_roots": self.index_roots,
                "index_certs": self.index_certs,
                "aug_certs": self.aug_certs,
                "latest_certificate": self.latest_certificate,
                "pk_enc": self.pk_enc,
            },
            sort_keys=True,
        ).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IssuerCheckpoint":
        try:
            raw = json.loads(data)
            return cls(
                height=int(raw["height"]),
                tip_hash=raw["tip_hash"],
                state_cells=dict(raw["state_cells"]),
                state_root=raw["state_root"],
                index_roots=dict(raw["index_roots"]),
                index_certs=dict(raw["index_certs"]),
                aug_certs=dict(raw["aug_certs"]),
                latest_certificate=raw["latest_certificate"],
                pk_enc=raw["pk_enc"],
            )
        except (json.JSONDecodeError, UnicodeDecodeError, KeyError, TypeError,
                ValueError) as exc:
            raise ArchiveCorruptionError(
                f"checkpoint payload malformed: {exc}"
            ) from exc


@dataclass(slots=True)
class RecoveryReport:
    """What one :func:`recover_issuer` run did — asserted on by tests
    and surfaced through :mod:`repro.obs`."""

    checkpoint_height: int = 0
    checkpoint_used: bool = False
    replayed_blocks: int = 0
    verified_blocks: int = 0
    staged_resumed: int = 0
    staged_discarded: int = 0
    torn_bytes_dropped: int = 0


class DurableIssuer:
    """A :class:`CertificateIssuer` whose certifications are durable.

    Every certified block is appended to the archive WAL before the
    call returns; every ``checkpoint_interval`` certified blocks (at a
    batch boundary) the issuer state is sealed into the checkpoint
    sidecar.  Non-durable attributes and methods delegate to the
    wrapped issuer, so this drops into :class:`IssuerService`,
    :class:`~repro.core.pipeline.CertificationPipeline`, and the query
    provider unchanged.

    Durability covers the hierarchical scheme (the library default);
    augmented-only certification is not journaled.
    """

    def __init__(
        self,
        issuer: CertificateIssuer,
        archive: ChainArchive,
        *,
        checkpoint_interval: int = 0,
    ) -> None:
        self.issuer = issuer
        self.archive = archive
        self.checkpoint_interval = checkpoint_interval
        self._last_checkpoint_height = 0
        self.last_recovery: RecoveryReport | None = None

    @classmethod
    def create(
        cls,
        archive: ChainArchive,
        genesis: Block,
        genesis_state: StateStore,
        vm: VM,
        pow_engine: ProofOfWork,
        *,
        index_specs: list[AuthenticatedIndexSpec] | None = None,
        platform: SGXPlatform | None = None,
        ias: AttestationService | None = None,
        cost_model: SGXCostModel | None = None,
        key_seed: bytes | None = None,
        proof_cache_entries: int = 0,
        checkpoint_interval: int = 0,
    ) -> "DurableIssuer":
        """Provision a fresh issuer and initialize its archive: the
        sealed signing key is the archive's head record, so the key
        survives from the very first block."""
        issuer = CertificateIssuer(
            genesis,
            genesis_state,
            vm,
            pow_engine,
            index_specs=index_specs,
            platform=platform,
            ias=ias if ias is not None else WELL_KNOWN_IAS,
            cost_model=cost_model,
            key_seed=key_seed,
            proof_cache_entries=proof_cache_entries,
        )
        archive.initialize(issuer.seal_signing_key())
        return cls(issuer, archive, checkpoint_interval=checkpoint_interval)

    # -- durable certification ----------------------------------------------

    def process_block(self, block: Block, **kwargs) -> CertifiedBlock:
        """Sequentially certify + commit ``block``, then journal it."""
        certified = self.issuer.process_block(block, **kwargs)
        self._journal(certified)
        self._maybe_checkpoint()
        return certified

    def stage_block(self, block: Block) -> None:
        """Stage ``block`` and journal the staging record, so a crash
        between staging and batch certification can finish the batch."""
        self.issuer.stage_block(block)
        staged = self.issuer._staged[-1]
        self.archive.append_staged(staged.block, staged.write_set)

    def certify_staged(self) -> list[CertifiedBlock]:
        """Certify the staged batch, then journal every block in it."""
        results = self.issuer.certify_staged()
        for certified in results:
            self._journal(certified)
        self._maybe_checkpoint()
        return results

    def issue_batch(self, blocks: list[Block]) -> list[CertifiedBlock]:
        """Durable form of :meth:`CertificateIssuer.issue_batch`."""
        try:
            for block in blocks:
                self.stage_block(block)
        except Exception:
            self.certify_staged()
            raise
        return self.certify_staged()

    def _journal(self, certified: CertifiedBlock) -> None:
        # The enclave has signed (in-memory state advanced) but the
        # record is not yet durable — the classic crash window.  On
        # recovery the staged/previous records re-certify the block to
        # byte-identical certificates, so nothing is ever lost or forked.
        crashpoint("durable.append.pre_wal")
        self.archive.append_record(
            certified.block,
            certified.certificate,
            index_certificates=certified.index_certificates,
            index_roots=certified.index_roots,
            write_set=certified.write_set,
        )

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> None:
        """Seal the current issuer state into the checkpoint sidecar."""
        crashpoint("durable.checkpoint.pre_seal")
        snapshot = IssuerCheckpoint.capture(self.issuer)
        payload = snapshot.to_bytes()
        sealed = self.issuer.enclave.ecall(
            "seal_checkpoint", payload, payload_bytes=len(payload)
        )
        self.archive.write_checkpoint(snapshot.height, sealed)
        self._last_checkpoint_height = snapshot.height
        if obs.enabled():
            obs.inc("recovery.checkpoints_taken")
            obs.set_gauge("recovery.checkpoint_height", snapshot.height)

    def _maybe_checkpoint(self) -> None:
        if self.checkpoint_interval <= 0 or self.issuer.staged_count:
            return
        if (
            self.issuer.node.height - self._last_checkpoint_height
            >= self.checkpoint_interval
        ):
            self.checkpoint()

    # -- delegation ----------------------------------------------------------

    def __getattr__(self, name: str):
        # Anything not defined here (pk_enc, report, certified, node,
        # enclave, measurement, index_root...) is the wrapped issuer's.
        return getattr(self.issuer, name)


def _verify_archived_entry(
    issuer: CertificateIssuer, entry: ArchiveEntry
) -> None:
    """Cheap untrusted re-verification of one archived certified block.

    Used on the checkpoint fast path, where the block is *not* replayed
    through the enclave: check chain linkage, the transaction root, and
    that each archived certificate really is this enclave's signature
    over this block's digest.  (State correctness is covered by the
    checkpoint's verified SMT root.)
    """
    block = entry.block
    prev = issuer.node.tip
    if block.header.height != prev.header.height + 1:
        raise ArchiveCorruptionError(
            f"archived block {block.header.height} does not extend "
            f"height {prev.header.height}"
        )
    if block.header.prev_hash != prev.header.header_hash():
        raise ArchiveCorruptionError(
            f"archived block {block.header.height} does not chain to its parent"
        )
    if not block.check_tx_root():
        raise ArchiveCorruptionError(
            f"archived block {block.header.height} fails its tx-root check"
        )
    for label, cert, dig in (
        ("block", entry.certificate, block_digest(block.header)),
        *(
            (f"index {name!r}", cert, None)
            for name, cert in entry.index_certificates.items()
        ),
    ):
        if cert is None:
            continue
        if cert.pk_enc.to_bytes() != issuer.pk_enc.to_bytes():
            raise ArchiveCorruptionError(
                f"archived {label} certificate at height "
                f"{block.header.height} was issued under a different pk_enc"
            )
        if dig is not None and cert.dig != dig:
            raise ArchiveCorruptionError(
                f"archived {label} certificate at height "
                f"{block.header.height} covers a different digest"
            )
        if not verify(cert.pk_enc, cert.dig, cert.sig, CERT_SIG_DOMAIN):
            raise ArchiveCorruptionError(
                f"archived {label} certificate at height "
                f"{block.header.height} has an invalid signature"
            )


def recover_issuer(
    archive: ChainArchive,
    genesis: Block,
    genesis_state: StateStore,
    vm: VM,
    pow_engine: ProofOfWork,
    *,
    index_specs: list[AuthenticatedIndexSpec] | None = None,
    platform: SGXPlatform | None = None,
    ias: AttestationService | None = None,
    cost_model: SGXCostModel | None = None,
    proof_cache_entries: int = 0,
    checkpoint_interval: int = 0,
) -> DurableIssuer:
    """Restore a :class:`DurableIssuer` from its archive.

    The enclave unseals the archived signing key — same program on the
    same platform required — so ``pk_enc`` is stable across the restart
    and clients keep their verified attestation.  With a checkpoint
    present, enclave work is O(gap): only WAL records past the
    checkpoint height are re-certified; the prefix is verified in
    untrusted code against the checkpoint's sealed roots.  Every
    replayed certificate must match the archived bytes exactly, and
    pending ``staged`` records (a batch the crash interrupted) are
    re-staged so the next ``certify_staged`` finishes the batch.
    """
    contents = archive.load()
    issuer = CertificateIssuer(
        genesis,
        genesis_state,
        vm,
        pow_engine,
        index_specs=index_specs,
        platform=platform,
        ias=ias if ias is not None else WELL_KNOWN_IAS,
        cost_model=cost_model,
        sealed_key=contents.sealed_key,
        proof_cache_entries=proof_cache_entries,
    )
    report = RecoveryReport(torn_bytes_dropped=contents.torn_bytes_dropped)

    checkpoint = archive.read_checkpoint()
    start = 0
    if checkpoint is not None:
        height, sealed = checkpoint
        if height > len(contents.entries):
            # The block record is fsynced before the checkpoint renames,
            # so a checkpoint ahead of the WAL cannot happen by crashing.
            raise ArchiveCorruptionError(
                f"checkpoint at height {height} is ahead of the WAL "
                f"({len(contents.entries)} blocks)"
            )
        payload = issuer.enclave.ecall(
            "unseal_checkpoint", sealed, payload_bytes=len(sealed)
        )
        snapshot = IssuerCheckpoint.from_bytes(payload)
        _apply_checkpoint(issuer, snapshot, contents.entries, height)
        report.checkpoint_height = height
        report.checkpoint_used = True
        report.verified_blocks = height
        start = height

    # O(gap) tail replay through the enclave, byte-compared to the WAL.
    for entry in contents.entries[start:]:
        certified = issuer.process_block(entry.block)
        _compare_replayed(certified, entry)
        report.replayed_blocks += 1

    # Resume the staged batch the crash interrupted (records already
    # durable — stage through the inner issuer, no re-journaling).
    pending = contents.pending_staged()
    for staged in pending:
        issuer.stage_block(staged.block)
    report.staged_resumed = len(pending)
    staged_heights = {
        staged.block.header.height
        for staged in contents.staged
        if staged.block.header.height > len(contents.entries)
    }
    report.staged_discarded = len(staged_heights) - len(pending)

    if obs.enabled():
        obs.inc("recovery.restarts")
        obs.inc("recovery.replayed_blocks", report.replayed_blocks)
        obs.set_gauge(
            "recovery.checkpoint_age_blocks",
            len(contents.entries) - report.checkpoint_height,
        )
        obs.set_gauge("recovery.last_staged_resumed", report.staged_resumed)
        obs.set_gauge("recovery.last_staged_discarded", report.staged_discarded)

    durable = DurableIssuer(
        issuer, archive, checkpoint_interval=checkpoint_interval
    )
    durable._last_checkpoint_height = report.checkpoint_height
    durable.last_recovery = report
    return durable


def _apply_checkpoint(
    issuer: CertificateIssuer,
    snapshot: IssuerCheckpoint,
    entries: list[ArchiveEntry],
    height: int,
) -> None:
    """Fast-forward a fresh issuer to the checkpoint, verifying as we go."""
    if snapshot.height != height:
        raise ArchiveCorruptionError(
            f"checkpoint sidecar says height {height} but sealed snapshot "
            f"says {snapshot.height}"
        )
    if snapshot.pk_enc != issuer.pk_enc.to_bytes().hex():
        raise ArchiveCorruptionError(
            "checkpoint was sealed under a different pk_enc than the "
            "archived signing key"
        )
    try:
        cells = {
            bytes.fromhex(key): bytes.fromhex(value)
            for key, value in snapshot.state_cells.items()
        }
        state_root = bytes.fromhex(snapshot.state_root)
        index_roots = {
            name: bytes.fromhex(root)
            for name, root in snapshot.index_roots.items()
        }
    except ValueError as exc:
        raise ArchiveCorruptionError(
            f"checkpoint payload malformed: {exc}"
        ) from exc
    issuer.node.state.apply_writes(cells)
    if issuer.node.state.root != state_root:
        raise ArchiveCorruptionError(
            "checkpoint state cells do not hash to the checkpoint state root"
        )

    # Rebuild the untrusted chain + indexes from the WAL prefix, with
    # cheap (non-enclave) verification per block.
    if set(index_roots) != set(issuer.indexes):
        raise ArchiveCorruptionError(
            "checkpoint index set does not match this issuer's index specs"
        )
    for entry in entries[:height]:
        _verify_archived_entry(issuer, entry)
        for index in issuer.indexes.values():
            index.ingest_block(entry.block, entry.write_set)
        issuer.node.blocks.append(entry.block)
        issuer.certified.append(
            CertifiedBlock(
                block=entry.block,
                certificate=entry.certificate,
                index_certificates=dict(entry.index_certificates),
                index_roots=dict(entry.index_roots),
                write_set=dict(entry.write_set),
            )
        )
    if snapshot.tip_hash != issuer.node.tip.header.header_hash().hex():
        raise ArchiveCorruptionError(
            "checkpoint tip hash does not match the WAL prefix"
        )
    for name, index in issuer.indexes.items():
        if index.root != index_roots[name]:
            raise ArchiveCorruptionError(
                f"rebuilt index {name!r} root does not match the checkpoint"
            )
    issuer._index_roots = dict(index_roots)
    issuer._index_certs = {
        name: _decode_cert(raw) for name, raw in snapshot.index_certs.items()
    }
    issuer._aug_certs = {
        name: _decode_cert(raw) for name, raw in snapshot.aug_certs.items()
    }
    issuer.latest_certificate = _decode_cert(snapshot.latest_certificate)


def _compare_replayed(certified: CertifiedBlock, entry: ArchiveEntry) -> None:
    """A replayed certificate must be byte-identical to the archived one."""
    height = entry.block.header.height
    archived = entry.certificate
    replayed = certified.certificate
    if (archived is None) != (replayed is None) or (
        archived is not None
        and replayed is not None
        and archived.encode() != replayed.encode()
    ):
        raise ArchiveCorruptionError(
            f"archived certificate at height {height} does not match "
            f"its replay — the archive was tampered with"
        )
    # The compat append() form persists no index data, so only compare
    # the index certificates the archive actually recorded.
    for name, cert in entry.index_certificates.items():
        if name not in certified.index_certificates:
            raise ArchiveCorruptionError(
                f"archived index certificate {name!r} at height {height} "
                f"names an index this issuer does not maintain"
            )
        if cert.encode() != certified.index_certificates[name].encode():
            raise ArchiveCorruptionError(
                f"archived index certificate {name!r} at height {height} "
                f"does not match its replay — the archive was tampered with"
            )
