"""Update proofs: the enclave's window onto the global state (§4.1).

``UpdateProof`` carries, for every state cell in the block's read and
write sets, the cell's pre-state value and its SMT proof against the
previous block's ``H_state``.  Inside the enclave these reconstruct a
:class:`~repro.merkle.partial.PartialSMT`, which simultaneously plays
the roles the paper assigns to ``pi_r`` (read-set verification) and
``pi_w`` (write commitment + new-root computation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.state import StateStore
from repro.crypto.hashing import Digest
from repro.errors import ProofError
from repro.merkle.partial import PartialSMT
from repro.merkle.smt import SMTProof


@dataclass(frozen=True, slots=True)
class UpdateProof:
    """Pre-state values + SMT proofs for every touched state cell."""

    entries: tuple[tuple[bytes, bytes | None, SMTProof], ...]

    @classmethod
    def build(cls, state: StateStore, touched_keys: list[bytes]) -> "UpdateProof":
        """CI side: prove every touched key against the *pre*-state."""
        return cls(entries=tuple(state.prove_many(touched_keys)))

    def open(self, state_root: Digest) -> PartialSMT:
        """Enclave side: verify all proofs and build the partial tree."""
        if not self.entries:
            raise ProofError("update proof covers no keys")
        return PartialSMT.from_proofs(state_root, list(self.entries))

    def read_values(self) -> dict[bytes, bytes | None]:
        """The proven pre-state values ``{r}_i`` keyed by state cell."""
        return {key: value for key, value, _ in self.entries}

    def size_bytes(self) -> int:
        """Marshalled size (drives the enclave's EPC accounting)."""
        total = 0
        for key, value, proof in self.entries:
            total += len(key) + (len(value) if value is not None else 0)
            total += proof.size_bytes()
        return total
