"""The superlight client (Alg. 3) — DCert's headline artifact.

Keeps exactly one block header and one certificate, whatever the chain
length: validating a new tip is a constant amount of work (one report
check — cached per enclave —, one signature verification, one digest
comparison, and the chain-selection rule), and storage is the size of
one header plus one certificate (the paper's 2.97 KB).

The same client verifies query results: it tracks the latest certified
root of each authenticated index (via index certificates) and checks
the SP's proofs against those roots.
"""

from __future__ import annotations

from collections import OrderedDict

from repro import obs
from repro.chain.block import BlockHeader
from repro.core.certificate import CERT_SIG_DOMAIN, Certificate
from repro.core.digest import block_digest, index_digest
from repro.crypto import PublicKey, verify
from repro.crypto.hashing import Digest
from repro.errors import CertificateError


class SuperlightClient:
    """Constant-cost blockchain (and index) integrity validation."""

    #: Cap on cached verified attestation reports.  One entry per
    #: distinct enclave identity suffices in steady state (§4.3: "check
    #: an attestation report only once for the same enclave"), so the
    #: cap only matters under an adversarial stream of fresh-looking
    #: reports — exactly when an unbounded set would be a memory hole.
    VERIFIED_REPORTS_LIMIT = 64

    def __init__(
        self,
        expected_measurement: Digest,
        ias_public_key: PublicKey,
    ) -> None:
        self.expected_measurement = expected_measurement
        self.ias_public_key = ias_public_key
        self.latest_header: BlockHeader | None = None
        self.latest_certificate: Certificate | None = None
        # "A superlight client needs to check an attestation report only
        # once for the same enclave" (§4.3): cache verified reports.  The
        # cache key must bind every field the skipped checks would have
        # validated (measurement, report_data, IAS key, signature) — a
        # signature-only key would let a report with a tampered
        # measurement but a replayed signature ride the cache.
        # LRU-bounded: see VERIFIED_REPORTS_LIMIT.
        self._verified_reports: OrderedDict[tuple[bytes, ...], None] = (
            OrderedDict()
        )
        # Latest certified root per authenticated index, plus the
        # certificate vouching for it — the client must *hold* the
        # index certificates (they are part of its durable state and
        # its storage bill).
        # repro: allow[BND01] one entry per configured index; billed in storage_bytes()
        self._index_roots: dict[str, tuple[int, Digest]] = {}
        # repro: allow[BND01] one entry per configured index; billed in storage_bytes()
        self._index_certs: dict[str, Certificate] = {}
        # Streaming surface: tip-adoption callbacks and the issuer
        # hooks a direct subscription installed (see subscribe()).
        # repro: allow[BND01] one entry per application on_tip registration
        self._tip_callbacks: list = []
        self._subscriptions: list[tuple[object, object]] = []

    # -- Alg. 3 ---------------------------------------------------------------

    def validate_chain(self, header: BlockHeader, cert: Certificate) -> bool:
        """Validate a candidate tip; adopt it if it wins chain selection.

        Returns True when the candidate was adopted, False when it lost
        chain selection; raises :class:`CertificateError` when the
        certificate itself is invalid.
        """
        with obs.trace_span("client.validate_chain"):
            self._check_certificate(cert, block_digest(header))
            if not self._follows_chain_selection(header):
                obs.inc("client.chain_validations_rejected")
                return False
            self.latest_header = header
            self.latest_certificate = cert
        if obs.enabled():
            obs.inc("client.chain_validations")
            obs.set_gauge("client.storage_bytes", self.storage_bytes())
        for callback in list(self._tip_callbacks):
            callback(header, cert)
        return True

    # -- the streaming surface (LightClient protocol) -------------------------

    def on_tip(self, callback):
        """Register ``callback(header, certificate)`` to fire on every
        adopted tip.  Returns the callback (decorator-friendly)."""
        self._tip_callbacks.append(callback)
        return callback

    def subscribe(self, source=None) -> None:
        """Attach directly to a local issuer: every block it certifies
        from now on is validated and (if it wins chain selection)
        adopted, exactly as the remote push path does over the wire.

        ``source`` is a :class:`~repro.core.issuer.CertificateIssuer`
        (or anything else exposing an ``on_certified`` hook list).
        """
        if source is None:
            raise CertificateError(
                "a local client subscribes directly to an issuer; pass it "
                "as source="
            )
        hooks = getattr(source, "on_certified", None)
        if hooks is None:
            raise CertificateError(
                f"{type(source).__name__} has no on_certified hook"
            )
        hook = self._ingest_certified
        hooks.append(hook)
        self._subscriptions.append((source, hook))

    def unsubscribe(self) -> None:
        """Detach from every subscribed issuer (idempotent)."""
        for source, hook in self._subscriptions:
            hooks = getattr(source, "on_certified", [])
            if hook in hooks:
                hooks.remove(hook)
        self._subscriptions.clear()

    def _ingest_certified(self, certified) -> bool:
        """Adopt one issuer-certified block (tip + index certificates)."""
        if certified.certificate is None:
            return False  # augmented-only block: no hierarchical tip cert
        header = getattr(certified, "header", None)
        if header is None:
            header = certified.block.header
        adopted = self.validate_chain(header, certified.certificate)
        for name, cert in certified.index_certificates.items():
            self.validate_index_certificate(
                name, header, certified.index_roots[name], cert
            )
        return adopted

    def validate_index_certificate(
        self, name: str, header: BlockHeader, index_root: Digest, cert: Certificate
    ) -> bool:
        """Adopt a certified index root if its block is the newest seen."""
        self._check_certificate(cert, index_digest(header, index_root))
        current = self._index_roots.get(name)
        if current is not None and current[0] >= header.height:
            return False
        self._index_roots[name] = (header.height, index_root)
        self._index_certs[name] = cert
        if obs.enabled():
            obs.inc("client.index_certs_adopted")
            obs.set_gauge("client.storage_bytes", self.storage_bytes())
        return True

    # -- query verification ------------------------------------------------------

    def certified_index_root(self, name: str) -> Digest:
        if name not in self._index_roots:
            raise CertificateError(f"no certified root for index {name!r}")
        return self._index_roots[name][1]

    def verify_answer(self, request, answer) -> bool:
        """Unified check of a typed :class:`repro.query.api.QueryAnswer`
        against the certified roots — the one verification entry point
        mirroring ``QueryServiceProvider.execute``."""
        from repro.query.verifier import verify as verify_query

        with obs.trace_span("client.verify_answer"):
            ok = verify_query(request, answer, self.certified_index_root)
        obs.inc("client.verify_ok" if ok else "client.verify_failed")
        return ok

    # The per-type ``verify_history``/``verify_keyword``/``verify_aggregate``
    # /``verify_value_range`` wrappers that predated the typed query API
    # were removed in PR 5; ``verify_answer`` is the only verification
    # entry point.  Accessing the old names raises ``AttributeError``.

    # -- persistence ---------------------------------------------------------------

    def to_json(self) -> str:
        """Serialize the client's durable state (a "wallet file").

        Exactly what Fig. 7a counts: the latest header + certificate,
        plus the certified index roots and the index certificates
        vouching for them — all constant-size per index.
        """
        import json

        return json.dumps(
            {
                "measurement": self.expected_measurement.hex(),
                "ias_key": self.ias_public_key.to_bytes().hex(),
                "header": (
                    self.latest_header.encode().decode("utf-8")
                    if self.latest_header is not None
                    else None
                ),
                "certificate": (
                    self.latest_certificate.encode().decode("utf-8")
                    if self.latest_certificate is not None
                    else None
                ),
                "index_roots": {
                    name: [height, root.hex()]
                    for name, (height, root) in self._index_roots.items()
                },
                "index_certificates": {
                    name: cert.encode().decode("utf-8")
                    for name, cert in self._index_certs.items()
                },
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, data: str) -> "SuperlightClient":
        """Restore a client; stored certificates are *re-verified*, so a
        tampered wallet file cannot smuggle in a bad tip or index cert."""
        import json

        from repro.crypto import PublicKey

        raw = json.loads(data)
        client = cls(
            bytes.fromhex(raw["measurement"]),
            PublicKey.from_bytes(bytes.fromhex(raw["ias_key"])),
        )
        if raw["header"] is not None and raw["certificate"] is not None:
            header = BlockHeader.decode(raw["header"].encode("utf-8"))
            certificate = Certificate.decode(raw["certificate"].encode("utf-8"))
            client.validate_chain(header, certificate)
        index_certs = raw.get("index_certificates", {})
        for name, (height, root_hex) in raw.get("index_roots", {}).items():
            height, root = int(height), bytes.fromhex(root_hex)
            encoded_cert = index_certs.get(name)
            if encoded_cert is not None:
                cert = Certificate.decode(encoded_cert.encode("utf-8"))
                if (
                    client.latest_header is not None
                    and client.latest_header.height == height
                ):
                    # The common case — index cert bound to the stored
                    # tip: re-verify the full (header, root) binding.
                    client._check_certificate(
                        cert, index_digest(client.latest_header, root)
                    )
                else:
                    # Adopted at an earlier height whose header is no
                    # longer stored: re-verify report + signature (the
                    # cert is genuinely enclave-issued for *its* digest).
                    client._check_certificate(cert, cert.dig)
                client._index_certs[name] = cert
            client._index_roots[name] = (height, root)
        return client

    # -- bookkeeping ---------------------------------------------------------------

    def storage_bytes(self) -> int:
        """Bytes the client persists: one header + one certificate, plus
        each held index certificate and its (height, root) bookkeeping."""
        total = 0
        if self.latest_header is not None:
            total += self.latest_header.size_bytes()
        if self.latest_certificate is not None:
            total += self.latest_certificate.size_bytes()
        for cert in self._index_certs.values():
            total += cert.size_bytes()
        for _height, root in self._index_roots.values():
            total += len(root) + 8  # the certified root + its height
        return total

    # -- internals -------------------------------------------------------------------

    def _check_certificate(self, cert: Certificate, expected_dig: Digest) -> None:
        report_id = (
            cert.report.measurement,
            cert.report.report_data,
            cert.report.ias_key.to_bytes(),
            cert.report.signature.to_bytes(),
        )
        if report_id in self._verified_reports:
            self._verified_reports.move_to_end(report_id)
        else:
            if not cert.report.verify(self.ias_public_key):
                raise CertificateError("attestation report not signed by the IAS")
            if cert.report.measurement != self.expected_measurement:
                raise CertificateError("certificate from an unexpected enclave program")
            self._verified_reports[report_id] = None
            while len(self._verified_reports) > self.VERIFIED_REPORTS_LIMIT:
                self._verified_reports.popitem(last=False)
        if cert.pk_enc.to_bytes() != cert.report.report_data:
            raise CertificateError("pk_enc does not match the attestation report")
        if not verify(cert.pk_enc, cert.dig, cert.sig, CERT_SIG_DOMAIN):
            raise CertificateError("certificate signature invalid")
        if cert.dig != expected_dig:
            raise CertificateError("certificate digest does not match")

    def _follows_chain_selection(self, header: BlockHeader) -> bool:
        """Longest-chain rule with a deterministic hash tie-break."""
        if self.latest_header is None:
            return True
        if header.height != self.latest_header.height:
            return header.height > self.latest_header.height
        return header.header_hash() < self.latest_header.header_hash()


class RemoteSuperlightClient:
    """A superlight client that lives entirely on the network (Fig. 2).

    Wraps a :class:`SuperlightClient` behind an RPC client: it
    bootstraps and syncs certified tips from one or more
    :class:`repro.core.issuer.IssuerService` endpoints and runs typed
    queries against one or more :class:`repro.query.provider.QueryService`
    endpoints, degrading gracefully:

    * per-call timeouts with bounded exponential-backoff retries come
      from the RPC layer (:class:`repro.net.rpc.RetryPolicy`);
    * every response is re-verified against the certified roots — a
      corrupted or forged response is *detected and retried*, never
      silently accepted;
    * on repeated timeouts or integrity failures the client fails over
      to the next endpoint, and raises
      :class:`~repro.errors.ServiceUnavailableError` only once every
      endpoint is exhausted (bounded work, no hanging).

    Queries can be served two ways: a plain ``providers`` list (tried
    in order, as in PR 3) or a :class:`repro.net.gateway.QueryGateway`
    fronting a replica fleet — pass exactly one of them.  With a
    gateway the client wires its root re-verification in as the
    gateway's ``verify_switch`` hook, gets the pipelined
    :meth:`query_many` path, and keeps a :class:`repro.query
    .answercache.VerifiedAnswerCache` of answers that already verified
    at the current certified roots (a warm hit costs zero round trips).
    """

    def __init__(
        self,
        bus=None,
        name: str | None = None,
        expected_measurement: Digest | None = None,
        ias_public_key: PublicKey | None = None,
        *,
        issuers: list[str] | None = None,
        providers: list[str] | None = None,
        gateway=None,
        policy=None,
        integrity_retries: int = 2,
        cache_capacity: int = 128,
        _config=None,
    ) -> None:
        from repro.core.client_api import ClientConfig
        from repro.net.rpc import RetryPolicy, RpcClient
        from repro.query.answercache import VerifiedAnswerCache

        if _config is None:
            # Legacy direct construction: one release of grace behind
            # connect(); it keeps the old "exactly one transport" rule.
            import warnings

            warnings.warn(
                "constructing RemoteSuperlightClient directly is "
                "deprecated; use repro.core.client_api.connect("
                "ClientConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            if (gateway is None) == (not providers):
                raise CertificateError(
                    "a remote client needs either a provider list or a "
                    "query gateway (exactly one)"
                )
            _config = ClientConfig(
                measurement=expected_measurement,
                ias_public_key=ias_public_key,
                bus=bus,
                name=name,
                issuers=tuple(issuers or ()),
                providers=tuple(providers or ()),
                gateway=gateway,
                policy=policy,
                integrity_retries=integrity_retries,
                cache_capacity=cache_capacity,
            )
        config = _config
        config.validate()
        self.config = config
        self.client = SuperlightClient(config.measurement, config.ias_public_key)
        self.rpc = RpcClient(config.bus, config.name, config.policy or RetryPolicy())
        self.issuers = list(config.issuers)
        self.providers = list(config.providers)
        self.gateway = config.gateway
        # -- overload resilience: stale degradation + endpoint breakers --
        self.degrade_to_stale = getattr(config, "degrade_to_stale", False)
        self.stale_served = 0
        breaker_policy = getattr(config, "endpoint_breaker", None)
        if breaker_policy is not None:
            from repro.net.resilience import CircuitBreaker

            self._breakers = {
                endpoint: CircuitBreaker(
                    breaker_policy, seed=f"{config.name}:{endpoint}"
                )
                for endpoint in (*self.issuers, *self.providers)
            }
        else:
            # repro: allow[BND01] keyed by the fixed endpoint set above; never grows after __init__
            self._breakers = {}
        if self.gateway is not None and self.gateway.verify_switch is None:
            self.gateway.verify_switch = self._verify_replica_roots
        self.cache = (
            VerifiedAnswerCache(config.cache_capacity)
            if config.cache_capacity
            else None
        )
        self.integrity_retries = config.integrity_retries
        self.failovers = 0
        self.integrity_failures = 0
        # -- push stream state (see subscribe()) --
        self.hub = config.hub
        self.subscribed = False
        self._sub_seq = 0  # highest announcement seq verified-or-skipped
        self._needs_resync = False
        self.push_adopted = 0
        self.push_rejected = 0
        self.push_duplicates = 0
        self.push_gaps = 0
        self.push_resyncs = 0

    # -- certificate sync ---------------------------------------------------

    def bootstrap(self) -> None:
        """Fetch and adopt a first certified tip (Alg. 3 over RPC)."""
        self.sync()

    def sync(self):
        """Pull the latest certified tip, trying issuers in order.

        Returns the adopted :class:`repro.core.issuer.CertifiedTip`.
        A tip that fails certificate verification counts as an
        integrity failure (tampered in flight, or a lying CI) and
        triggers failover, exactly like a timeout.
        """
        from repro.core.issuer import CertifiedTip
        from repro.errors import (
            NetworkError,
            OverloadedError,
            ResponseIntegrityError,
            ServiceUnavailableError,
        )

        last_error: Exception | None = None
        for issuer_name in self.issuers:
            if not self._endpoint_permits(issuer_name):
                continue  # breaker open: don't hammer a struggling CI
            for _attempt in range(self.integrity_retries):
                self._endpoint_dispatch(issuer_name)
                try:
                    tip = self.rpc.call(issuer_name, "latest_tip")
                except OverloadedError as exc:
                    self._endpoint_failure(issuer_name, overload=exc)
                    last_error = exc
                    break  # asked to back off: fail over
                except ResponseIntegrityError as exc:
                    self.integrity_failures += 1
                    last_error = exc
                    continue
                except NetworkError as exc:
                    self._endpoint_failure(issuer_name)
                    last_error = exc
                    break  # endpoint down/unreachable: fail over
                try:
                    if not isinstance(tip, CertifiedTip):
                        raise CertificateError(
                            f"issuer returned {type(tip).__name__}, "
                            "not a certified tip"
                        )
                    self.client.validate_chain(tip.header, tip.certificate)
                    for index_name, cert in tip.index_certificates.items():
                        self.client.validate_index_certificate(
                            index_name,
                            tip.header,
                            tip.index_roots[index_name],
                            cert,
                        )
                except (CertificateError, KeyError) as exc:
                    self.integrity_failures += 1
                    last_error = ResponseIntegrityError(
                        f"certified tip from {issuer_name!r} failed "
                        f"verification: {exc}"
                    )
                    continue
                self._endpoint_success(issuer_name)
                self._roots_advanced()
                return tip
            self.failovers += 1
        raise ServiceUnavailableError(
            "no issuer returned a verifiable certified tip"
        ) from last_error

    # -- client-side endpoint breakers ---------------------------------------

    def _endpoint_permits(self, endpoint: str) -> bool:
        breaker = self._breakers.get(endpoint)
        return breaker is None or breaker.permits(self.rpc.bus.clock_ms)

    def _endpoint_dispatch(self, endpoint: str) -> None:
        breaker = self._breakers.get(endpoint)
        if breaker is not None:
            breaker.on_dispatch(self.rpc.bus.clock_ms)

    def _endpoint_success(self, endpoint: str) -> None:
        breaker = self._breakers.get(endpoint)
        if breaker is not None:
            breaker.record_success()

    def _endpoint_failure(self, endpoint: str, *, overload=None) -> None:
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            return
        from repro.net.resilience import clamp_retry_after

        breaker.record_failure(
            self.rpc.bus.clock_ms,
            overload=overload is not None,
            retry_after_ms=(
                clamp_retry_after(overload.retry_after_ms)
                if overload is not None
                else 0.0
            ),
        )

    def _roots_advanced(self) -> None:
        """Housekeeping after adopting a certified tip: sweep cache
        entries verified under superseded roots, and make the gateway
        re-verify replicas against the new roots on the next switch."""
        if self.cache is not None:
            self.cache.retain_roots(
                root for _height, root in self.client._index_roots.values()
            )
        if self.gateway is not None:
            self.gateway.reset_verified()

    # -- push sync (the hub stream) -----------------------------------------

    def on_tip(self, callback):
        """Register ``callback(header, certificate)`` for every adopted
        tip — pushed or polled.  Returns the callback."""
        return self.client.on_tip(callback)

    def subscribe(self, source=None) -> None:
        """Subscribe to the configured :class:`~repro.net.pubsub
        .SubscriptionHub` (or to the endpoint named by ``source``).

        From here on, every block the issuer certifies is *pushed* to
        this client; each announcement is verified with the standard
        certificate check before the tip advances (a forged or replayed
        announcement is discarded and counted, exactly like a bad
        polled tip), and adopting one invalidates the verified-answer
        cache the same way a polled sync does.  Announcements are
        sequence-numbered: a gap (lost pushes, hub restart, our own
        downtime) or a hub :class:`~repro.net.messages.LagNotice` marks
        the stream for :meth:`resync`, which runs on the next
        :meth:`heartbeat` (push handlers never issue blocking RPC).
        """
        from repro.errors import ServiceUnavailableError
        from repro.net.pubsub import SubscriptionHub, push_topic

        hub = source if isinstance(source, str) else self.hub
        if hub is None:
            raise ServiceUnavailableError(
                "no hub configured: set ClientConfig.hub or pass the "
                "endpoint name as source="
            )
        self.hub = hub
        self.rpc.node.on(push_topic(self.rpc.name), self._on_push)
        reply = self.rpc.call(hub, SubscriptionHub.SUBSCRIBE, self.rpc.name)
        self._sub_seq = reply.latest_seq
        self.subscribed = True
        self._needs_resync = False
        obs.inc("client.push_subscribes")

    def unsubscribe(self) -> None:
        """Leave the hub stream (idempotent)."""
        from repro.net.pubsub import SubscriptionHub

        if not self.subscribed:
            return
        self.subscribed = False
        self.rpc.call(self.hub, SubscriptionHub.UNSUBSCRIBE, self.rpc.name)

    def heartbeat(self):
        """The periodic stream pump: resync if flagged, renew the lease.

        Returns the hub's :class:`~repro.net.pubsub.HeartbeatReply`.
        Also the recovery path: if the hub no longer knows us (it
        restarted, or our lease expired), re-subscribe and catch up; if
        it reports announcements beyond what we have seen and nothing
        arrives (every in-window push lost), the hub retransmits the
        unacked window in response to our acked sequence number.
        """
        from repro.errors import ServiceUnavailableError
        from repro.net.pubsub import SubscriptionHub

        if not self.subscribed:
            raise ServiceUnavailableError("not subscribed; call subscribe()")
        if self._needs_resync:
            self.resync()
        reply = self.rpc.call(
            self.hub, SubscriptionHub.HEARTBEAT, (self.rpc.name, self._sub_seq)
        )
        if not reply.subscribed:
            # Reaped (or the hub restarted): re-subscribe, then catch up
            # from where we *actually* are — subscribe() positions the
            # stream at the hub's tip, which would skip everything
            # missed while we were away.
            seen = self._sub_seq
            self.subscribe()
            self._sub_seq = min(seen, self._sub_seq)
            self.resync()
        elif reply.lagged or reply.latest_seq > self._sub_seq:
            # Lagged, or announcements exist that never reached us.
            # Retransmits may already be in flight after this
            # heartbeat; resync() resolves either way with one pull.
            self.resync()
        return reply

    def resync(self):
        """Catch up over the pull path: fetch every retained
        announcement past our sequence number, verify and adopt each,
        and clear the lag/gap flag.  Returns the number adopted."""
        from repro.net.pubsub import SubscriptionHub

        reply = self.rpc.call(
            self.hub, SubscriptionHub.SYNC_RANGE, (self.rpc.name, self._sub_seq + 1)
        )
        adopted = 0
        for announcement in reply.announcements:
            if self._adopt_announcement(announcement):
                adopted += 1
        self._sub_seq = max(self._sub_seq, reply.latest_seq)
        self._needs_resync = False
        self.push_resyncs += 1
        obs.inc("client.push_resyncs")
        return adopted

    def _on_push(self, message) -> None:
        """Bus handler for hub pushes — local verification only."""
        from repro.errors import ReproError
        from repro.net import wire
        from repro.net.messages import LagNotice, PushEnvelope
        from repro.net.pubsub import TipAnnouncement

        if isinstance(message, LagNotice):
            self.push_gaps += 1
            self._needs_resync = True
            obs.inc("client.push_lag_notices")
            return
        if not isinstance(message, PushEnvelope):
            return
        try:
            announcement = wire.decode(message.payload)
            if not isinstance(announcement, TipAnnouncement):
                raise CertificateError("push payload is not a tip announcement")
        except (ReproError, CertificateError):
            # Corrupted or forged in flight.  Don't ack — the hub
            # retransmits the genuine announcement on our next
            # heartbeat.
            self.push_rejected += 1
            self.integrity_failures += 1
            obs.inc("client.push_rejected")
            return
        if announcement.seq <= self._sub_seq:
            self.push_duplicates += 1
            obs.inc("client.push_duplicates")
            self._ack()
            return
        if announcement.seq > self._sub_seq + 1:
            # Gap: something between was lost or dropped-oldest.
            self.push_gaps += 1
            self._needs_resync = True
            obs.inc("client.push_gaps")
            return
        try:
            self._adopt_announcement(announcement)
        except CertificateError:
            self.push_rejected += 1
            self.integrity_failures += 1
            obs.inc("client.push_rejected")
            return
        self._sub_seq = announcement.seq
        self._ack()

    def _ack(self) -> None:
        from repro.net.messages import StreamAck
        from repro.net.pubsub import ack_topic

        self.rpc.bus.send(
            self.rpc.name,
            self.hub,
            ack_topic(self.hub),
            StreamAck(subscriber=self.rpc.name, seq=self._sub_seq),
        )

    def _adopt_announcement(self, announcement) -> bool:
        """Verify one announcement exactly as a polled tip; adopt it if
        it wins chain selection.  Raises CertificateError on a forgery.

        Verification is atomic: *every* certificate in the announcement
        is checked before any client state moves, so a forged index
        certificate cannot leave a half-adopted tip behind (the report
        cache makes the re-check during adoption nearly free)."""
        from repro.core.digest import index_digest

        header = announcement.header
        for index_name, cert in announcement.index_certificates.items():
            root = announcement.index_roots.get(index_name)
            if root is None:
                raise CertificateError(
                    f"announcement omits the root for index {index_name!r}"
                )
            self.client._check_certificate(cert, index_digest(header, root))
        adopted = self.client.validate_chain(header, announcement.certificate)
        if not adopted:
            return False  # replayed/older tip: verified but not adopted
        for index_name, cert in announcement.index_certificates.items():
            self.client.validate_index_certificate(
                index_name, header, announcement.index_roots[index_name], cert
            )
        self._roots_advanced()
        self.push_adopted += 1
        if obs.enabled():
            obs.inc("client.push_adopted")
            obs.observe(
                "client.push_fanout_ms",
                self.rpc.bus.clock_ms - announcement.published_at_ms,
            )
        return True

    # -- queries ------------------------------------------------------------

    def query(self, request, *, deadline_ms: float = 0.0):
        """Run one typed query, verifying the answer before returning.

        A warm answer-cache hit (same canonical request, same certified
        root) returns immediately with zero RPC round trips.  Otherwise
        the request goes to the gateway (health-aware failover across
        the fleet) or down the provider list; per endpoint, an
        unverifiable answer is retried ``integrity_retries`` times (the
        fault may be transient line corruption) before failing over.
        Raises :class:`~repro.errors.ServiceUnavailableError` when no
        endpoint yields a verifiable answer.

        ``deadline_ms`` (absolute virtual-clock) is propagated down the
        transport, shrinking hop by hop, so replicas refuse work this
        call can no longer use.  When the whole tier sheds — every
        endpoint overloaded, unavailable, or out of budget — a client
        constructed with ``degrade_to_stale=True`` serves the last
        *verified* answer for this request as an explicitly-flagged
        :class:`~repro.query.answercache.StaleAnswer` instead of
        raising; correctness is never sacrificed, only freshness.
        """
        from repro.errors import (
            DeadlineExceededError,
            OverloadedError,
            ServiceUnavailableError,
        )

        cached = self._cache_get(request)
        if cached is not None:
            return cached
        try:
            if self.gateway is not None:
                answer = self._query_gateway(request, deadline_ms)
            else:
                answer = self._query_providers(request, deadline_ms)
        except (
            OverloadedError,
            ServiceUnavailableError,
            DeadlineExceededError,
        ):
            stale = self._stale_answer(request)
            if stale is None:
                raise
            return stale
        self._cache_put(request, answer)
        return answer

    def _stale_answer(self, request):
        """The graceful-degradation fallback (None when not enabled or
        nothing verified is on hand)."""
        if not self.degrade_to_stale or self.cache is None:
            return None
        stale = self.cache.get_stale(request)
        if stale is None:
            return None
        self.stale_served += 1
        obs.inc("resilience.stale_served")
        return stale

    def query_many(self, requests, *, deadline_ms: float = 0.0):
        """Run a batch of typed queries, pipelined across the fleet.

        Requires a gateway (the provider-list transport has no
        pipelined path).  Cache hits are answered locally; the misses
        are dispatched concurrently, so a fleet of N busy replicas
        drains them ~N× faster than one.  Every answer is verified
        before it is returned or cached; an unverifiable answer raises
        :class:`~repro.errors.ResponseIntegrityError`.
        """
        from repro.errors import ResponseIntegrityError
        from repro.query.api import QueryAnswer

        if self.gateway is None:
            return [self.query(request) for request in requests]
        requests = list(requests)
        results: list[object] = [None] * len(requests)
        misses: list[int] = []
        for position, request in enumerate(requests):
            cached = self._cache_get(request)
            if cached is not None:
                results[position] = cached
            else:
                misses.append(position)
        if misses:
            answers = self.gateway.call_many(
                "execute",
                [requests[position] for position in misses],
                deadline_ms=deadline_ms,
            )
            for position, answer in zip(misses, answers):
                request = requests[position]
                if not (
                    isinstance(answer, QueryAnswer)
                    and self.client.verify_answer(request, answer)
                ):
                    self.integrity_failures += 1
                    raise ResponseIntegrityError(
                        f"fleet answer to {type(request).__name__} failed "
                        "verification against the certified index roots"
                    )
                self._cache_put(request, answer)
                results[position] = answer
        return results

    def _query_gateway(self, request, deadline_ms: float = 0.0):
        """One query via the gateway, re-verifying until it checks out."""
        from repro.errors import ResponseIntegrityError, ServiceUnavailableError
        from repro.query.api import QueryAnswer

        last_error: Exception | None = None
        for _attempt in range(max(1, self.integrity_retries)):
            answer = self.gateway.call(
                "execute", request, deadline_ms=deadline_ms
            )
            if isinstance(answer, QueryAnswer) and self.client.verify_answer(
                request, answer
            ):
                return answer
            self.integrity_failures += 1
            last_error = ResponseIntegrityError(
                f"fleet answer to {type(request).__name__} failed "
                "verification against the certified index roots"
            )
        raise ServiceUnavailableError(
            f"no replica returned a verifiable answer to "
            f"{type(request).__name__}"
        ) from last_error

    def _query_providers(self, request, deadline_ms: float = 0.0):
        from repro.errors import (
            DeadlineExceededError,
            NetworkError,
            OverloadedError,
            ResponseIntegrityError,
            ServiceUnavailableError,
        )
        from repro.query.api import QueryAnswer

        last_error: Exception | None = None
        for provider_name in self.providers:
            if not self._endpoint_permits(provider_name):
                continue  # breaker open: spare a struggling provider
            for _attempt in range(self.integrity_retries):
                self._endpoint_dispatch(provider_name)
                try:
                    answer = self.rpc.call(
                        provider_name,
                        "execute",
                        request,
                        deadline_ms=deadline_ms,
                    )
                except OverloadedError as exc:
                    self._endpoint_failure(provider_name, overload=exc)
                    last_error = exc
                    break  # asked to back off: fail over
                except DeadlineExceededError:
                    raise  # the budget is gone everywhere at once
                except ResponseIntegrityError as exc:
                    self.integrity_failures += 1
                    last_error = exc
                    continue
                except NetworkError as exc:
                    self._endpoint_failure(provider_name)
                    last_error = exc
                    break  # endpoint down/unreachable: fail over
                if isinstance(answer, QueryAnswer) and self.client.verify_answer(
                    request, answer
                ):
                    self._endpoint_success(provider_name)
                    return answer
                self.integrity_failures += 1
                last_error = ResponseIntegrityError(
                    f"answer from {provider_name!r} failed verification "
                    "against the certified index roots"
                )
            self.failovers += 1
        raise ServiceUnavailableError(
            f"no provider returned a verifiable answer to "
            f"{type(request).__name__}"
        ) from last_error

    # -- the verified-answer cache ------------------------------------------

    def _certified_root_or_none(self, request) -> Digest | None:
        try:
            return self.client.certified_index_root(request.index)
        except (AttributeError, CertificateError):
            return None

    def _cache_get(self, request):
        if self.cache is None:
            return None
        root = self._certified_root_or_none(request)
        if root is None:
            return None
        return self.cache.get(request, root)

    def _cache_put(self, request, answer) -> None:
        if self.cache is None:
            return
        root = self._certified_root_or_none(request)
        if root is None:
            return
        entry = self.client._index_roots.get(getattr(request, "index", None))
        height = entry[0] if entry else -1
        # repro: allow[VER01] both callers admit only answers that just passed verify_answer()
        self.cache.put(request, root, answer, height=height)

    # -- replica switch verification ----------------------------------------

    def _verify_replica_roots(self, replica: str) -> None:
        """The gateway's ``verify_switch`` hook: before trusting a new
        replica, check that the index roots it serves match the
        client's certified ones.  (Answers are verified individually
        anyway; this catches a stale or lying replica *before* queries
        are routed at it.)"""
        from repro.errors import ResponseIntegrityError

        for name, (_height, certified) in self.client._index_roots.items():
            served = self.gateway.call_on(replica, "index_root", name)
            if served != certified:
                raise ResponseIntegrityError(
                    f"replica {replica!r} serves index {name!r} at a root "
                    "that does not match the certified one"
                )

    # -- delegation (the LightClient surface) -------------------------------

    @property
    def latest_header(self) -> BlockHeader | None:
        return self.client.latest_header

    def validate_chain(self, header: BlockHeader, cert: Certificate) -> bool:
        return self.client.validate_chain(header, cert)

    def verify_answer(self, request, answer) -> bool:
        return self.client.verify_answer(request, answer)

    def certified_index_root(self, name: str) -> Digest:
        return self.client.certified_index_root(name)

    def storage_bytes(self) -> int:
        return self.client.storage_bytes()


def compute_expected_measurement(
    genesis_digest: Digest,
    ias_public_key: PublicKey,
    vm,
    difficulty_bits: int,
    index_specs: dict | None = None,
) -> Digest:
    """What an honest DCert enclave measures as, given public inputs.

    Clients derive this from the *published* enclave source and build
    configuration — the same way real SGX users reproduce MRENCLAVE
    from a reproducible build.
    """
    from repro.core.enclave_program import DCertEnclaveProgram
    from repro.sgx.enclave import measure_program

    reference = DCertEnclaveProgram(
        genesis_digest=genesis_digest,
        ias_public_key=ias_public_key,
        vm=vm,
        difficulty_bits=difficulty_bits,
        index_specs=index_specs,
    )
    return measure_program(DCertEnclaveProgram, reference.config_bytes())
