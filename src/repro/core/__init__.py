"""DCert core: the paper's contribution.

* :mod:`certificate` — the certificate object ``<pk_enc, rep, dig, sig>``
  (§3.3) and its serialization (the 2.97 KB a superlight client stores).
* :mod:`digest` — the digests certificates sign: ``H(hdr)`` for block
  certificates, ``H(hdr || H_idx)`` for index certificates.
* :mod:`updateproof` — the update proof ``pi_i = ({r}_i, pi_r, pi_w)``
  shipped into the enclave (§4.1).
* :mod:`enclave_program` — the in-enclave program: ``ecall_sig_gen``,
  ``blk_verify_t``, ``cert_verify_t`` (Alg. 2), plus the augmented
  (Alg. 4) and hierarchical (Alg. 5) entry points.
* :mod:`issuer` — the CI's outside-enclave side: ``gen_cert`` (Alg. 1),
  the index-certification drivers, and the networked ``IssuerService``.
* :mod:`superlight` — the superlight client: ``validate_chain``
  (Alg. 3) and verifiable-query result checking, locally
  (``SuperlightClient``) or over RPC with failover
  (``RemoteSuperlightClient``).
* :mod:`client_api` — the :class:`LightClient` protocol both client
  flavors implement (one verification + streaming surface, two
  transports), plus :class:`ClientConfig` and the :func:`connect`
  factory — the canonical way to build any client shape.
"""

from repro.core.batch import BatchItem, IndexUpdate
from repro.core.certificate import Certificate
from repro.core.client_api import ClientConfig, LightClient, connect
from repro.core.digest import block_digest, index_digest
from repro.core.enclave_program import DCertEnclaveProgram
from repro.core.issuer import CertificateIssuer, CertifiedTip, IssuerService
from repro.core.pipeline import CertificationPipeline, PipelineStats
from repro.core.recovery import (
    DurableIssuer,
    IssuerCheckpoint,
    RecoveryReport,
    recover_issuer,
)
from repro.core.statesync import StateSnapshot, bootstrap_full_node, export_snapshot
from repro.core.superlight import (
    RemoteSuperlightClient,
    SuperlightClient,
    compute_expected_measurement,
)
from repro.core.updateproof import UpdateProof

__all__ = [
    "BatchItem",
    "Certificate",
    "CertificateIssuer",
    "CertificationPipeline",
    "CertifiedTip",
    "ClientConfig",
    "DCertEnclaveProgram",
    "DurableIssuer",
    "IndexUpdate",
    "IssuerCheckpoint",
    "IssuerService",
    "PipelineStats",
    "LightClient",
    "RecoveryReport",
    "RemoteSuperlightClient",
    "StateSnapshot",
    "SuperlightClient",
    "UpdateProof",
    "recover_issuer",
    "block_digest",
    "connect",
    "bootstrap_full_node",
    "compute_expected_measurement",
    "export_snapshot",
    "index_digest",
]
