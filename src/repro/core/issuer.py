"""The SGX-enabled Certificate Issuer — the CI of Fig. 2.

A CI is a full node (it validates and stores everything) that also runs
the DCert enclave.  Its outside-enclave side implements Alg. 1:

1. re-execute the incoming block to obtain the read/write sets
   (``comp_data_set``),
2. build the update proof against the previous state
   (``get_update_proof``),
3. enter the enclave for the signature (``ecall_sig_gen``), and
4. assemble the certificate ``<pk_enc, rep, dig, sig>``.

For verifiable queries the CI additionally maintains the authenticated
indexes it certifies and drives either certification scheme:

* **augmented** (Alg. 4) — one ecall per index, each replaying the full
  block verification;
* **hierarchical** (Alg. 5) — the block certificate once, then one
  cheap ecall per index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import obs
from repro.chain.block import Block, BlockHeader
from repro.chain.consensus import ProofOfWork
from repro.chain.node import FullNode
from repro.chain.state import StateStore
from repro.chain.vm import VM
from repro.core.batch import BatchItem, IndexUpdate
from repro.core.certificate import Certificate
from repro.core.digest import block_digest, index_digest
from repro.core.enclave_program import DCertEnclaveProgram
from repro.core.updateproof import UpdateProof
from repro.crypto import PublicKey
from repro.crypto.hashing import Digest
from repro.errors import CertificateError, ServiceUnavailableError
from repro.fault.crashpoints import crashpoint
from repro.merkle.proofcache import ProofCache
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    AggregateHistoryIndex,
    AuthenticatedIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    MaintainedKeywordIndex,
    TwoLevelHistoryIndex,
    ValueRangeIndex,
    ValueRangeIndexSpec,
)
from repro.sgx.attestation import AttestationReport, AttestationService, WELL_KNOWN_IAS
from repro.sgx.costs import SGXCostModel
from repro.sgx.enclave import EnclaveHost
from repro.sgx.platform import SGXPlatform


def make_maintained_index(spec: AuthenticatedIndexSpec):
    """Instantiate the SP-side structure matching an index spec."""
    if isinstance(spec, AccountHistoryIndexSpec):
        return TwoLevelHistoryIndex(spec)
    if isinstance(spec, KeywordIndexSpec):
        return MaintainedKeywordIndex(spec)
    if isinstance(spec, BalanceAggregateIndexSpec):
        return AggregateHistoryIndex(spec)
    if isinstance(spec, ValueRangeIndexSpec):
        return ValueRangeIndex(spec)
    raise CertificateError(f"no maintained index for spec {type(spec).__name__}")


@dataclass(slots=True)
class CertifiedBlock:
    """Everything the CI broadcasts for one block."""

    block: Block
    certificate: Certificate | None
    index_certificates: dict[str, Certificate] = field(default_factory=dict)
    index_roots: dict[str, Digest] = field(default_factory=dict)
    augmented_certificates: dict[str, Certificate] = field(default_factory=dict)
    # The block's state write set, kept so the durable archive can
    # persist it and recovery can rebuild indexes without re-execution.
    write_set: dict[bytes, bytes | None] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class CertifiedTip:
    """What a remote client needs from the CI's latest certified block.

    Unlike :class:`CertifiedBlock` it omits the block body — a
    superlight client only ever stores the header — so this is the
    constant-size object :class:`IssuerService` serves over RPC.
    """

    header: BlockHeader
    certificate: Certificate
    index_certificates: dict[str, Certificate]
    index_roots: dict[str, Digest]


@dataclass(slots=True)
class StagedBlock:
    """A validated, proof-built block queued for batch certification."""

    block: Block
    prev_block: Block
    item: BatchItem
    write_set: dict[bytes, bytes | None]
    new_index_roots: dict[str, Digest]
    shipped_keys: frozenset[bytes]


@dataclass(frozen=True, slots=True)
class AttestationEvidence:
    """The CI's identity material, served to bootstrapping clients.

    The client never *trusts* this — it re-derives the expected
    measurement from published sources and re-verifies the report — but
    serving it lets operators inspect what a CI claims to run.
    """

    measurement: Digest
    pk_enc: PublicKey
    report: AttestationReport


class CertificateIssuer:
    """Full node + enclave: certifies every block it accepts."""

    def __init__(
        self,
        genesis: Block,
        genesis_state: StateStore,
        vm: VM,
        pow_engine: ProofOfWork,
        *,
        index_specs: list[AuthenticatedIndexSpec] | None = None,
        platform: SGXPlatform | None = None,
        ias: AttestationService = WELL_KNOWN_IAS,
        cost_model: SGXCostModel | None = None,
        key_seed: bytes | None = None,
        sealed_key: bytes | None = None,
        proof_cache_entries: int = 0,
    ) -> None:
        self.node = FullNode(genesis, genesis_state, vm, pow_engine)
        self.ias = ias
        specs = {spec.name: spec for spec in (index_specs or [])}
        program = DCertEnclaveProgram(
            genesis_digest=genesis.header.header_hash(),
            ias_public_key=ias.public_key,
            vm=vm,
            difficulty_bits=pow_engine.difficulty_bits,
            index_specs=specs,
            key_seed=key_seed,
            sealed_key=sealed_key,
        )
        self.platform = platform if platform is not None else SGXPlatform()
        ias.register_platform(self.platform)
        self.enclave = EnclaveHost(program, self.platform, cost_model=cost_model)
        self.report = self.enclave.attest(ias)
        self.pk_enc = PublicKey.from_bytes(self.enclave.report_data)
        self.indexes = {name: make_maintained_index(spec) for name, spec in specs.items()}
        self._index_roots: dict[str, Digest] = {
            name: spec.genesis_root() for name, spec in specs.items()
        }
        self._index_certs: dict[str, Certificate | None] = {
            name: None for name in specs
        }
        self._aug_certs: dict[str, Certificate | None] = {name: None for name in specs}
        self.latest_certificate: Certificate | None = None
        self.certified: list[CertifiedBlock] = []
        #: Fired with each CertifiedBlock right after it is committed.
        #: The subscription hub (repro.net.pubsub) attaches here; the
        #: hook also fires through DurableIssuer's delegation.
        self.on_certified: list[Callable[[CertifiedBlock], object]] = []
        # Batched-path state: the CI-side LRU mirror of the enclave's
        # carried proof slice, the key set the enclave is known to
        # cover (reconciled at every batch boundary), and the staging
        # queue of validated-but-uncertified blocks.
        self.proof_cache = ProofCache(proof_cache_entries)
        self._enclave_keys: set[bytes] = set()
        self._staged: list[StagedBlock] = []

    # -- Alg. 1: gen_cert ------------------------------------------------------

    def preprocess(self, block: Block):
        """Alg. 1 lines 2-3: re-execute and build the update proof.

        Untrusted pre-processing, exposed separately so benchmarks can
        time it apart from the enclave work.
        """
        result = self.node.validate_block(block)  # comp_data_set
        update_proof = UpdateProof.build(self.node.state, result.touched_keys())
        return result, update_proof

    def gen_cert(
        self, block: Block, *, precomputed=None
    ) -> tuple[Certificate, UpdateProof, dict]:
        """Construct the block certificate for ``block`` (Alg. 1).

        Does not commit the block; returns the certificate, the update
        proof (for reuse), and the block's write set.  Raises if the
        block or its state transition is invalid.  ``precomputed`` (from
        :meth:`preprocess`) skips re-running the untrusted side.
        """
        with obs.trace_span("issuer.gen_cert"):
            result, update_proof = (
                precomputed if precomputed is not None else self.preprocess(block)
            )
            prev = self.node.tip
            sig = self.enclave.ecall(
                "sig_gen",
                prev,
                self.latest_certificate,
                block,
                update_proof,
                payload_bytes=update_proof.size_bytes(),
            )
            certificate = Certificate(
                pk_enc=self.pk_enc,
                report=self.report,
                dig=block_digest(block.header),
                sig=sig,
            )
        if obs.enabled():
            obs.inc("issuer.certs_issued")
            obs.observe(
                "issuer.update_proof_bytes",
                update_proof.size_bytes(),
                boundaries=obs.SIZE_BYTES_BUCKETS,
            )
        return certificate, update_proof, result.write_set

    def process_block(
        self,
        block: Block,
        *,
        schemes: tuple[str, ...] = ("hierarchical",),
        precomputed=None,
    ) -> CertifiedBlock:
        """Certify ``block`` (and its indexes), then commit it.

        ``schemes`` selects index certification: ``"hierarchical"``
        (Alg. 5, the default), ``"augmented"`` (Alg. 4), or both — the
        Fig. 10 benchmark runs both to compare construction costs.

        Per Alg. 4 the augmented certificate *replaces* the block
        certificate (block and index verification share one ecall), so
        with ``schemes=("augmented",)`` and at least one index no plain
        block certificate is issued; an issuer should then stick to the
        augmented scheme for its lifetime, since the block-certificate
        chain stops advancing.
        """
        for scheme in schemes:
            if scheme not in ("hierarchical", "augmented"):
                raise CertificateError(f"unknown certification scheme {scheme!r}")
        if self._staged:
            raise CertificateError(
                "staged blocks pending batch certification; call "
                "certify_staged() before certifying sequentially"
            )
        # A sequential certification advances the chain without the
        # enclave's carried slice following along, so the slice (and our
        # mirror of it) is stale from here on.  The enclave discards it
        # on the next batch's root check; drop the mirror now so we ship
        # full proofs again rather than assume coverage that is gone.
        self.proof_cache.clear()
        self._enclave_keys.clear()
        crashpoint("issuer.process_block.pre")
        with obs.trace_span("issuer.process_block"):
            certified = self._process_block(
                block, schemes=schemes, precomputed=precomputed
            )
        crashpoint("issuer.process_block.post")
        return certified

    def _process_block(
        self,
        block: Block,
        *,
        schemes: tuple[str, ...],
        precomputed,
    ) -> CertifiedBlock:
        if precomputed is not None:
            result, update_proof = precomputed
        else:
            result, update_proof = self.preprocess(block)
        write_set = result.write_set
        prev = self.node.tip

        certificate: Certificate | None = None
        if "hierarchical" in schemes or not self.indexes:
            certificate, update_proof, write_set = self.gen_cert(
                block, precomputed=(result, update_proof)
            )
        certified = CertifiedBlock(
            block=block, certificate=certificate, write_set=dict(write_set)
        )

        # Ingest index updates once; reuse proofs across both schemes.
        ingests: dict[str, tuple[Digest, tuple, object, Digest]] = {}
        for name, index in self.indexes.items():
            prev_root = self._index_roots[name]
            writes, index_proof = index.ingest_block(block, write_set)
            ingests[name] = (prev_root, writes, index_proof, index.root)

        if "augmented" in schemes:
            for name, (prev_root, writes, index_proof, new_root) in ingests.items():
                with obs.trace_span("issuer.index_certification"):
                    sig = self.enclave.ecall(
                        "augmented_sig_gen",
                        prev,
                        self._aug_certs[name],
                        prev_root,
                        block,
                        new_root,
                        update_proof,
                        index_proof,
                        name,
                        payload_bytes=update_proof.size_bytes()
                        + index_proof.size_bytes(),
                    )
                    cert = Certificate(
                        pk_enc=self.pk_enc,
                        report=self.report,
                        dig=index_digest(block.header, new_root),
                        sig=sig,
                    )
                self._record_index_cert_metrics(index_proof)
                self._aug_certs[name] = cert
                certified.augmented_certificates[name] = cert

        if "hierarchical" in schemes:
            assert certificate is not None  # issued above for this scheme
            for name, (prev_root, writes, index_proof, new_root) in ingests.items():
                with obs.trace_span("issuer.index_certification"):
                    sig = self.enclave.ecall(
                        "index_sig_gen",
                        prev.header,
                        prev_root,
                        self._index_certs[name],
                        block.header,
                        certificate,
                        new_root,
                        index_proof,
                        name,
                        payload_bytes=index_proof.size_bytes(),
                    )
                    cert = Certificate(
                        pk_enc=self.pk_enc,
                        report=self.report,
                        dig=index_digest(block.header, new_root),
                        sig=sig,
                    )
                self._record_index_cert_metrics(index_proof)
                self._index_certs[name] = cert
                certified.index_certificates[name] = cert

        for name, (_, _, _, new_root) in ingests.items():
            self._index_roots[name] = new_root
            certified.index_roots[name] = new_root

        # Commit (the block was already fully validated in preprocess).
        self.node.state.apply_writes(write_set)
        self.node.blocks.append(block)
        if certificate is not None:
            self.latest_certificate = certificate
        self.certified.append(certified)
        self._fire_certified(certified)
        return certified

    def _fire_certified(self, certified: CertifiedBlock) -> None:
        for hook in list(self.on_certified):
            hook(certified)

    def _record_index_cert_metrics(self, index_proof) -> None:
        if obs.enabled():
            obs.inc("issuer.index_certs_issued")
            obs.observe(
                "issuer.index_proof_bytes",
                index_proof.size_bytes(),
                boundaries=obs.SIZE_BYTES_BUCKETS,
            )

    # -- batched issuance ------------------------------------------------------

    @property
    def staged_count(self) -> int:
        """Blocks staged and awaiting :meth:`certify_staged`."""
        return len(self._staged)

    def stage_block(self, block: Block) -> None:
        """Untrusted preprocessing for the batched path (Alg. 1 lines
        2-3, pipelined).

        Validates ``block``, builds an update proof *pruned* to the
        proof-cache misses (the enclave's carried slice already proves
        the hits), ingests the index updates, and commits the block to
        the untrusted node state — so the next block can stage against
        it while the enclave is still certifying the previous batch.
        Certificates are only issued by :meth:`certify_staged`.
        """
        with obs.trace_span("issuer.stage_block"):
            result, update_proof = self.preprocess(block)
            prev = self.node.tip
            touched = sorted(result.touched_keys())
            misses = [key for key in touched if not self.proof_cache.lookup(key)]
            if len(misses) != len(touched):
                # Reprove only the cache misses; hits ride the enclave's
                # carried slice.
                update_proof = UpdateProof.build(self.node.state, misses)
            for key in misses:
                self.proof_cache.admit(key)

            index_updates: dict[str, IndexUpdate] = {}
            new_roots: dict[str, Digest] = {}
            for name, index in self.indexes.items():
                prev_root = self._index_roots[name]
                _writes, index_proof = index.ingest_block(block, result.write_set)
                index_updates[name] = IndexUpdate(
                    prev_root=prev_root, new_root=index.root, proof=index_proof
                )
                new_roots[name] = index.root
                self._index_roots[name] = index.root

            self._staged.append(
                StagedBlock(
                    block=block,
                    prev_block=prev,
                    item=BatchItem(
                        block=block,
                        update_proof=update_proof,
                        index_updates=index_updates,
                    ),
                    write_set=result.write_set,
                    new_index_roots=new_roots,
                    shipped_keys=frozenset(misses),
                )
            )
            self.node.state.apply_writes(result.write_set)
            self.node.blocks.append(block)
        crashpoint("issuer.stage_block.post")
        if obs.enabled():
            obs.inc("issuer.blocks_staged")
            obs.observe(
                "issuer.update_proof_bytes",
                update_proof.size_bytes(),
                boundaries=obs.SIZE_BYTES_BUCKETS,
            )

    def certify_staged(self) -> list[CertifiedBlock]:
        """Certify every staged block in ONE ecall (the tentpole batch).

        Compared with K sequential ``process_block`` calls this pays a
        single enclave transition instead of ``K * (1 + #indexes)``,
        verifies the anchor certificates once instead of per block, and
        one paging charge over the batch's *peak* per-block working set
        instead of one per ecall.  The certificates produced are
        byte-identical to the sequential path's (RFC-6979 signing over
        the same digests by the same key).
        """
        if not self._staged:
            return []
        staged = self._staged
        self._staged = []
        anchor = staged[0].prev_block
        anchor_index_certs = dict(self._index_certs)
        items = tuple(entry.item for entry in staged)
        # Reconcile the enclave's slice with the LRU mirror: everything
        # the enclave covers (or will after merging this batch's shipped
        # proofs) that the mirror has since evicted must be forgotten.
        merged = set().union(*(entry.shipped_keys for entry in staged))
        mirror = self.proof_cache.keys()
        evict = tuple(sorted((self._enclave_keys | merged) - mirror))
        peak_payload = max(item.payload_bytes() for item in items)
        crashpoint("issuer.certify_staged.pre")
        try:
            with obs.trace_span("issuer.certify_staged"):
                signatures = self.enclave.ecall(
                    "sig_gen_batch",
                    anchor,
                    self.latest_certificate,
                    anchor_index_certs,
                    items,
                    evict,
                    payload_bytes=peak_payload,
                )
        except Exception:
            # The enclave discarded its carried slice; drop the mirror
            # so the next batch ships full proofs again.
            self.proof_cache.clear()
            self._enclave_keys.clear()
            raise
        crashpoint("issuer.certify_staged.post")
        self._enclave_keys = mirror

        results: list[CertifiedBlock] = []
        for entry, (sig, index_sigs) in zip(staged, signatures):
            block = entry.block
            certificate = Certificate(
                pk_enc=self.pk_enc,
                report=self.report,
                dig=block_digest(block.header),
                sig=sig,
            )
            certified = CertifiedBlock(
                block=block,
                certificate=certificate,
                write_set=dict(entry.write_set),
            )
            for name, index_sig in index_sigs.items():
                new_root = entry.new_index_roots[name]
                cert = Certificate(
                    pk_enc=self.pk_enc,
                    report=self.report,
                    dig=index_digest(block.header, new_root),
                    sig=index_sig,
                )
                self._index_certs[name] = cert
                certified.index_certificates[name] = cert
                certified.index_roots[name] = new_root
                self._record_index_cert_metrics(entry.item.index_updates[name].proof)
            self.latest_certificate = certificate
            self.certified.append(certified)
            self._fire_certified(certified)
            results.append(certified)

        if obs.enabled():
            batch = len(staged)
            saved = batch * (1 + len(self.indexes)) - 1
            obs.inc("issuer.certs_issued", batch)
            obs.inc("issuer.batches")
            obs.inc("issuer.batch_blocks", batch)
            obs.inc("issuer.batch_transitions_saved", saved)
            stats = self.proof_cache.stats()
            obs.set_gauge("issuer.proof_cache_hits", stats["hits"])
            obs.set_gauge("issuer.proof_cache_misses", stats["misses"])
            obs.set_gauge("issuer.proof_cache_hit_rate", stats["hit_rate"])
            obs.set_gauge("issuer.proof_cache_entries", stats["entries"])
            obs.observe("issuer.batch_size_blocks", batch)
            obs.observe(
                "issuer.batch_peak_payload_bytes",
                peak_payload,
                boundaries=obs.SIZE_BYTES_BUCKETS,
            )
        return results

    def issue_batch(self, blocks: list[Block]) -> list[CertifiedBlock]:
        """Stage ``blocks`` then certify them in one batch ecall.

        If a block fails validation partway through, the already-staged
        (valid, committed) prefix is still certified before the error
        propagates, so the issuer is never left with a pending queue.
        """
        try:
            for block in blocks:
                self.stage_block(block)
        except Exception:
            self.certify_staged()
            raise
        return self.certify_staged()

    # -- conveniences ----------------------------------------------------------

    def seal_signing_key(self) -> bytes:
        """Export the enclave signing key sealed to this enclave's
        identity, for restart continuity (pass as ``sealed_key`` to the
        next :class:`CertificateIssuer` on the same platform)."""
        return self.enclave.ecall("seal_signing_key")

    @property
    def measurement(self) -> Digest:
        return self.enclave.measurement

    def index_root(self, name: str) -> Digest:
        return self._index_roots[name]

    def index_certificate(self, name: str) -> Certificate | None:
        return self._index_certs[name]


class IssuerService:
    """The CI's networked face: serves certified tips over RPC (Fig. 2).

    Methods:

    * ``latest_tip`` — the newest :class:`CertifiedTip` (header,
      block certificate, index certificates and roots);
    * ``tip_at`` — the certified tip at a given height, for clients
      catching up or auditing;
    * ``evidence`` — the CI's :class:`AttestationEvidence`;
    * ``certify_range`` — submit a run of consecutive blocks for
      batched certification (one enclave ecall for the whole run);
      returns the resulting :class:`CertifiedTip` per block.

    Raises :class:`~repro.errors.ServiceUnavailableError` (propagated
    to the caller through the RPC error channel) while the CI has not
    certified any block yet under the hierarchical scheme.
    """

    def __init__(self, bus, name: str, issuer: CertificateIssuer) -> None:
        from repro.net.rpc import RpcServer

        self.issuer = issuer
        self.server = RpcServer(bus, name)
        self.server.register("latest_tip", self._latest_tip)
        self.server.register("tip_at", self._tip_at)
        self.server.register("evidence", self._evidence)
        self.server.register("certify_range", self._certify_range)

    def _certified_tip(self, certified: CertifiedBlock) -> CertifiedTip:
        if certified.certificate is None:
            raise ServiceUnavailableError(
                "no hierarchical block certificate for this block "
                "(augmented-only issuer)"
            )
        return CertifiedTip(
            header=certified.block.header,
            certificate=certified.certificate,
            index_certificates=dict(certified.index_certificates),
            index_roots=dict(certified.index_roots),
        )

    def _latest_tip(self, _argument: object) -> CertifiedTip:
        if not self.issuer.certified:
            raise ServiceUnavailableError("issuer has not certified any block")
        return self._certified_tip(self.issuer.certified[-1])

    def _tip_at(self, height: object) -> CertifiedTip:
        for certified in self.issuer.certified:
            if certified.block.header.height == height:
                return self._certified_tip(certified)
        raise ServiceUnavailableError(f"no certified block at height {height!r}")

    def _certify_range(self, blocks: object) -> tuple[CertifiedTip, ...]:
        """Certify a run of consecutive blocks, idempotently.

        A client retrying after an issuer crash + restore may resend
        blocks the issuer already certified (the certificates were
        durable but the response was lost).  Heights at or below the
        tip whose header hash matches the certified block are answered
        from the archive — re-certifying them would produce the exact
        same bytes anyway (deterministic signatures) — and only the
        genuinely new suffix goes through the enclave.
        """
        if not isinstance(blocks, (list, tuple)) or not blocks:
            raise CertificateError("certify_range takes a non-empty block list")
        if not all(isinstance(block, Block) for block in blocks):
            raise CertificateError("certify_range takes Block objects")
        replayed: list[CertifiedTip] = []
        fresh: list[Block] = []
        certified_at = {
            entry.block.header.height: entry for entry in self.issuer.certified
        }
        for block in blocks:
            if fresh:
                fresh.append(block)
                continue
            existing = certified_at.get(block.header.height)
            if (
                existing is not None
                and existing.block.header.header_hash()
                == block.header.header_hash()
            ):
                replayed.append(self._certified_tip(existing))
            else:
                fresh.append(block)
        if fresh and self.issuer.staged_count:
            # Recovery resumed a staged batch the crash interrupted; if
            # the retry re-sends exactly those blocks, finish the batch
            # instead of staging duplicates.
            staged_hashes = [
                staged.block.header.header_hash()
                for staged in self.issuer._staged
            ]
            fresh_hashes = [
                block.header.header_hash()
                for block in fresh[: len(staged_hashes)]
            ]
            if staged_hashes == fresh_hashes:
                certified = self.issuer.certify_staged()
                replayed.extend(
                    self._certified_tip(entry) for entry in certified
                )
                fresh = fresh[len(staged_hashes) :]
        if fresh:
            certified = self.issuer.issue_batch(fresh)
            replayed.extend(self._certified_tip(entry) for entry in certified)
        return tuple(replayed)

    def _evidence(self, _argument: object) -> AttestationEvidence:
        return AttestationEvidence(
            measurement=self.issuer.measurement,
            pk_enc=self.issuer.pk_enc,
            report=self.issuer.report,
        )


def attach_lazy_proof_service(issuer: CertificateIssuer) -> None:
    """Register the Ocall the lazy certification path depends on.

    The handler serves (pre-state value, SMT proof) for any cell from
    the CI's untrusted state — the enclave verifies each response, so a
    lying handler only aborts certification.
    """

    def fetch_state_proof(key: bytes):
        return issuer.node.state.get_raw(key), issuer.node.state.prove(key)

    issuer.enclave.register_ocall("fetch_state_proof", fetch_state_proof)


def gen_cert_lazy(issuer: CertificateIssuer, block: Block) -> Certificate:
    """Alg. 1 with the lazy (Ocall-per-cell) enclave path.

    Requires :func:`attach_lazy_proof_service`.  Does not commit the
    block; exists for the Ecall/Ocall design-space ablation.
    """
    issuer.node.validate_block(block)
    sig = issuer.enclave.ecall(
        "sig_gen_lazy",
        issuer.node.tip,
        issuer.latest_certificate,
        block,
    )
    return Certificate(
        pk_enc=issuer.pk_enc,
        report=issuer.report,
        dig=block_digest(block.header),
        sig=sig,
    )
