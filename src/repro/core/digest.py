"""The digests DCert certificates commit to.

A block certificate signs ``dig_i = H(hdr_i)``; an index certificate
signs ``dig_i = H(hdr_i || H_i^idx)``, binding the authenticated index
root to the exact block whose state it reflects (§5.2).

Note on the paper: Alg. 4 line 13 writes ``dig_i <- H(hdr_{i-1} ||
H_{i-1}^idx)`` while line 12 signs ``H(hdr_i || H_i^idx)``; signing and
certificate digest must match for ``cert_verify_t`` to accept the
certificate one block later, so we read line 13's subscripts as a typo
and use ``i`` throughout (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.chain.block import BlockHeader
from repro.crypto.hashing import Digest, hash_concat


def block_digest(header: BlockHeader) -> Digest:
    """``dig = H(hdr)`` for block certificates."""
    return header.header_hash()


def index_digest(header: BlockHeader, index_root: Digest) -> Digest:
    """``dig = H(hdr || H_idx)`` for augmented / hierarchical certificates."""
    return hash_concat(b"dcert-idx-dig", header.header_hash(), index_root)
