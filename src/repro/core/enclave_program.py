"""The DCert enclave program (Alg. 2, 4, 5 — the trusted side).

Everything in this module runs "inside the enclave": its source code,
together with its build-time configuration (genesis digest, IAS public
key, the contract VM's code identity, the authenticated index specs),
is folded into the enclave measurement, so clients that check the
measurement are checking exactly this logic.

Entry points (ecalls):

* :meth:`DCertEnclaveProgram.sig_gen` — Alg. 2's ``ecall_sig_gen``:
  verify the previous certificate (or the hard-coded genesis), verify
  the new block including a full transaction replay over the proven
  state slice, and sign ``H(hdr_i)``.
* :meth:`DCertEnclaveProgram.augmented_sig_gen` — Alg. 4: block
  verification *and* one authenticated index update in a single ecall.
* :meth:`DCertEnclaveProgram.index_sig_gen` — the per-index body of
  Alg. 5: trusts an already-issued block certificate instead of
  replaying the block, then verifies the index update.

The enclave-resident signing key ``sk_enc`` is generated at load time
(``on_init``) and never leaves; only ``pk_enc`` is exported, via the
attestation report's user data.
"""

from __future__ import annotations

import inspect

from repro.chain.block import Block, BlockHeader
from repro.chain.consensus import ProofOfWork
from repro.chain.executor import TransactionExecutor
from repro.chain.vm import VM
from repro.core.batch import BatchItem
from repro.core.certificate import CERT_SIG_DOMAIN, Certificate
from repro.core.digest import block_digest, index_digest
from repro.core.updateproof import UpdateProof
from repro.crypto import PublicKey, Signature, generate_keypair, sign, verify
from repro.crypto.hashing import Digest
from repro.errors import CertificateError, EnclaveError
from repro.query.indexes import AuthenticatedIndexSpec
from repro.sgx.enclave import EnclaveProgram

#: How many recently certified blocks' write sets the enclave caches for
#: the hierarchical scheme's follow-up index ecalls.
_WRITE_SET_CACHE = 4

#: Hard cap on the carried proof slice (entries).  Cache policy is
#: untrusted (the CI sends eviction hints), so a CI that never evicts
#: could otherwise grow the enclave's working set without bound; past
#: the cap the enclave drops the whole slice — a pure performance
#: penalty, never a soundness issue.
_CARRIED_SLICE_CAP = 4096

#: Domain prefixes inside sealed plaintexts.  Sealing authenticates
#: *who* sealed (platform + measurement) but not *what for*; without a
#: domain tag a sealed checkpoint could be fed back as a sealed signing
#: key (or vice versa).  The prefix is checked on unseal.
_SEAL_KEY_DOMAIN = b"dcert.sealed.signing-key\x00"
_SEAL_CKPT_DOMAIN = b"dcert.sealed.checkpoint\x00"


class _NoState:
    """Backing used when a block ships no update proof: any state access
    means the proof is incomplete, so reads fail loudly."""

    def get_raw(self, key: bytes) -> bytes | None:
        from repro.errors import ProofError

        raise ProofError("state access in a block with no update proof")


_NO_STATE = _NoState()


class DCertEnclaveProgram(EnclaveProgram):
    """Trusted certificate-signing program."""

    ECALLS = (
        "sig_gen",
        "sig_gen_batch",
        "sig_gen_lazy",
        "augmented_sig_gen",
        "index_sig_gen",
        "seal_signing_key",
        "seal_checkpoint",
        "unseal_checkpoint",
    )

    def __init__(
        self,
        genesis_digest: Digest,
        ias_public_key: PublicKey,
        vm: VM,
        difficulty_bits: int,
        index_specs: dict[str, AuthenticatedIndexSpec] | None = None,
        *,
        key_seed: bytes | None = None,
        sealed_key: bytes | None = None,
    ) -> None:
        self._genesis_digest = genesis_digest
        self._ias_public_key = ias_public_key
        self._vm = vm
        self._pow = ProofOfWork(difficulty_bits)
        self._executor = TransactionExecutor(vm)
        self._index_specs = dict(index_specs or {})
        self._key_seed = key_seed
        self._sealed_key = sealed_key
        # Hierarchical-scheme cache: block hash -> (block, write set).
        self._recent: dict[Digest, tuple[Block, dict[bytes, bytes | None]]] = {}
        # Batched-scheme proof cache: the verified partial-SMT slice
        # carried across consecutive batches, and the state root it is
        # valid against.  See sig_gen_batch.
        self._carried_slice = None
        self._carried_root: Digest = b""

    # -- enclave lifecycle ---------------------------------------------------

    def config_bytes(self) -> bytes:
        """Build-time identity folded into the measurement.

        Covers the genesis digest, the trusted IAS key, the consensus
        difficulty, the source of every deployed contract, and the
        source + parameters of every index spec — so an enclave with
        different trusted logic measures differently.
        """
        parts = [
            self._genesis_digest,
            self._ias_public_key.to_bytes(),
            self._pow.difficulty_bits.to_bytes(2, "big"),
        ]
        for name in self._vm.deployed():
            contract = self._vm._contracts[name]
            parts.append(name.encode("utf-8"))
            parts.append(inspect.getsource(type(contract)).encode("utf-8"))
        for name in sorted(self._index_specs):
            spec = self._index_specs[name]
            parts.append(name.encode("utf-8"))
            parts.append(inspect.getsource(type(spec)).encode("utf-8"))
            parts.append(repr(sorted(vars(spec).items())).encode("utf-8"))
        return b"\x00".join(parts)

    def on_init(self) -> bytes:
        """Generate ``(sk_enc, pk_enc)`` inside the enclave (§3.3).

        If a sealed key blob is supplied (a CI restarting), the key is
        *unsealed* instead — only this program on this platform can do
        so — which keeps ``pk_enc`` stable across restarts so clients
        need not re-check a new attestation report.
        """
        if self._sealed_key is not None:
            from repro.crypto.keys import KeyPair, PrivateKey
            from repro.sgx.sealing import unseal

            plaintext = unseal(
                self._platform, self.self_measurement, self._sealed_key
            )
            if not plaintext.startswith(_SEAL_KEY_DOMAIN):
                raise EnclaveError(
                    "sealed blob is not a signing key (wrong seal domain)"
                )
            secret_bytes = plaintext[len(_SEAL_KEY_DOMAIN) :]
            private = PrivateKey(int.from_bytes(secret_bytes, "big"))
            self._keypair = KeyPair(private, private.public_key())
        else:
            self._keypair = generate_keypair(self._key_seed)
        return self._keypair.public.to_bytes()

    def seal_signing_key(self) -> bytes:
        """Export ``sk_enc`` sealed to this enclave's identity."""
        from repro.sgx.sealing import seal

        return seal(
            self._platform,
            self.self_measurement,
            _SEAL_KEY_DOMAIN + self._keypair.private.secret.to_bytes(32, "big"),
        )

    def seal_checkpoint(self, payload: bytes) -> bytes:
        """Seal a recovery checkpoint to this enclave's identity.

        The payload is untrusted CI state (see
        :mod:`repro.core.recovery`); sealing does not make it *true*, it
        makes it *tamper-evident* — only this program on this platform
        can produce or reopen the blob, so a checkpoint modified on disk
        fails the MAC instead of being replayed.
        """
        from repro.sgx.sealing import seal

        if not isinstance(payload, bytes):
            raise EnclaveError("seal_checkpoint takes a bytes payload")
        return seal(
            self._platform, self.self_measurement, _SEAL_CKPT_DOMAIN + payload
        )

    def unseal_checkpoint(self, sealed: bytes) -> bytes:
        """Reopen a checkpoint sealed by :meth:`seal_checkpoint`."""
        from repro.sgx.sealing import unseal

        plaintext = unseal(self._platform, self.self_measurement, sealed)
        if not plaintext.startswith(_SEAL_CKPT_DOMAIN):
            raise EnclaveError(
                "sealed blob is not a checkpoint (wrong seal domain)"
            )
        return plaintext[len(_SEAL_CKPT_DOMAIN) :]

    # -- ecall: block certificate (Alg. 2) ------------------------------------

    def sig_gen(
        self,
        blk_prev: Block,
        cert_prev: Certificate | None,
        blk_new: Block,
        update_proof: UpdateProof,
    ) -> Signature:
        """``ecall_sig_gen``: returns the signature for ``H(hdr_new)``."""
        if blk_prev.header.height == 0:
            if blk_prev.header.header_hash() != self._genesis_digest:
                raise CertificateError("previous block is not the genesis block")
        else:
            if cert_prev is None:
                raise CertificateError("non-genesis previous block needs a certificate")
            self.cert_verify_t(block_digest(blk_prev.header), cert_prev)
        write_set = self.blk_verify_t(blk_prev, blk_new, update_proof)
        self._remember(blk_new, write_set)
        return sign(
            self._keypair.private, block_digest(blk_new.header), CERT_SIG_DOMAIN
        )

    # -- ecall: batched block + index certificates ------------------------------

    def sig_gen_batch(
        self,
        blk_prev: Block,
        cert_prev: Certificate | None,
        index_anchor_certs: dict[str, Certificate | None],
        items: tuple[BatchItem, ...],
        evict_keys: tuple[bytes, ...] = (),
    ) -> tuple[tuple[Signature, dict[str, Signature]], ...]:
        """Certify a run of K blocks (and their index updates) in ONE ecall.

        Trust anchors exactly like the sequential path: the previous
        block's certificate (or the hard-coded genesis) and, per index,
        the previous index certificate (or the genesis index root).
        *Inside* the batch no certificate is verified — the enclave just
        verified block ``i`` itself, so block ``i+1`` chains on that
        in-enclave fact instead of a signature, and each index update
        must chain root-to-root.  Every block is verified by the same
        full replay as ``sig_gen`` (``blk_verify_t``'s checks), so the
        signatures — and hence the certificates — are byte-identical to
        the sequential path's (deterministic RFC-6979 signing).

        Update proofs may omit keys covered by the *carried slice*: the
        verified partial-SMT state the enclave keeps from the previous
        batch (valid only if its state root still matches).  ``evict_keys``
        is the CI's untrusted cache-eviction hint, applied after the
        batch; a wrong hint can only cause a missing-proof abort later.
        """
        if not items:
            raise CertificateError("empty certification batch")
        if blk_prev.header.height == 0:
            if blk_prev.header.header_hash() != self._genesis_digest:
                raise CertificateError("previous block is not the genesis block")
        else:
            if cert_prev is None:
                raise CertificateError("non-genesis previous block needs a certificate")
            self.cert_verify_t(block_digest(blk_prev.header), cert_prev)

        # Anchor each index chain at the first item's previous root.
        index_names = set(items[0].index_updates)
        index_roots: dict[str, Digest] = {}
        for name in sorted(index_names):
            spec = self._spec(name)
            prev_root = items[0].index_updates[name].prev_root
            if blk_prev.header.height == 0:
                if prev_root != spec.genesis_root():
                    raise CertificateError(
                        "previous index root is not the genesis root"
                    )
            else:
                anchor = index_anchor_certs.get(name)
                if anchor is None:
                    raise CertificateError("previous index certificate missing")
                self.cert_verify_t(index_digest(blk_prev.header, prev_root), anchor)
            index_roots[name] = prev_root

        # Resume the carried proof slice only if it still matches the
        # chain tip we are anchored on; otherwise start fresh.
        slice_ = self._carried_slice
        if slice_ is not None and self._carried_root != blk_prev.header.state_root:
            slice_ = None
        # A failed batch can leave the local slice partially updated;
        # never let that survive into a later call.
        self._carried_slice = None

        signatures: list[tuple[Signature, dict[str, Signature]]] = []
        prev = blk_prev
        for item in items:
            block = item.block
            write_set, slice_ = self._batch_blk_verify(
                prev, block, item.update_proof, slice_
            )
            self._remember(block, write_set)
            sig = sign(
                self._keypair.private, block_digest(block.header), CERT_SIG_DOMAIN
            )
            if set(item.index_updates) != index_names:
                raise CertificateError("index set changed mid-batch")
            index_sigs: dict[str, Signature] = {}
            for name in sorted(index_names):
                update = item.index_updates[name]
                if update.prev_root != index_roots[name]:
                    raise CertificateError(
                        "index update does not chain on the previous root"
                    )
                self._verify_index_update(
                    self._spec(name),
                    block,
                    write_set,
                    update.prev_root,
                    update.new_root,
                    update.proof,
                )
                index_roots[name] = update.new_root
                index_sigs[name] = sign(
                    self._keypair.private,
                    index_digest(block.header, update.new_root),
                    CERT_SIG_DOMAIN,
                )
            signatures.append((sig, index_sigs))
            prev = block

        # Apply the (untrusted) eviction hints and carry the slice into
        # the next batch.
        if slice_ is not None:
            slice_.forget(evict_keys)
            if len(slice_) == 0 or len(slice_) > _CARRIED_SLICE_CAP:
                slice_ = None
        self._carried_slice = slice_
        self._carried_root = prev.header.state_root
        return tuple(signatures)

    def _batch_blk_verify(
        self, blk_prev: Block, blk_new: Block, update_proof: UpdateProof, slice_
    ):
        """``blk_verify_t`` against the carried slice; returns
        ``(write set, slice)`` with the slice advanced to the new root."""
        prev_header, header = blk_prev.header, blk_new.header
        if header.prev_hash != prev_header.header_hash():
            raise CertificateError("H_{i-1} does not match the previous header")
        if header.height != prev_header.height + 1:
            raise CertificateError("block height is not prev + 1")
        if not self._pow.check(header):
            raise CertificateError("consensus proof invalid")
        if not blk_new.check_tx_root():
            raise CertificateError("H_tx does not commit to the transactions")
        from repro.merkle.partial import PartialSMT

        # Merge the shipped proofs (cache misses) into the slice; every
        # proof verifies against the previous state root, and any
        # disagreement with already-verified nodes raises.
        for key, value, proof in update_proof.entries:
            if slice_ is None:
                slice_ = PartialSMT(proof.depth)
            slice_.merge_entry(prev_header.state_root, key, value, proof)
        backing = slice_ if slice_ is not None else _NO_STATE
        result = self._executor.execute(
            backing, list(blk_new.transactions), strict=True
        )
        if result.write_set:
            if slice_ is None:
                raise CertificateError("write set has no covering update proof")
            slice_.update_batch(result.write_set)
        new_root = slice_.root if slice_ is not None else prev_header.state_root
        if new_root != header.state_root:
            raise CertificateError("state root mismatch after replay")
        return result.write_set, slice_

    def sig_gen_lazy(
        self,
        blk_prev: Block,
        cert_prev: Certificate | None,
        blk_new: Block,
    ) -> Signature:
        """Alternative to :meth:`sig_gen`: fetch state proofs on demand.

        Instead of one Ecall carrying the whole update proof, the
        enclave *Ocalls* the untrusted host for each touched cell's
        (value, proof) pair, verifying every response against the
        previous state root.  Security is identical (every fetched proof
        is checked); the cost profile is the §2.2 trade-off — 2 extra
        transitions per touched cell — which the Ecall-batching ablation
        benchmark measures against the eager design.
        """
        if blk_prev.header.height == 0:
            if blk_prev.header.header_hash() != self._genesis_digest:
                raise CertificateError("previous block is not the genesis block")
        else:
            if cert_prev is None:
                raise CertificateError("non-genesis previous block needs a certificate")
            self.cert_verify_t(block_digest(blk_prev.header), cert_prev)

        prev_header, header = blk_prev.header, blk_new.header
        if header.prev_hash != prev_header.header_hash():
            raise CertificateError("H_{i-1} does not match the previous header")
        if header.height != prev_header.height + 1:
            raise CertificateError("block height is not prev + 1")
        if not self._pow.check(header):
            raise CertificateError("consensus proof invalid")
        if not blk_new.check_tx_root():
            raise CertificateError("H_tx does not commit to the transactions")

        from repro.merkle.partial import PartialSMT

        state_root = prev_header.state_root
        partial: PartialSMT | None = None
        program = self

        class _LazyBacking:
            def get_raw(self, key: bytes) -> bytes | None:
                nonlocal partial
                if partial is not None and partial.covers(key):
                    return partial.get(key)
                value, proof = program.ocall("fetch_state_proof", key)
                if partial is None:
                    partial = PartialSMT(proof.depth)
                partial.merge_entry(state_root, key, value, proof)
                return value

        backing = _LazyBacking()
        result = self._executor.execute(
            backing, list(blk_new.transactions), strict=True
        )
        # Cover write-only keys, then commit and check the new root.
        for key in result.write_set:
            backing.get_raw(key)
        if result.write_set:
            assert partial is not None
            partial.update_batch(result.write_set)
        new_root = partial.root if partial is not None else state_root
        if new_root != header.state_root:
            raise CertificateError("state root mismatch after replay")
        self._remember(blk_new, result.write_set)
        return sign(
            self._keypair.private, block_digest(blk_new.header), CERT_SIG_DOMAIN
        )

    # -- ecall: augmented certificate (Alg. 4) --------------------------------

    def augmented_sig_gen(
        self,
        blk_prev: Block,
        cert_prev_idx: Certificate | None,
        prev_index_root: Digest,
        blk_new: Block,
        new_index_root: Digest,
        update_proof: UpdateProof,
        index_proof,
        spec_name: str,
    ) -> Signature:
        """One ecall certifying the block *and* one index update."""
        spec = self._spec(spec_name)
        if blk_prev.header.height == 0:
            # Alg. 4 only asserts the genesis index root; we also pin the
            # genesis block digest (as Alg. 5 does) — without it a forged
            # "genesis" would bootstrap a parallel certified chain.
            if blk_prev.header.header_hash() != self._genesis_digest:
                raise CertificateError("previous block is not the genesis block")
            if prev_index_root != spec.genesis_root():
                raise CertificateError("previous index root is not the genesis root")
        else:
            if cert_prev_idx is None:
                raise CertificateError("previous index certificate missing")
            self.cert_verify_t(
                index_digest(blk_prev.header, prev_index_root), cert_prev_idx
            )
        write_set = self.blk_verify_t(blk_prev, blk_new, update_proof)
        self._verify_index_update(
            spec, blk_new, write_set, prev_index_root, new_index_root, index_proof
        )
        return sign(
            self._keypair.private,
            index_digest(blk_new.header, new_index_root),
            CERT_SIG_DOMAIN,
        )

    # -- ecall: hierarchical index certificate (Alg. 5 loop body) -------------

    def index_sig_gen(
        self,
        blk_prev_header: BlockHeader,
        prev_index_root: Digest,
        cert_prev_idx: Certificate | None,
        blk_new_header: BlockHeader,
        cert_new_block: Certificate,
        new_index_root: Digest,
        index_proof,
        spec_name: str,
    ) -> Signature:
        """Certify one index update against an existing block certificate.

        The block itself is *not* replayed — ``cert_new_block`` vouches
        for it (Alg. 5 line 10); the write set comes from the enclave's
        cache of its own recent ``sig_gen`` replays.
        """
        spec = self._spec(spec_name)
        if blk_prev_header.height == 0:
            if blk_prev_header.header_hash() != self._genesis_digest:
                raise CertificateError("previous block is not the genesis block")
            if prev_index_root != spec.genesis_root():
                raise CertificateError("previous index root is not the genesis root")
        else:
            if cert_prev_idx is None:
                raise CertificateError("previous index certificate missing")
            self.cert_verify_t(
                index_digest(blk_prev_header, prev_index_root), cert_prev_idx
            )
        self.cert_verify_t(block_digest(blk_new_header), cert_new_block)
        cached = self._recent.get(blk_new_header.header_hash())
        if cached is None:
            raise EnclaveError(
                "hierarchical index certification needs the block's write set; "
                "run sig_gen for this block on this enclave first"
            )
        block, write_set = cached
        self._verify_index_update(
            spec, block, write_set, prev_index_root, new_index_root, index_proof
        )
        return sign(
            self._keypair.private,
            index_digest(blk_new_header, new_index_root),
            CERT_SIG_DOMAIN,
        )

    # -- trusted helpers (Alg. 2 lines 10-32) ----------------------------------

    def blk_verify_t(
        self, blk_prev: Block, blk_new: Block, update_proof: UpdateProof
    ) -> dict[bytes, bytes | None]:
        """Verify ``blk_new``'s full validity; returns its write set."""
        prev_header, header = blk_prev.header, blk_new.header
        if header.prev_hash != prev_header.header_hash():
            raise CertificateError("H_{i-1} does not match the previous header")
        if header.height != prev_header.height + 1:
            raise CertificateError("block height is not prev + 1")
        if not self._pow.check(header):
            raise CertificateError("consensus proof invalid")
        if not blk_new.check_tx_root():
            raise CertificateError("H_tx does not commit to the transactions")
        # Verify the read set and rebuild the proven state slice
        # (verify_mht of Alg. 2 line 17; raises ProofError on forgery).
        # Blocks that touch no state (e.g. all-DoNothing blocks) come
        # with an empty proof; any read or write then fails below.
        partial = (
            update_proof.open(prev_header.state_root)
            if update_proof.entries
            else None
        )
        # Replay every transaction (lines 18-21); signature checks are
        # line 19's verify(tx).  Reads outside the proven slice raise.
        result = self._executor.execute(
            partial if partial is not None else _NO_STATE,
            list(blk_new.transactions),
            strict=True,
        )
        # Commit the write set and check the new root (lines 22-23).
        if result.write_set:
            if partial is None:
                raise CertificateError("write set has no covering update proof")
            partial.update_batch(result.write_set)
        new_root = partial.root if partial is not None else prev_header.state_root
        if new_root != header.state_root:
            raise CertificateError("state root mismatch after replay")
        return result.write_set

    def cert_verify_t(self, expected_dig: Digest, cert: Certificate) -> None:
        """Verify a certificate (Alg. 2 lines 25-32); raises on failure."""
        if not cert.report.verify(self._ias_public_key):
            raise CertificateError("attestation report is not signed by the IAS")
        if cert.report.measurement != self.self_measurement:
            raise CertificateError("certificate from a different enclave program")
        if cert.pk_enc.to_bytes() != cert.report.report_data:
            raise CertificateError("pk_enc does not match the attestation report")
        if not verify(cert.pk_enc, cert.dig, cert.sig, CERT_SIG_DOMAIN):
            raise CertificateError("certificate signature invalid")
        if cert.dig != expected_dig:
            raise CertificateError("certificate digest does not match the block")

    # -- internals -------------------------------------------------------------

    def _spec(self, name: str) -> AuthenticatedIndexSpec:
        spec = self._index_specs.get(name)
        if spec is None:
            raise EnclaveError(f"enclave has no index spec {name!r}")
        return spec

    def _verify_index_update(
        self,
        spec: AuthenticatedIndexSpec,
        block: Block,
        write_set: dict[bytes, bytes | None],
        prev_root: Digest,
        new_root: Digest,
        index_proof,
    ) -> None:
        """Alg. 4 lines 8-10: derive writes, verify, recompute the root."""
        writes = spec.write_data(block, write_set)
        computed = spec.apply_writes(prev_root, writes, index_proof)
        if computed != new_root:
            raise CertificateError("index root mismatch after applying writes")

    def _remember(self, block: Block, write_set: dict[bytes, bytes | None]) -> None:
        self._recent[block.header.header_hash()] = (block, write_set)
        while len(self._recent) > _WRITE_SET_CACHE:
            self._recent.pop(next(iter(self._recent)))
