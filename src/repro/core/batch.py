"""Shared types for the batched certification path.

These are the objects that cross the Ecall boundary for
``DCertEnclaveProgram.sig_gen_batch``: a :class:`BatchItem` per block
(its pruned update proof plus one :class:`IndexUpdate` per
authenticated index).  They live in their own module so both sides of
the boundary — the untrusted issuer (:mod:`repro.core.issuer`) and the
trusted program (:mod:`repro.core.enclave_program`) — can import them
without a cycle, and so they stay plain wire-safe dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import Block
from repro.core.updateproof import UpdateProof
from repro.crypto.hashing import Digest


@dataclass(frozen=True, slots=True)
class IndexUpdate:
    """One authenticated index's per-block update, ready to certify."""

    prev_root: Digest
    new_root: Digest
    proof: object  # the index-specific update proof dataclass

    def size_bytes(self) -> int:
        return len(self.prev_root) + len(self.new_root) + self.proof.size_bytes()


@dataclass(frozen=True, slots=True)
class BatchItem:
    """Everything the enclave needs to certify one block of a batch.

    ``update_proof`` covers only the touched keys the enclave's carried
    slice does *not* already prove (the proof-cache misses); a fresh
    enclave (or one whose slice was invalidated) simply receives full
    proofs because the CI-side mirror starts empty too.
    """

    block: Block
    update_proof: UpdateProof
    index_updates: dict[str, IndexUpdate] = field(default_factory=dict)

    def payload_bytes(self) -> int:
        """Marshalled size of this item (per-block EPC working set)."""
        return self.update_proof.size_bytes() + sum(
            update.size_bytes() for update in self.index_updates.values()
        )
