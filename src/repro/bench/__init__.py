"""Benchmark support: parameters, workload generation, measurement.

Everything the per-figure benchmarks under ``benchmarks/`` share:

* :mod:`params` — the experiment parameters (the paper's Table 1),
  with a scale knob so the suite runs both in CI minutes and at larger
  laboratory sizes.
* :mod:`workloadgen` — Blockbench transaction generators: deterministic
  accounts, pre-seeded contracts, per-workload transaction factories.
* :mod:`harness` — chain builders that certify as they grow and return
  per-block timing breakdowns (outside-enclave pre-processing vs
  in-enclave certification — the Fig. 8/9 split).
* :mod:`reporting` — plain-text table output mirroring the paper's
  figures, so bench runs read like the evaluation section.
"""

from repro.bench.params import BenchParams, load_params
from repro.bench.workloadgen import WorkloadGenerator
from repro.bench.harness import CertTimings, CertifiedChainHarness
from repro.bench.reporting import bench_record, print_series, print_table

__all__ = [
    "BenchParams",
    "CertTimings",
    "CertifiedChainHarness",
    "WorkloadGenerator",
    "bench_record",
    "load_params",
    "print_series",
    "print_table",
]
