"""Experiment parameters — the reproduction's Table 1.

The paper's Table 1 lists the system parameters with defaults in bold;
its own text fixes the headline scales (500 deployed contracts, 100k
blocks and 100k sender accounts for certification runs; 500 key-value
tuples and 10k blocks for query runs).  Those scales assume a Rust
prototype; a pure-Python substrate reproduces the same *shapes* at
proportionally smaller sizes, so parameters here come in two profiles:

* ``quick`` (default) — minutes on a laptop, used by ``pytest
  benchmarks/``;
* ``full``  — closer to the paper's scales, selected with
  ``REPRO_BENCH_SCALE=full``.

EXPERIMENTS.md records which profile produced each reported number.
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class BenchParams:
    """One benchmark profile (all figures read from this)."""

    name: str

    # Shared chain settings.
    difficulty_bits: int = 4
    state_depth: int = 64

    # Fig. 7: bootstrapping sweep (chain lengths at which we measure).
    bootstrap_chain_lengths: tuple[int, ...] = (200, 500, 1000, 2000)
    bootstrap_block_size: int = 2

    # Fig. 8: per-workload certificate construction.
    workloads: tuple[str, ...] = ("DN", "CPU", "IO", "KV", "SB")
    cert_blocks: int = 10  # blocks measured per workload
    default_block_size: int = 16  # transactions per block
    num_accounts: int = 64  # sender accounts (paper: 100k)
    num_contract_instances: int = 8  # logical contract partitions (paper: 500)
    cpu_sort_size: int = 256  # CPUHeavy array length per tx
    io_ops_per_tx: int = 10  # IOHeavy cells touched per tx

    # Fig. 9: block-size sweep for KV and SB.
    block_sizes: tuple[int, ...] = (4, 8, 16, 32, 64)

    # Fig. 10: number of authenticated indexes.
    index_counts: tuple[int, ...] = (1, 2, 4, 6, 8)
    multi_index_blocks: int = 6

    # Fig. 11: verifiable queries.
    query_tuples: int = 50  # key-value tuples (paper: 500)
    query_blocks: int = 300  # chain length (paper: 10k)
    query_window_blocks: int = 20  # |t_to - t_from|
    window_distances: tuple[float, ...] = (0.05, 0.25, 0.5, 0.75)
    # ... as fractions of the chain length, measured back from the tip.
    queries_per_point: int = 10


_PROFILES: dict[str, BenchParams] = {
    "quick": BenchParams(name="quick"),
    "full": BenchParams(
        name="full",
        bootstrap_chain_lengths=(1000, 2000, 5000, 10000),
        cert_blocks=30,
        default_block_size=32,
        num_accounts=512,
        num_contract_instances=64,
        block_sizes=(8, 16, 32, 64, 128),
        multi_index_blocks=12,
        query_tuples=200,
        query_blocks=1500,
        query_window_blocks=50,
        queries_per_point=20,
    ),
}


def load_params() -> BenchParams:
    """The active profile, selected by ``REPRO_BENCH_SCALE``."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in _PROFILES:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE {scale!r}; use one of {sorted(_PROFILES)}"
        )
    return _PROFILES[scale]
