"""Blockbench transaction generators.

Deterministic sender accounts (seeded keypairs), per-workload
transaction factories matching §7.2's setup: smart contracts are
pre-deployed (we partition each contract's keyspace into
``num_contract_instances`` logical instances, mirroring the paper's 500
deployed contract copies), then invoked continuously.
"""

from __future__ import annotations

import random

from repro.bench.params import BenchParams
from repro.chain.transaction import Transaction, sign_transaction
from repro.crypto import KeyPair, generate_keypair


class WorkloadGenerator:
    """Generates signed Blockbench transactions deterministically."""

    def __init__(self, params: BenchParams, seed: int = 42) -> None:
        self.params = params
        self._rng = random.Random(seed)
        self._accounts: list[KeyPair] = [
            generate_keypair(b"bench-account-%d" % index)
            for index in range(params.num_accounts)
        ]
        self._nonce = 0

    def _next_sender(self) -> KeyPair:
        return self._rng.choice(self._accounts)

    def _sign(self, contract: str, method: str, args: tuple[str, ...]) -> Transaction:
        sender = self._next_sender()
        tx = sign_transaction(sender.private, self._nonce, contract, method, args)
        self._nonce += 1
        return tx

    def _instance(self) -> int:
        return self._rng.randrange(self.params.num_contract_instances)

    # -- per-workload factories ---------------------------------------------

    def donothing_tx(self) -> Transaction:
        return self._sign("donothing", "invoke", ())

    def cpuheavy_tx(self) -> Transaction:
        return self._sign(
            "cpuheavy",
            "sort",
            (str(self.params.cpu_sort_size), str(self._rng.randrange(1 << 30))),
        )

    def ioheavy_tx(self) -> Transaction:
        method = self._rng.choice(["write", "scan", "mixed"])
        seed = self._instance() * 1000 + self._rng.randrange(100)
        return self._sign("ioheavy", method, (str(self.params.io_ops_per_tx), str(seed)))

    def kvstore_tx(self) -> Transaction:
        key = f"i{self._instance()}:k{self._rng.randrange(self.params.query_tuples)}"
        roll = self._rng.random()
        if roll < 0.8:
            return self._sign("kvstore", "put", (key, f"v{self._rng.randrange(1 << 20)}"))
        if roll < 0.95:
            return self._sign("kvstore", "get", (key,))
        return self._sign("kvstore", "delete", (key,))

    def smallbank_tx(self) -> Transaction:
        account = f"a{self._rng.randrange(self.params.num_accounts)}"
        other = f"a{self._rng.randrange(self.params.num_accounts)}"
        op = self._rng.choice(
            [
                "deposit_checking",
                "transact_savings",
                "send_payment",
                "write_check",
                "amalgamate",
            ]
        )
        if op == "send_payment":
            return self._sign("smallbank", op, (account, other, "1"))
        if op == "amalgamate":
            return self._sign("smallbank", op, (account, other))
        if op == "transact_savings":
            return self._sign("smallbank", op, (account, "1"))
        return self._sign("smallbank", op, (account, str(self._rng.randrange(1, 10))))

    def smallbank_setup_txs(self) -> list[Transaction]:
        """``create`` transactions opening every SmallBank account."""
        return [
            self._sign("smallbank", "create", (f"a{index}", "1000", "1000"))
            for index in range(self.params.num_accounts)
        ]

    def block_txs(self, workload: str, block_size: int) -> list[Transaction]:
        """One block's worth of transactions for a Blockbench workload."""
        factory = {
            "DN": self.donothing_tx,
            "CPU": self.cpuheavy_tx,
            "IO": self.ioheavy_tx,
            "KV": self.kvstore_tx,
            "SB": self.smallbank_tx,
        }[workload]
        return [factory() for _ in range(block_size)]

    def history_update_tx(self, account_index: int) -> Transaction:
        """A KVStore put targeting a fixed account (Fig. 11 workload)."""
        key = f"acct{account_index}"
        return self._sign(
            "kvstore", "put", (key, f"v{self._nonce}")
        )

    def keyword_tx(self, vocabulary: list[str], keywords_per_tx: int = 3) -> Transaction:
        """A transaction whose args carry searchable keywords."""
        chosen = self._rng.sample(vocabulary, min(keywords_per_tx, len(vocabulary)))
        return self._sign("kvstore", "put", (f"doc{self._nonce}", " ".join(chosen)))
