"""Plain-text reporting in the shape of the paper's figures.

Benchmarks print their regenerated series through these helpers so a
``pytest benchmarks/ --benchmark-only`` run reads like the evaluation
section: one table per figure, same axes, same units.
"""

from __future__ import annotations

import json
import os
from typing import Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def print_table(
    title: str, columns: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Print one aligned table with a figure-style title."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in formatted))
        if formatted
        else len(str(column))
        for i, column in enumerate(columns)
    ]
    print()
    print(f"== {title} ==")
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    print(header)
    print("-" * len(header))
    for row in formatted:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))


def bench_record(name: str, data: dict) -> dict:
    """Package one benchmark result, attaching the live metrics snapshot.

    When observability is on (:func:`repro.obs.enabled`) the record
    carries the registry snapshot next to the figure data, so a bench
    run doubles as a metrics capture.  Set ``REPRO_BENCH_OUT`` to a
    directory to also persist the record as ``<name>.json``.
    """
    from repro import obs

    record: dict = {"name": name, "data": data}
    if obs.enabled():
        record["metrics"] = obs.snapshot()
    out_dir = os.environ.get("REPRO_BENCH_OUT", "")
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
    return record


def print_series(title: str, x_label: str, series: dict[str, dict[object, object]]) -> None:
    """Print multiple named series sharing an x axis (a line plot as text)."""
    x_values: list[object] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    columns = [x_label] + list(series)
    rows = [
        [x] + [series[name].get(x, "-") for name in series] for x in x_values
    ]
    print_table(title, columns, rows)
