"""Measurement harness: grow chains and certify them with timing splits.

The central object is :class:`CertifiedChainHarness`: it owns a miner
(producing blocks from a workload generator) and a CI (certifying each
block), and records for every certified block the breakdown the paper's
Fig. 8/9 plot:

* ``outside_s`` — untrusted pre-processing (block re-execution,
  read/write sets, Merkle proof generation; Alg. 1 lines 2-3),
* ``inside_s`` — trusted in-enclave work (Alg. 2), and
* ``enclave_overhead_s`` — the modeled enclave surcharge (transitions,
  slowdown, paging) on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.params import BenchParams
from repro.bench.workloadgen import WorkloadGenerator
from repro.chain.builder import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core.issuer import CertificateIssuer
from repro.obs.wallclock import elapsed_s, now_s
from repro.query.indexes import AuthenticatedIndexSpec
from repro.sgx.attestation import AttestationService


@dataclass(slots=True)
class CertTimings:
    """Per-block certificate construction breakdown (seconds)."""

    total_s: float
    outside_s: float
    inside_s: float
    enclave_overhead_s: float
    update_proof_bytes: int
    ecalls: int


def fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


class CertifiedChainHarness:
    """Build-and-certify pipeline with per-block measurements."""

    def __init__(
        self,
        params: BenchParams,
        *,
        index_specs: list[AuthenticatedIndexSpec] | None = None,
        seed: int = 42,
        network: str = "bench-net",
        proof_cache_entries: int = 0,
    ) -> None:
        self.params = params
        self.generator = WorkloadGenerator(params, seed=seed)
        self.builder = ChainBuilder(
            difficulty_bits=params.difficulty_bits,
            state_depth=params.state_depth,
            network=network,
        )
        genesis, state = make_genesis(
            network=network, state_depth=params.state_depth
        )
        self.ias = AttestationService(seed=b"bench-ias")
        self.issuer = CertificateIssuer(
            genesis,
            state,
            fresh_vm(),
            self.builder.pow,
            index_specs=index_specs or [],
            ias=self.ias,
            key_seed=b"bench-enclave",
            proof_cache_entries=proof_cache_entries,
        )
        self.timings: list[CertTimings] = []
        self.pipeline = None

    def setup_smallbank(self) -> None:
        """Open all SmallBank accounts (one setup block)."""
        self.add_and_certify(self.generator.smallbank_setup_txs())

    def grow_workload(
        self,
        workload: str,
        num_blocks: int,
        block_size: int,
        *,
        schemes: tuple[str, ...] = ("hierarchical",),
    ) -> None:
        """Mine and certify ``num_blocks`` blocks of one workload."""
        for _ in range(num_blocks):
            self.add_and_certify(
                self.generator.block_txs(workload, block_size), schemes=schemes
            )

    def grow_workload_batched(
        self,
        workload: str,
        num_blocks: int,
        block_size: int,
        *,
        batch_size: int = 8,
    ) -> None:
        """Mine ``num_blocks`` blocks and certify them through the
        batched pipeline (``batch_size`` blocks per ecall); timing lives
        in ``self.pipeline.stats`` rather than per-block splits."""
        from repro.core.pipeline import CertificationPipeline

        if self.pipeline is None or self.pipeline.batch_size != batch_size:
            self.pipeline = CertificationPipeline(
                self.issuer, batch_size=batch_size
            )
        for _ in range(num_blocks):
            block, _ = self.builder.add_block(
                self.generator.block_txs(workload, block_size)
            )
            self.pipeline.submit(block)
        self.pipeline.flush()

    def add_and_certify(
        self,
        transactions,
        *,
        schemes: tuple[str, ...] = ("hierarchical",),
    ) -> CertTimings:
        """Mine one block, certify it, and record the timing split."""
        block, _ = self.builder.add_block(transactions)
        ledger_before = self.issuer.enclave.ledger.snapshot()

        # Outside-enclave pre-processing (Alg. 1 lines 2-3), measured
        # separately so Fig. 8's breakdown is a real measurement rather
        # than a subtraction.
        started = now_s()
        result, update_proof = self.issuer.preprocess(block)
        outside_s = elapsed_s(started)

        started = now_s()
        self.issuer.process_block(
            block, schemes=schemes, precomputed=(result, update_proof)
        )
        total_s = outside_s + elapsed_s(started)

        ledger = self.issuer.enclave.ledger
        timings = CertTimings(
            total_s=total_s,
            outside_s=outside_s,
            inside_s=ledger.in_enclave_s - ledger_before.in_enclave_s,
            enclave_overhead_s=(
                ledger.total_overhead_s() - ledger_before.total_overhead_s()
            ),
            update_proof_bytes=update_proof.size_bytes(),
            ecalls=ledger.ecalls - ledger_before.ecalls,
        )
        self.timings.append(timings)
        return timings

    # -- summaries ------------------------------------------------------------

    def record(self, name: str, *, skip: int = 0) -> dict:
        """The mean timing split as a :func:`bench_record` — carries the
        metrics-registry snapshot when observability is on."""
        from dataclasses import asdict

        from repro.bench.reporting import bench_record

        return bench_record(name, asdict(self.mean_timing(skip=skip)))

    def mean_timing(self, skip: int = 0) -> CertTimings:
        """Mean of recorded timings (optionally skipping warmup blocks)."""
        samples = self.timings[skip:]
        count = max(1, len(samples))
        return CertTimings(
            total_s=sum(t.total_s for t in samples) / count,
            outside_s=sum(t.outside_s for t in samples) / count,
            inside_s=sum(t.inside_s for t in samples) / count,
            enclave_overhead_s=sum(t.enclave_overhead_s for t in samples) / count,
            update_proof_bytes=int(
                sum(t.update_proof_bytes for t in samples) / count
            ),
            ecalls=int(sum(t.ecalls for t in samples) / count),
        )
