"""VER01/ERR01/BND01 — the trust, taxonomy, and bounded-state contracts.

* **VER01** — *no unverified adoption*.  In the trust-critical modules
  (the superlight client and the gateway's replica-switch path), any
  write to a trusted-state attribute (``latest_header``, certified
  roots, the gateway's current replica) and any verified-answer-cache
  admit must be **dominated by a verification call** in the same
  function body.  The dominance check is the cheap approximation —
  "some ``verify*``/``validate*``/``_check_certificate`` call appears
  earlier in this function" — which catches the realistic failure
  (a new code path that adopts first and verifies never) while staying
  a pure AST pass.  The rare verified-elsewhere site carries a
  justified inline suppression, which doubles as documentation.

* **ERR01** — *typed error taxonomy*.  Every class in ``errors.py``
  under :class:`~repro.errors.ReproError` must declare its **own**
  stable wire ``code`` (so ``code_for``/``error_for_code`` round-trip
  it exactly), codes must be unique, and library ``raise`` sites must
  use taxonomy members — never the bare base class, never an
  unregistered ``*Error`` — so a failure always crosses the wire as a
  typed, retryability-classified member.

* **BND01** — *bounded client/network state*.  Growable containers
  (``dict``/``list``/``set``/``deque``) assigned empty in ``__init__``
  of the long-lived network and client classes must show eviction
  evidence somewhere in their module (a ``pop``/``popitem``/
  ``popleft``/``clear``/``discard``/``remove``/``del`` on that
  attribute, or a ``deque(maxlen=...)`` bound) — the paper's
  constant-client-state claim, generalized to every process that
  serves millions of requests.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.context import (
    Checker,
    ModuleContext,
    Project,
    dotted_name,
    enclosing_functions,
)
from repro.analysis.findings import Finding

# -- VER01 --------------------------------------------------------------------

#: module -> trusted-state attribute names whose writes need a
#: dominating verification call.
TRUST_SCOPES: dict[str, frozenset[str]] = {
    "repro.core.superlight": frozenset(
        {"latest_header", "latest_certificate", "_tip",
         "_index_roots", "_index_certs"}
    ),
    "repro.net.gateway": frozenset({"current", "_tip"}),
}

#: Call names (last dotted segment) that count as verification.
_VERIFIER_EXACT = frozenset(
    {"_check_certificate", "_adopt_announcement", "_ensure_verified"}
)


def _is_verifier(name: str) -> bool:
    last = name.rsplit(".", 1)[-1]
    return (
        last.startswith("verify")
        or last.startswith("validate")
        or last in _VERIFIER_EXACT
    )


def _is_cache_admit(name: str) -> bool:
    """``...cache....put(...)`` — admitting an answer into the
    verified-answer cache."""
    parts = name.split(".")
    return parts[-1] == "put" and any("cache" in part for part in parts[:-1])


class AdoptionChecker(Checker):
    rule = "VER01"
    title = "trusted-state write not dominated by verification"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        trusted = TRUST_SCOPES.get(ctx.module)
        if trusted is None:
            return
        owner = enclosing_functions(ctx.tree)
        verifier_lines = self._verifier_lines_by_function(ctx.tree, owner)
        for node, description in self._trusted_writes(ctx.tree, trusted):
            function = owner.get(node)
            if function is not None and function.name == "__init__":
                continue  # declaring empty state is not adoption
            dominated = any(
                line <= node.lineno
                for line in verifier_lines.get(function, ())
            )
            if not dominated:
                yield Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=node.lineno,
                    message=(
                        f"{description} without a dominating "
                        "verification call in this function"
                    ),
                    hint=(
                        "call verify_*/validate_*/_check_certificate on "
                        "the material before adopting it, or add a "
                        "justified allow[VER01] if verification "
                        "provably happened on every path here"
                    ),
                )

    @staticmethod
    def _verifier_lines_by_function(tree, owner) -> dict:
        lines: dict = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and _is_verifier(
                dotted_name(node.func)
            ):
                lines.setdefault(owner.get(node), []).append(node.lineno)
        return lines

    @staticmethod
    def _trusted_writes(tree, trusted):
        """(node, description) for every write to a trusted attribute
        and every cache admit."""
        for node in ast.walk(tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = getattr(node, "value", None)
                if isinstance(value, ast.Constant) and value.value is None:
                    continue  # clearing trust is always safe
                for target in targets:
                    attr = _trusted_attr(target, trusted)
                    if attr is not None:
                        yield node, f"write to trusted state .{attr}"
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if _is_cache_admit(name):
                    yield node, f"verified-answer cache admit {name}(...)"

    @staticmethod
    def _find_attr(target, trusted):  # pragma: no cover - alias
        return _trusted_attr(target, trusted)


def _trusted_attr(target: ast.AST, trusted: frozenset[str]) -> str | None:
    """The trusted attribute a write targets, if any.

    Covers ``obj.attr = ...`` and ``obj.attr[key] = ...``.
    """
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) and target.attr in trusted:
        return target.attr
    return None


# -- ERR01 --------------------------------------------------------------------

ERRORS_MODULE = "repro.errors"

#: Exception names raise sites may use without being taxonomy members.
BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError", "AssertionError", "AttributeError",
        "BaseException", "Exception", "FileExistsError",
        "FileNotFoundError", "IOError", "IndexError", "KeyError",
        "LookupError", "MemoryError", "NotImplementedError", "OSError",
        "OverflowError", "PermissionError", "RecursionError",
        "RuntimeError", "StopIteration", "TimeoutError", "TypeError",
        "UnicodeDecodeError", "UnicodeEncodeError", "ValueError",
        "ZeroDivisionError",
    }
)


class TaxonomyChecker(Checker):
    rule = "ERR01"
    title = "error taxonomy registration and typed raise sites"

    def finalize(self, project: Project) -> Iterable[Finding]:
        errors_ctx = project.find(ERRORS_MODULE)
        if errors_ctx is None:
            return
        taxonomy, structural = self._parse_taxonomy(errors_ctx)
        yield from structural
        for ctx in project.library_modules():
            yield from self._check_raises(ctx, taxonomy)

    def _parse_taxonomy(
        self, ctx: ModuleContext
    ) -> tuple[frozenset[str], list[Finding]]:
        """Class names under ReproError, plus structural findings
        (missing own ``code``, duplicate codes)."""
        classes: dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        members: set[str] = set()

        def descends(name: str, seen: frozenset[str] = frozenset()) -> bool:
            if name == "ReproError":
                return True
            node = classes.get(name)
            if node is None or name in seen:
                return False
            return any(
                isinstance(base, ast.Name)
                and descends(base.id, seen | {name})
                for base in node.bases
            )

        findings: list[Finding] = []
        codes: dict[str, str] = {}
        for name, node in classes.items():
            if not descends(name):
                continue
            members.add(name)
            code = self._own_code(node)
            if code is None:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=node.lineno,
                        message=(
                            f"{name} declares no wire code of its own — "
                            "code_for/error_for_code cannot round-trip it"
                        ),
                        hint='add a class-level  code = "<parent>.<leaf>"',
                    )
                )
                continue
            if code in codes:
                findings.append(
                    Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=node.lineno,
                        message=(
                            f"{name} reuses wire code {code!r} already "
                            f"registered by {codes[code]}"
                        ),
                        hint="wire codes must be unique within the taxonomy",
                    )
                )
                continue
            codes[code] = name
        return frozenset(members), findings

    @staticmethod
    def _own_code(node: ast.ClassDef) -> str | None:
        for statement in node.body:
            targets: list[ast.expr] = []
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign) and statement.value:
                targets = [statement.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "code":
                    value = statement.value
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        return value.value
        return None

    def _check_raises(
        self, ctx: ModuleContext, taxonomy: frozenset[str]
    ) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc).rsplit(".", 1)[-1]
            if name == "ReproError":
                yield Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=node.lineno,
                    message=(
                        "raising the bare ReproError base class — the "
                        'failure crosses the wire as the untyped "error" '
                        "code"
                    ),
                    hint=(
                        "raise the most specific taxonomy subclass (add "
                        "one to errors.py with its own code if none fits)"
                    ),
                )
            elif (
                name.endswith("Error")
                and name not in taxonomy
                and name not in BUILTIN_EXCEPTIONS
            ):
                yield Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=node.lineno,
                    message=(
                        f"raising {name}, which is not registered in the "
                        "repro.errors taxonomy"
                    ),
                    hint=(
                        "define it in errors.py as a ReproError subclass "
                        "with a stable wire code"
                    ),
                )


# -- BND01 --------------------------------------------------------------------

#: Long-lived network/client modules whose classes hold per-peer or
#: per-request state for the lifetime of the process.
BOUNDED_SCOPES = frozenset(
    {
        "repro.net.rpc",
        "repro.net.bus",
        "repro.net.pubsub",
        "repro.net.gateway",
        "repro.net.resilience",
        "repro.query.answercache",
        "repro.core.superlight",
    }
)

#: Method calls that count as eviction evidence for an attribute.
EVICTORS = frozenset(
    {"pop", "popitem", "popleft", "clear", "discard", "remove"}
)

#: Zero-argument constructors that build growable containers.
GROWABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "deque", "OrderedDict", "defaultdict", "Counter"}
)


class BoundedStateChecker(Checker):
    rule = "BND01"
    title = "unbounded container on a long-lived class"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.module not in BOUNDED_SCOPES:
            return
        evicted = self._evicted_attributes(ctx.tree)
        for class_node in ctx.tree.body:
            if not isinstance(class_node, ast.ClassDef):
                continue
            init = next(
                (
                    item
                    for item in class_node.body
                    if isinstance(item, ast.FunctionDef)
                    and item.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            for node in ast.walk(init):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                value = node.value
                if value is None or not self._is_growable(value):
                    continue
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    if target.attr in evicted:
                        continue
                    yield Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=node.lineno,
                        message=(
                            f"{class_node.name}.{target.attr} grows "
                            "without eviction evidence in this module"
                        ),
                        hint=(
                            "bound it with a named *_LIMIT constant and "
                            "an eviction sweep (pop/popitem/del), or "
                            "deque(maxlen=...)"
                        ),
                    )

    @staticmethod
    def _is_growable(value: ast.expr) -> bool:
        if isinstance(value, ast.Dict) and not value.keys:
            return True
        if isinstance(value, ast.List) and not value.elts:
            return True
        if isinstance(value, ast.Call):
            name = dotted_name(value.func).rsplit(".", 1)[-1]
            if name not in GROWABLE_CONSTRUCTORS:
                return False
            if value.args:
                return False  # seeded from an existing collection
            if any(kw.arg == "maxlen" for kw in value.keywords):
                return False  # deque(maxlen=...) is bounded by design
            return not value.keywords
        return False

    @staticmethod
    def _evicted_attributes(tree: ast.Module) -> frozenset[str]:
        """Attribute names with eviction evidence anywhere in the module."""
        evicted: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in EVICTORS
                    and isinstance(func.value, ast.Attribute)
                ):
                    evicted.add(func.value.attr)
                # heapq.heappop(self._queue) drains a heap kept as an
                # attribute — eviction, spelled as a free function.
                if (
                    node.args
                    and dotted_name(func).rsplit(".", 1)[-1]
                    in ("heappop", "heappushpop")
                    and isinstance(node.args[0], ast.Attribute)
                ):
                    evicted.add(node.args[0].attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Attribute
                    ):
                        evicted.add(target.value.attr)
        return frozenset(evicted)
