"""``python -m repro.analysis`` — run the invariant linter."""

import sys

from repro.analysis.runner import main

sys.exit(main())
