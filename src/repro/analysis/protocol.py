"""WIRE01/OBS01/CAT01 — the wire, metrics, and fault-catalog contracts.

* **WIRE01** — every ``@dataclass`` wire message in the message modules
  must be declared ``frozen=True`` (a mutable message breaks the
  codec's value-object assumption) and must be referenced by at least
  one test under ``tests/`` (the round-trip suite — a message type
  nobody round-trips is a message type whose codec path has never run).

* **OBS01** — metric names handed to the registry must follow the
  documented ``component.metric`` grammar (lowercase dotted segments of
  ``[a-z0-9_]``, at least two segments).  Dynamic names (f-strings) must
  carry a static grammar-conforming prefix ending at a segment
  boundary, e.g. ``f"rpc.server.handle_ms.{method}"``.

* **CAT01** — every string literal planted at a
  ``crashpoint``/``torn_prefix``/``crash_now`` site must be a member of
  :data:`repro.fault.crashpoints.CATALOG`, and every catalog entry must
  be planted at at least one library site — a cataloged-but-never-
  planted point silently shrinks chaos coverage, which is worse than a
  loud failure.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.context import (
    Checker,
    ModuleContext,
    Project,
    dotted_name,
    str_arg,
)
from repro.analysis.findings import Finding

# -- WIRE01 -------------------------------------------------------------------

#: Modules whose module-level dataclasses are wire messages.
WIRE_MESSAGE_MODULES = frozenset({"repro.net.messages", "repro.net.pubsub"})


class WireMessageChecker(Checker):
    rule = "WIRE01"
    title = "wire message without frozen contract or round-trip test"

    def finalize(self, project: Project) -> Iterable[Finding]:
        test_sources = [ctx.source for ctx in project.test_modules()]
        for ctx in project.library_modules():
            if ctx.module not in WIRE_MESSAGE_MODULES:
                continue
            for node in ctx.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                decorated = self._dataclass_decorator(node)
                if decorated is None:
                    continue
                if not self._is_frozen(decorated):
                    yield Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=node.lineno,
                        message=(
                            f"wire message {node.name} is not "
                            "@dataclass(frozen=True)"
                        ),
                        hint=(
                            "wire messages are value objects; declare "
                            "them frozen (and slotted)"
                        ),
                    )
                pattern = re.compile(rf"\b{re.escape(node.name)}\b")
                if not any(pattern.search(src) for src in test_sources):
                    yield Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=node.lineno,
                        message=(
                            f"wire message {node.name} has no test "
                            "reference (no round-trip coverage)"
                        ),
                        hint=(
                            "add it to the encode/decode round-trip "
                            "suite in tests/net/"
                        ),
                    )

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef):
        for decorator in node.decorator_list:
            target = (
                decorator.func
                if isinstance(decorator, ast.Call)
                else decorator
            )
            if dotted_name(target).rsplit(".", 1)[-1] == "dataclass":
                return decorator
        return None

    @staticmethod
    def _is_frozen(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        return any(
            kw.arg == "frozen"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in decorator.keywords
        )


# -- OBS01 --------------------------------------------------------------------

#: Registry entry points taking a metric name as their first argument.
METRIC_CALLS = frozenset({"inc", "observe", "set_gauge", "histogram"})

#: The documented naming grammar (docs/observability.md): lowercase
#: dotted segments, at least ``component.metric``.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: A static f-string prefix must end exactly at a segment boundary.
METRIC_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*\.$")


class MetricNameChecker(Checker):
    rule = "OBS01"
    title = "metric name violates the component.metric grammar"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_library:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            parts = name.split(".")
            if parts[-1] not in METRIC_CALLS:
                continue
            if len(parts) < 2 or parts[-2] not in ("obs", "metrics"):
                continue
            if not node.args:
                continue
            yield from self._check_name(ctx, node, node.args[0])

    def _check_name(
        self, ctx: ModuleContext, call: ast.Call, arg: ast.expr
    ) -> Iterable[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if not METRIC_NAME_RE.match(arg.value):
                yield Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=call.lineno,
                    message=(
                        f"metric name {arg.value!r} violates the "
                        "component.metric grammar"
                    ),
                    hint=(
                        "lowercase [a-z0-9_] segments joined by dots, "
                        "at least two segments (see docs/observability.md)"
                    ),
                )
        elif isinstance(arg, ast.JoinedStr):
            first = arg.values[0] if arg.values else None
            prefix = (
                first.value
                if isinstance(first, ast.Constant)
                and isinstance(first.value, str)
                else ""
            )
            if not METRIC_PREFIX_RE.match(prefix):
                yield Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=call.lineno,
                    message=(
                        "dynamic metric name needs a static "
                        "component.metric prefix ending in '.' "
                        f"(got {prefix!r})"
                    ),
                    hint='write f"component.metric.{variable}"',
                )


# -- CAT01 --------------------------------------------------------------------

CRASHPOINT_MODULE = "repro.fault.crashpoints"

#: Call names that plant (or arm) a crashpoint by string literal.
PLANT_CALLS = frozenset({"crashpoint", "torn_prefix", "crash_now"})
ARM_CALLS = frozenset({"crash_armed", "CrashSchedule"})


class CrashCatalogChecker(Checker):
    rule = "CAT01"
    title = "crashpoint literal out of sync with repro.fault.CATALOG"

    def finalize(self, project: Project) -> Iterable[Finding]:
        catalog_ctx = project.find(CRASHPOINT_MODULE)
        if catalog_ctx is None:
            return
        catalog, catalog_line = self._parse_catalog(catalog_ctx)
        planted: dict[str, tuple[str, int]] = {}
        for ctx in project.modules:
            if ctx.module == CRASHPOINT_MODULE:
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = dotted_name(node.func).rsplit(".", 1)[-1]
                if callee not in PLANT_CALLS and callee not in ARM_CALLS:
                    continue
                literal = str_arg(node)
                if literal is None:
                    continue  # schedule-driven (variable) arming
                if literal not in catalog:
                    yield Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=node.lineno,
                        message=(
                            f"crashpoint {literal!r} is not in "
                            "repro.fault.CATALOG"
                        ),
                        hint=(
                            "add it to the catalog (with a comment on "
                            "the window it models) or fix the typo"
                        ),
                    )
                elif callee in PLANT_CALLS and ctx.in_library:
                    planted.setdefault(literal, (ctx.relpath, node.lineno))
        for point in sorted(catalog - set(planted)):
            yield Finding(
                rule=self.rule,
                path=catalog_ctx.relpath,
                line=catalog_line.get(point, 1),
                message=(
                    f"CATALOG entry {point!r} is planted at no library "
                    "site — chaos sweeps of it are no-ops"
                ),
                hint=(
                    "plant crashpoint()/torn_prefix() at the window it "
                    "names, or remove the stale entry"
                ),
            )

    @staticmethod
    def _parse_catalog(
        ctx: ModuleContext,
    ) -> tuple[set[str], dict[str, int]]:
        names: set[str] = set()
        lines: dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == "CATALOG" for t in targets
            ):
                continue
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)):
                for element in value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.add(element.value)
                        lines[element.value] = element.lineno
        return names, lines
