"""Static analysis: mechanical enforcement of the codebase's contracts.

The reproduction's guarantees rest on code-level invariants that unit
tests cannot see — a single ``time.time()`` in a hot path silently
breaks deterministic replay; a state write that skips verification
silently breaks the no-unverified-adoption theorem; an unbounded dict
on a long-lived class silently breaks the bounded-state claim under
real traffic.  This package is a dependency-free ``ast`` pass (~8
domain-specific checkers) that turns those conventions into CI
failures with file:line findings and fix hints:

========  ===========================================================
DET01     wall-clock calls outside :mod:`repro.obs.wallclock`
DET02     unseeded randomness outside ``repro/crypto/``
VER01     trusted-state writes not dominated by verification
ERR01     error taxonomy registration + typed raise sites
BND01     growable containers on long-lived classes without eviction
WIRE01    wire-message dataclasses without frozen/round-trip contracts
OBS01     metric names violating the ``component.metric`` grammar
CAT01     crashpoint literals out of sync with ``repro.fault.CATALOG``
SUP01     ``# repro: allow[...]`` suppressions without justification
========  ===========================================================

Run it with ``python -m repro.analysis`` (or ``repro analyze``); see
``docs/analysis.md`` for the rule catalog, baseline workflow, and the
inline-suppression contract.
"""

from repro.analysis.findings import (
    Finding,
    Suppression,
    parse_suppressions,
)
from repro.analysis.runner import all_checkers, analyze, main, run_checkers

__all__ = [
    "Finding",
    "Suppression",
    "all_checkers",
    "analyze",
    "main",
    "parse_suppressions",
    "run_checkers",
]
