"""DET01/DET02 — the replay contract, enforced at the call-site level.

The whole-system simulation (:mod:`repro.sim`) promises *same seed ⇒
byte-identical fingerprint*, and the shrinker and every replay command
rest on it.  That promise dies silently the moment a hot path reads the
wall clock or an unseeded randomness source: the schedule still
replays, but timeouts, cache sweeps, or jitter start varying run to
run, and the exact class of bug the harness exists to catch becomes
unreproducible.

* **DET01** — wall-clock reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter``, ``time.sleep``, ``datetime.now`` ...) anywhere
  outside :mod:`repro.obs.wallclock`.  Logic wants the virtual bus
  clock (``bus.clock_ms``); measurement wants the one audited wall
  helper, so a reviewer can see every wall-clock consumer in one place.

* **DET02** — unseeded randomness (module-level ``random.*``,
  ``os.urandom``, ``uuid.uuid4``, ``secrets.*``) outside
  ``repro/crypto/``.  All library randomness must flow from a named
  ``random.Random(seed)`` stream so replay can reproduce it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.context import Checker, ModuleContext, walk_calls
from repro.analysis.findings import Finding

#: The only module allowed to touch the wall clock.  Everything else —
#: including obs tracing — goes through its helpers, so grep-for-wall
#: has exactly one answer.
WALLCLOCK_MODULES = frozenset({"repro.obs.wallclock"})

#: Dotted call names that read or burn wall time.
WALL_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Modules whose *purpose* is cryptographic entropy: key generation is
#: the one legitimate consumer of OS randomness in this library.
ENTROPY_MODULES_PREFIX = "repro.crypto"

#: Unseeded randomness sources.  ``random.Random`` (the seeded-stream
#: constructor) is explicitly fine; everything module-level is not.
UNSEEDED_CALLS = frozenset(
    {
        "os.urandom",
        "uuid.uuid4",
        "uuid.uuid1",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: ``random.<fn>`` module-level functions that draw from the hidden
#: global (hence unseeded, hence replay-breaking) stream.
RANDOM_MODULE_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "getrandbits",
        "randbytes",
        "seed",
        "triangular",
        "vonmisesvariate",
    }
)


class WallClockChecker(Checker):
    rule = "DET01"
    title = "wall-clock call outside repro.obs.wallclock"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.module in WALLCLOCK_MODULES:
            return
        for call, name in walk_calls(ctx.tree):
            if name in WALL_CALLS:
                yield Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=call.lineno,
                    message=(
                        f"wall-clock call {name}() outside the "
                        "repro.obs.wallclock allowlist"
                    ),
                    hint=(
                        "use the virtual bus clock (bus.clock_ms) for "
                        "logic, or repro.obs.wallclock helpers for "
                        "measurement"
                    ),
                )


class UnseededRandomChecker(Checker):
    rule = "DET02"
    title = "unseeded randomness outside repro.crypto"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.module.startswith(ENTROPY_MODULES_PREFIX):
            return
        imports_random = _imports_module(ctx.tree, "random")
        for call, name in walk_calls(ctx.tree):
            flagged = name in UNSEEDED_CALLS or (
                imports_random
                and name.startswith("random.")
                and name.split(".", 1)[1] in RANDOM_MODULE_FNS
            )
            if flagged:
                yield Finding(
                    rule=self.rule,
                    path=ctx.relpath,
                    line=call.lineno,
                    message=(
                        f"unseeded randomness {name}() — replay cannot "
                        "reproduce it"
                    ),
                    hint=(
                        "draw from a named random.Random(seed) stream "
                        "threaded from the caller (crypto/ key material "
                        "is the only os.urandom consumer)"
                    ),
                )
        yield from self._from_imports(ctx)

    def _from_imports(self, ctx: ModuleContext) -> Iterable[Finding]:
        """``from random import random`` smuggles the global stream in
        under a bare name the call scan above cannot see."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ImportFrom) or node.module != "random":
                continue
            for alias in node.names:
                if alias.name in RANDOM_MODULE_FNS:
                    yield Finding(
                        rule=self.rule,
                        path=ctx.relpath,
                        line=node.lineno,
                        message=(
                            f"from random import {alias.name} exposes the "
                            "unseeded global stream"
                        ),
                        hint="import random; use a random.Random(seed) stream",
                    )


def _imports_module(tree: ast.Module, name: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == name for alias in node.names):
                return True
    return False
