"""Per-file parsing context and the checker interface.

Every checker sees one :class:`ModuleContext` at a time (one parsed
source file) plus, at the end of the run, the whole :class:`Project`
for cross-file contracts (a wire message must have a round-trip test
*somewhere*; every catalog entry must have a planted call site).

Checkers are deliberately dumb ``ast`` walkers: no type inference, no
imports resolution beyond "this file ``import random``-ed the stdlib
module".  Where true data-flow would be needed (VER01's dominance
check), the approximation is statement order within one function body —
cheap, predictable, and auditable; the escape hatch for the rare
false positive is an inline justified suppression, never silence.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding, Suppression, parse_suppressions


@dataclass
class ModuleContext:
    """One parsed source file."""

    path: Path
    relpath: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, Suppression] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "ModuleContext":
        source = path.read_text(encoding="utf-8")
        relpath = path.relative_to(root).as_posix()
        return cls(
            path=path,
            relpath=relpath,
            module=module_name(relpath),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            lines=source.splitlines(),
            suppressions=parse_suppressions(source.splitlines()),
        )

    @property
    def in_library(self) -> bool:
        return self.module.startswith("repro.") or self.module == "repro"

    @property
    def in_tests(self) -> bool:
        return self.relpath.startswith("tests/")


@dataclass
class Project:
    """Every parsed file of one analysis run."""

    root: Path
    modules: list[ModuleContext]

    def library_modules(self) -> list[ModuleContext]:
        return [ctx for ctx in self.modules if ctx.in_library]

    def test_modules(self) -> list[ModuleContext]:
        return [ctx for ctx in self.modules if ctx.in_tests]

    def find(self, module: str) -> ModuleContext | None:
        for ctx in self.modules:
            if ctx.module == module:
                return ctx
        return None


class Checker:
    """Base class: one rule id, checked per-module and/or project-wide."""

    rule: str = ""
    title: str = ""

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        return ()


def module_name(relpath: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/net/rpc.py`` → ``repro.net.rpc``;
    ``tests/net/test_rpc.py`` → ``tests.net.test_rpc``.
    """
    parts = list(Path(relpath).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted name of a call target or attribute chain.

    ``time.perf_counter`` → ``"time.perf_counter"``;
    ``self.cache.put`` → ``"self.cache.put"``; anything non-static
    (subscripts, calls) contributes a ``?`` segment.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def walk_calls(tree: ast.AST) -> Iterable[tuple[ast.Call, str]]:
    """Every call in ``tree`` with its dotted target name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node, dotted_name(node.func)


def enclosing_functions(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    """Map every node to its nearest enclosing function (or ``None``)."""
    owner: dict[ast.AST, ast.AST] = {}

    def visit(node: ast.AST, current: ast.AST | None) -> None:
        owner[node] = current
        inner = (
            node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else current
        )
        for child in ast.iter_child_nodes(node):
            visit(child, inner)

    visit(tree, None)
    return owner


def str_arg(call: ast.Call, position: int = 0) -> str | None:
    """The call's ``position``-th argument when it is a string literal."""
    if len(call.args) <= position:
        return None
    arg = call.args[position]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    return None
