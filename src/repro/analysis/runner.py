"""The analysis runner: discover, parse, check, baseline, report.

``python -m repro.analysis`` (or ``repro analyze``) walks ``src/`` and
``tests/`` — skipping ``fixtures/`` directories, which hold the
deliberately-violating snippets the analyzer's own tests assert on —
runs every registered checker, applies inline suppressions and the
checked-in baseline, and exits non-zero when anything new (or any
stale baseline entry, or any unjustified suppression) remains.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis.context import Checker, ModuleContext, Project
from repro.analysis.contracts import (
    AdoptionChecker,
    BoundedStateChecker,
    TaxonomyChecker,
)
from repro.analysis.determinism import UnseededRandomChecker, WallClockChecker
from repro.analysis.findings import (
    Finding,
    malformed_suppression_findings,
    suppression_for,
)
from repro.analysis.protocol import (
    CrashCatalogChecker,
    MetricNameChecker,
    WireMessageChecker,
)

#: Directory names never descended into during discovery.
SKIPPED_DIRS = frozenset({"__pycache__", "fixtures", ".git"})

#: Default analysis roots, relative to the repo root.
DEFAULT_PATHS = ("src", "tests")


def all_checkers() -> list[Checker]:
    """One fresh instance of every registered checker, in rule order."""
    return [
        WallClockChecker(),
        UnseededRandomChecker(),
        AdoptionChecker(),
        TaxonomyChecker(),
        BoundedStateChecker(),
        WireMessageChecker(),
        MetricNameChecker(),
        CrashCatalogChecker(),
    ]


def discover(root: Path, paths: Sequence[str]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        target = (root / entry).resolve()
        if target.is_file() and target.suffix == ".py":
            files.append(target)
            continue
        for path in sorted(target.rglob("*.py")):
            if any(part in SKIPPED_DIRS for part in path.parts):
                continue
            files.append(path)
    return files


def build_project(root: Path, files: Iterable[Path]) -> Project:
    modules = [ModuleContext.parse(path, root) for path in files]
    return Project(root=root, modules=modules)


def run_checkers(
    project: Project, checkers: Sequence[Checker] | None = None
) -> list[Finding]:
    """Every finding, suppressions applied, SUP01s included, sorted."""
    checkers = list(checkers) if checkers is not None else all_checkers()
    raw: list[Finding] = []
    for ctx in project.modules:
        for checker in checkers:
            raw.extend(checker.check_module(ctx))
    for checker in checkers:
        raw.extend(checker.finalize(project))

    by_path = {ctx.relpath: ctx for ctx in project.modules}
    kept: list[Finding] = []
    for finding in raw:
        ctx = by_path.get(finding.path)
        if ctx is not None:
            covering = suppression_for(ctx.suppressions, finding)
            if covering is not None and covering.justified:
                covering.used.add(finding.rule)
                continue
        kept.append(finding)
    for ctx in project.modules:
        kept.extend(
            malformed_suppression_findings(ctx.relpath, ctx.suppressions)
        )
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    return kept


def analyze(
    root: Path,
    paths: Sequence[str] = DEFAULT_PATHS,
    checkers: Sequence[Checker] | None = None,
) -> list[Finding]:
    """Programmatic entry point: findings for ``paths`` under ``root``."""
    project = build_project(root, discover(root, paths))
    return run_checkers(project, checkers)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "AST-based invariant linter: determinism (DET), "
            "verification-before-adoption (VER), error taxonomy (ERR), "
            "bounded state (BND), wire (WIRE), metrics (OBS), and "
            "crash-catalog (CAT) contracts"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to analyze (default: src tests)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root the paths are relative to (default: .)",
    )
    parser.add_argument(
        "--baseline",
        default=baseline_mod.DEFAULT_BASELINE,
        help="baseline file of accepted findings (default: "
        f"{baseline_mod.DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as JSON"
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        help="only report these rule ids (repeatable)",
    )
    args = parser.parse_args(argv)

    root = Path(args.root).resolve()
    # Absolute path arguments would silently ignore --root (pathlib's
    # ``root / "/abs"`` is just ``/abs``) and then crash computing
    # relpaths; anchor them under the root or refuse clearly.
    paths: list[str] = []
    for entry in args.paths:
        candidate = Path(entry)
        if candidate.is_absolute():
            try:
                candidate = candidate.resolve().relative_to(root)
            except ValueError:
                parser.error(
                    f"{entry} is outside the analysis root {root}; "
                    "pass --root pointing at the repository it lives in"
                )
        paths.append(candidate.as_posix())
    findings = analyze(root, paths)
    if args.rule:
        wanted = set(args.rule)
        findings = [f for f in findings if f.rule in wanted]

    baseline_path = root / args.baseline
    if args.update_baseline:
        baseline_mod.save(baseline_path, findings)
        print(
            f"analysis: baseline rewritten with {len(findings)} "
            f"finding(s) at {baseline_path}"
        )
        return 0

    entries = [] if args.no_baseline else baseline_mod.load(baseline_path)
    split = baseline_mod.diff(findings, entries)

    if args.json:
        print(
            json.dumps(
                {
                    "new": [f.as_dict() for f in split.new],
                    "accepted": [f.as_dict() for f in split.accepted],
                    "stale_baseline": split.stale,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in split.new:
            print(finding.render())
        for entry in split.stale:
            print(
                f"{entry.get('path')}: stale baseline entry "
                f"{entry.get('rule')} ({entry.get('message')}) — the "
                "finding no longer exists; remove it from the baseline"
            )
        checked = len(split.new) + len(split.accepted)
        print(
            f"analysis: {checked} finding(s) — {len(split.new)} new, "
            f"{len(split.accepted)} baselined, {len(split.stale)} stale "
            "baseline entr(ies)"
        )
    return 1 if split.new or split.stale else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
