"""The accepted-findings baseline.

CI must fail loudly on *new* findings without demanding that every
pre-existing accepted finding be fixed in the same commit.  The
baseline file (``analysis-baseline.json``, checked in at the repo
root) records accepted findings by line-number-free fingerprint (see
:meth:`repro.analysis.findings.Finding.fingerprint`), so moving code
around does not churn it but changing a message or fixing the site
does.

The contract ``make analyze`` enforces:

* a finding **not** in the baseline fails the run;
* a baseline entry that no longer matches anything is reported as
  *stale* and fails the run too (the baseline may only shrink by being
  edited, never rot silently);
* ``--update-baseline`` rewrites the file from the current findings —
  reviewers then see every newly-accepted finding in the diff.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding

DEFAULT_BASELINE = "analysis-baseline.json"


@dataclass
class BaselineDiff:
    """Findings split against a baseline."""

    new: list[Finding]
    accepted: list[Finding]
    stale: list[dict]


def load(path: Path) -> list[dict]:
    """Baseline entries (empty when the file is absent)."""
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("findings", []) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ValueError(f"malformed baseline file {path}")
    return entries


def save(path: Path, findings: list[Finding]) -> None:
    entries = [
        {
            "fingerprint": finding.fingerprint(),
            "rule": finding.rule,
            "path": finding.path,
            "message": finding.message,
        }
        for finding in sorted(
            findings, key=lambda f: (f.path, f.rule, f.message)
        )
    ]
    path.write_text(
        json.dumps({"findings": entries}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def diff(findings: list[Finding], entries: list[dict]) -> BaselineDiff:
    known = {
        entry.get("fingerprint"): entry
        for entry in entries
        if isinstance(entry, dict)
    }
    matched: set[str] = set()
    new: list[Finding] = []
    accepted: list[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in known:
            matched.add(fingerprint)
            accepted.append(finding)
        else:
            new.append(finding)
    stale = [
        entry
        for fingerprint, entry in known.items()
        if fingerprint not in matched
    ]
    return BaselineDiff(new=new, accepted=accepted, stale=stale)
