"""Findings, suppressions, and their stable identities.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` deliberately ignores the line number: the
baseline (see :mod:`repro.analysis.baseline`) matches findings by
``(rule, path, message)`` so an unrelated edit that shifts code down a
few lines does not churn the baseline file.

Inline suppressions are trailing (or immediately-preceding) comments::

    self.cache.put(request, answer)  # repro: allow[VER01] callers verify first

The justification after the closing bracket is **mandatory** — an
``allow`` with no stated reason is itself reported (rule ``SUP01``), so
the suppression mechanism cannot silently decay into a mute button.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field

#: Rule id reserved for malformed suppressions (an ``allow`` comment
#: with no trailing justification).
SUPPRESSION_RULE = "SUP01"

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Z]{3}\d{2}(?:\s*,\s*[A-Z]{3}\d{2})*)\]"
    r"(?P<justification>[^\n]*)"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number free)."""
        digest = hashlib.sha256(
            f"{self.rule}|{self.path}|{self.message}".encode("utf-8")
        )
        return digest.hexdigest()[:16]

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: tuple[str, ...]
    justification: str
    used: set = field(default_factory=set, compare=False)

    @property
    def justified(self) -> bool:
        return bool(self.justification)


def parse_suppressions(source_lines: list[str]) -> dict[int, Suppression]:
    """All ``allow`` comments in a file, keyed by 1-based line number."""
    found: dict[int, Suppression] = {}
    for number, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",")
        )
        found[number] = Suppression(
            line=number,
            rules=rules,
            justification=match.group("justification").strip(),
        )
    return found


def suppression_for(
    suppressions: dict[int, Suppression], finding: Finding
) -> Suppression | None:
    """The suppression covering ``finding``, if any.

    A suppression covers the physical line it sits on and, when it is
    the sole content of its line (comment-above style), the statement
    beginning on the next line.
    """
    same_line = suppressions.get(finding.line)
    if same_line is not None and finding.rule in same_line.rules:
        return same_line
    above = suppressions.get(finding.line - 1)
    if above is not None and finding.rule in above.rules:
        return above
    return None


def malformed_suppression_findings(
    path: str, suppressions: dict[int, Suppression]
) -> list[Finding]:
    """SUP01 findings for every ``allow`` with no justification."""
    return [
        Finding(
            rule=SUPPRESSION_RULE,
            path=path,
            line=sup.line,
            message=(
                f"suppression allow[{', '.join(sup.rules)}] has no "
                "justification"
            ),
            hint=(
                "state why the violation is acceptable after the bracket: "
                "# repro: allow[RULE] <reason>"
            ),
        )
        for sup in suppressions.values()
        if not sup.justified
    ]
