"""Merkle Patricia Trie with (non-)membership proofs.

The two-level historical-query index of §5.4 (Fig. 5) uses an MPT as its
upper level: account addresses are the keys, and each value is the root
digest of that account's lower-level version tree.  The Merkle inverted
index reuses it as the keyword dictionary.

Keys are navigated nibble-by-nibble.  Three node kinds exist — leaf,
extension, and 16-way branch — mirroring Ethereum's trie, though node
encoding/hashing here is the library's own domain-separated scheme
rather than RLP.  Inserts rebuild only the nodes along the touched path
(functional style), so digests never go stale.

Proofs are a top-down list of *steps*; two step kinds are terminal
(a branch the key ends on, or an extension the key diverges from) and
may only appear last.  Non-membership is proven by exhibiting where the
search fails: an empty branch slot, a diverging extension, or a leaf for
a different key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_concat, sha256

#: Digest standing in for an absent child / empty trie.
EMPTY_DIGEST: Digest = sha256(b"repro-mpt-empty")

_Nibbles = tuple[int, ...]


def _to_nibbles(key: bytes) -> _Nibbles:
    nibbles: list[int] = []
    for byte in key:
        nibbles.append(byte >> 4)
        nibbles.append(byte & 0xF)
    return tuple(nibbles)


def _nibbles_bytes(path: _Nibbles) -> bytes:
    return bytes(path)


def _common_prefix(a: _Nibbles, b: _Nibbles) -> int:
    length = 0
    for x, y in zip(a, b):
        if x != y:
            break
        length += 1
    return length


def _leaf_digest(path: _Nibbles, value: bytes) -> Digest:
    return hash_concat(b"mpt-leaf", _nibbles_bytes(path), value)


def _ext_digest(path: _Nibbles, child: Digest) -> Digest:
    return hash_concat(b"mpt-ext", _nibbles_bytes(path), child)


def _branch_digest(children: list[Digest], value: bytes | None) -> Digest:
    return hash_concat(
        b"mpt-branch", *children, value if value is not None else b""
    )


@dataclass(frozen=True, slots=True)
class _Leaf:
    path: _Nibbles
    value: bytes

    def digest(self) -> Digest:
        return _leaf_digest(self.path, self.value)


@dataclass(frozen=True, slots=True)
class _Extension:
    path: _Nibbles
    child: "_Branch"

    def digest(self) -> Digest:
        return _ext_digest(self.path, self.child.digest())


class _Branch:
    """16-way branch; the digest is cached since children are immutable."""

    __slots__ = ("children", "value", "_digest")

    def __init__(self, children: list["_Node | None"], value: bytes | None) -> None:
        self.children = children
        self.value = value
        self._digest: Digest | None = None

    def child_digests(self) -> list[Digest]:
        return [
            child.digest() if child is not None else EMPTY_DIGEST
            for child in self.children
        ]

    def digest(self) -> Digest:
        if self._digest is None:
            self._digest = _branch_digest(self.child_digests(), self.value)
        return self._digest


_Node = _Leaf | _Extension | _Branch


# -- proof steps -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BranchStep:
    """A branch the search descended through (non-terminal)."""

    taken: int
    sibling_digests: tuple[Digest, ...]  # the other 15 children, in order
    value: bytes | None


@dataclass(frozen=True, slots=True)
class TerminalBranchStep:
    """A branch the key ends exactly on (terminal)."""

    child_digests: tuple[Digest, ...]  # all 16
    value: bytes | None


@dataclass(frozen=True, slots=True)
class ExtensionStep:
    """An extension whose compressed path the key follows (non-terminal)."""

    path: _Nibbles


@dataclass(frozen=True, slots=True)
class DivergedExtensionStep:
    """An extension whose compressed path the key diverges from (terminal)."""

    path: _Nibbles
    child_digest: Digest


_Step = BranchStep | TerminalBranchStep | ExtensionStep | DivergedExtensionStep


@dataclass(frozen=True, slots=True)
class MPTProof:
    """(Non-)membership proof for one key: the search path, top-down."""

    key: bytes
    steps: tuple[_Step, ...]
    terminal_leaf: tuple[_Nibbles, bytes] | None

    def size_bytes(self) -> int:
        total = len(self.key)
        for step in self.steps:
            if isinstance(step, BranchStep):
                total += 1 + 32 * 15 + (len(step.value) if step.value else 0)
            elif isinstance(step, TerminalBranchStep):
                total += 32 * 16 + (len(step.value) if step.value else 0)
            elif isinstance(step, ExtensionStep):
                total += len(step.path)
            else:
                total += len(step.path) + 32
        if self.terminal_leaf is not None:
            total += len(self.terminal_leaf[0]) + len(self.terminal_leaf[1])
        return total


class MerklePatriciaTrie:
    """Mutable MPT mapping byte keys to byte values."""

    def __init__(self) -> None:
        self._root: _Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> Digest:
        return self._root.digest() if self._root is not None else EMPTY_DIGEST

    def get(self, key: bytes) -> bytes | None:
        node = self._root
        path = _to_nibbles(key)
        while node is not None:
            if isinstance(node, _Leaf):
                return node.value if node.path == path else None
            if isinstance(node, _Extension):
                if path[: len(node.path)] != node.path:
                    return None
                path = path[len(node.path) :]
                node = node.child
                continue
            if not path:
                return node.value
            node, path = node.children[path[0]], path[1:]
        return None

    def insert(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        if self.get(key) is None:
            self._size += 1
        self._root = self._insert(self._root, _to_nibbles(key), value)

    def prove(self, key: bytes) -> MPTProof:
        """Build a (non-)membership proof for ``key``."""
        steps: list[_Step] = []
        node = self._root
        path = _to_nibbles(key)
        terminal: tuple[_Nibbles, bytes] | None = None
        while node is not None:
            if isinstance(node, _Leaf):
                terminal = (node.path, node.value)
                break
            if isinstance(node, _Extension):
                if path[: len(node.path)] != node.path:
                    steps.append(
                        DivergedExtensionStep(node.path, node.child.digest())
                    )
                    break
                steps.append(ExtensionStep(node.path))
                path = path[len(node.path) :]
                node = node.child
                continue
            if not path:
                steps.append(
                    TerminalBranchStep(tuple(node.child_digests()), node.value)
                )
                break
            taken = path[0]
            siblings = tuple(
                digest
                for index, digest in enumerate(node.child_digests())
                if index != taken
            )
            steps.append(BranchStep(taken, siblings, node.value))
            node, path = node.children[taken], path[1:]
        return MPTProof(key=key, steps=tuple(steps), terminal_leaf=terminal)

    # -- internals ---------------------------------------------------------

    def _insert(self, node: _Node | None, path: _Nibbles, value: bytes) -> _Node:
        if node is None:
            return _Leaf(path, value)
        if isinstance(node, _Leaf):
            return self._split_leaf(node, path, value)
        if isinstance(node, _Extension):
            return self._split_extension(node, path, value)
        return self._insert_branch(node, path, value)

    def _split_leaf(self, node: _Leaf, path: _Nibbles, value: bytes) -> _Node:
        if node.path == path:
            return _Leaf(path, value)
        shared = _common_prefix(node.path, path)
        branch = self._new_branch(
            [(node.path[shared:], node.value), (path[shared:], value)]
        )
        if shared:
            return _Extension(path[:shared], branch)
        return branch

    def _split_extension(self, node: _Extension, path: _Nibbles, value: bytes) -> _Node:
        shared = _common_prefix(node.path, path)
        if shared == len(node.path):
            child = self._insert_branch(node.child, path[shared:], value)
            return _Extension(node.path, child)
        children: list[_Node | None] = [None] * 16
        remainder = node.path[shared + 1 :]
        inner: _Node = (
            node.child if not remainder else _Extension(remainder, node.child)
        )
        children[node.path[shared]] = inner
        branch_value: bytes | None = None
        if shared == len(path):
            branch_value = value
        else:
            children[path[shared]] = _Leaf(path[shared + 1 :], value)
        branch = _Branch(children, branch_value)
        if shared:
            return _Extension(path[:shared], branch)
        return branch

    def _insert_branch(self, node: _Branch, path: _Nibbles, value: bytes) -> _Branch:
        children = list(node.children)
        if not path:
            return _Branch(children, value)
        children[path[0]] = self._insert(children[path[0]], path[1:], value)
        return _Branch(children, node.value)

    def _new_branch(self, leaves: list[tuple[_Nibbles, bytes]]) -> _Branch:
        children: list[_Node | None] = [None] * 16
        value: bytes | None = None
        for path, leaf_value in leaves:
            if not path:
                value = leaf_value
            else:
                children[path[0]] = self._insert(
                    children[path[0]], path[1:], leaf_value
                )
        return _Branch(children, value)


def verify_mpt(root: Digest, key: bytes, value: bytes | None, proof: MPTProof) -> bool:
    """Verify an :class:`MPTProof` for ``key -> value`` (``None`` = absent)."""
    if proof.key != key:
        return False
    path = _to_nibbles(key)

    # Top-down pass: replay the navigation, determine the claimed value,
    # and enforce that terminal steps only appear last.
    cursor = 0
    claimed: bytes | None = None
    ended = False
    for step in proof.steps:
        if ended:
            return False
        if isinstance(step, ExtensionStep):
            if path[cursor : cursor + len(step.path)] != step.path:
                return False
            cursor += len(step.path)
        elif isinstance(step, DivergedExtensionStep):
            if path[cursor : cursor + len(step.path)] == step.path:
                return False  # it does not actually diverge
            ended = True
        elif isinstance(step, BranchStep):
            if len(step.sibling_digests) != 15:
                return False
            if cursor >= len(path) or path[cursor] != step.taken:
                return False
            cursor += 1
        else:  # TerminalBranchStep
            if len(step.child_digests) != 16 or cursor != len(path):
                return False
            claimed = step.value
            ended = True

    if proof.terminal_leaf is not None:
        if ended:
            return False
        leaf_path, leaf_value = proof.terminal_leaf
        if leaf_path == path[cursor:]:
            claimed = leaf_value

    if claimed != value:
        return False

    # Bottom-up pass: recompute the root digest.
    if proof.terminal_leaf is not None:
        digest = _leaf_digest(*proof.terminal_leaf)
    else:
        digest = EMPTY_DIGEST  # fell off an empty branch slot / empty trie
    for step in reversed(proof.steps):
        if isinstance(step, ExtensionStep):
            digest = _ext_digest(step.path, digest)
        elif isinstance(step, DivergedExtensionStep):
            digest = _ext_digest(step.path, step.child_digest)
        elif isinstance(step, BranchStep):
            children = list(step.sibling_digests)
            children.insert(step.taken, digest)
            digest = _branch_digest(children, step.value)
        else:
            digest = _branch_digest(list(step.child_digests), step.value)
    return digest == root


# -- proof-based updates (used inside the enclave) ---------------------------
#
# The upper level of DCert's two-level index is an MPT; when a block
# changes an account's lower-tree root, the enclave must recompute the
# *new* MPT root from a (non-)membership proof alone.  Every structural
# case of an MPT insert (value overwrite, leaf split, extension split,
# empty branch slot, branch value, empty trie) only touches nodes the
# proof already opens, so the update is a pure function.


def apply_update(
    root: Digest, key: bytes, value: bytes, proof: MPTProof
) -> Digest:
    """Pure function: the MPT root after ``insert(key, value)``.

    ``proof`` must be a valid (non-)membership proof for ``key`` against
    ``root`` (any claimed old value is accepted); raises
    :class:`ProofError` otherwise.  Mirrors the exact restructuring of
    :meth:`MerklePatriciaTrie.insert`.
    """
    from repro.errors import ProofError

    # The proof must verify for *some* claimed value; recover it.
    old_value = _claimed_value(key, proof)
    if not verify_mpt(root, key, old_value, proof):
        raise ProofError("MPT update proof does not verify")

    path = _to_nibbles(key)
    cursor = 0
    for step in proof.steps:
        if isinstance(step, ExtensionStep):
            cursor += len(step.path)
        elif isinstance(step, BranchStep):
            cursor += 1
    remaining = path[cursor:]

    # Compute the digest of the rebuilt bottom structure.
    last = proof.steps[-1] if proof.steps else None
    if isinstance(last, TerminalBranchStep):
        digest = _branch_digest(list(last.child_digests), value)
        steps_above = proof.steps[:-1]
    elif isinstance(last, DivergedExtensionStep):
        digest = _split_extension_digest(last, remaining, value)
        steps_above = proof.steps[:-1]
    elif proof.terminal_leaf is not None:
        leaf_path, leaf_value = proof.terminal_leaf
        if leaf_path == remaining:
            digest = _leaf_digest(remaining, value)
        else:
            digest = _split_leaf_digest(leaf_path, leaf_value, remaining, value)
        steps_above = proof.steps
    else:
        # Fell off an empty branch slot, or the trie was empty.
        digest = _leaf_digest(remaining, value)
        steps_above = proof.steps

    for step in reversed(steps_above):
        if isinstance(step, ExtensionStep):
            digest = _ext_digest(step.path, digest)
        elif isinstance(step, BranchStep):
            children = list(step.sibling_digests)
            children.insert(step.taken, digest)
            digest = _branch_digest(children, step.value)
        else:
            raise ProofError("terminal step not in terminal position")
    return digest


def _claimed_value(key: bytes, proof: MPTProof) -> bytes | None:
    """The value the proof claims for ``key`` (None = absent)."""
    path = _to_nibbles(key)
    cursor = 0
    for step in proof.steps:
        if isinstance(step, ExtensionStep):
            cursor += len(step.path)
        elif isinstance(step, BranchStep):
            cursor += 1
        elif isinstance(step, TerminalBranchStep):
            return step.value
        else:
            return None  # diverged extension: absent
    if proof.terminal_leaf is not None:
        leaf_path, leaf_value = proof.terminal_leaf
        if leaf_path == path[cursor:]:
            return leaf_value
    return None


def _split_leaf_digest(
    leaf_path: _Nibbles, leaf_value: bytes, new_path: _Nibbles, new_value: bytes
) -> Digest:
    """Digest after splitting an existing leaf to admit a new key
    (mirrors ``MerklePatriciaTrie._split_leaf``)."""
    shared = _common_prefix(leaf_path, new_path)
    children = [EMPTY_DIGEST] * 16
    branch_value: bytes | None = None
    for sub_path, sub_value in ((leaf_path[shared:], leaf_value), (new_path[shared:], new_value)):
        if not sub_path:
            branch_value = sub_value
        else:
            children[sub_path[0]] = _leaf_digest(sub_path[1:], sub_value)
    digest = _branch_digest(children, branch_value)
    if shared:
        digest = _ext_digest(new_path[:shared], digest)
    return digest


def _split_extension_digest(
    step: DivergedExtensionStep, new_path: _Nibbles, new_value: bytes
) -> Digest:
    """Digest after splitting a diverging extension
    (mirrors ``MerklePatriciaTrie._split_extension``)."""
    shared = _common_prefix(step.path, new_path)
    children = [EMPTY_DIGEST] * 16
    remainder = step.path[shared + 1 :]
    inner = (
        step.child_digest
        if not remainder
        else _ext_digest(remainder, step.child_digest)
    )
    children[step.path[shared]] = inner
    branch_value: bytes | None = None
    if shared == len(new_path):
        branch_value = new_value
    else:
        children[new_path[shared]] = _leaf_digest(new_path[shared + 1 :], new_value)
    digest = _branch_digest(children, branch_value)
    if shared:
        digest = _ext_digest(new_path[:shared], digest)
    return digest


def claimed_value(key: bytes, proof: MPTProof) -> bytes | None:
    """Public alias: the value a (verified) proof claims for ``key``.

    Only meaningful after ``verify_mpt``/``apply_update`` has checked the
    proof against a trusted root.
    """
    return _claimed_value(key, proof)
