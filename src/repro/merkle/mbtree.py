"""Merkle B-tree (MB-tree) with authenticated range queries.

This follows Li et al.'s dynamic authenticated index (SIGMOD'06), which
the paper uses as the lower level of its two-level historical-query
index (§5.4, Fig. 5): a B+-tree whose every node is augmented with a
digest.  Internal nodes authenticate, per child, the child's digest
*and* its key range, which is what makes range-query **completeness**
verifiable — a stubbed-out subtree carries its authenticated [min, max]
and the verifier checks it cannot overlap the query window.

Keys are unsigned integers (timestamps / block heights / tx numbers);
values are byte strings.  Leaf digests fold in ``H(value)`` rather than
the value so that out-of-range boundary entries can be proven without
shipping their payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_concat, sha256
from repro.errors import ProofError

DEFAULT_FANOUT = 16

#: Root committed by an empty MB-tree.
EMPTY_ROOT: Digest = sha256(b"repro-mbtree-empty")


def _key_bytes(key: int) -> bytes:
    return key.to_bytes(8, "big")


def _leaf_digest(entries: list[tuple[int, Digest]]) -> Digest:
    parts = [b"mb-leaf"]
    for key, value_digest in entries:
        parts.append(_key_bytes(key) + value_digest)
    return hash_concat(*parts)


def _internal_digest(children: list[tuple[int, int, Digest]]) -> Digest:
    parts = [b"mb-int"]
    for min_key, max_key, digest in children:
        parts.append(_key_bytes(min_key) + _key_bytes(max_key) + digest)
    return hash_concat(*parts)


class _LeafNode:
    __slots__ = ("entries", "_digest")

    def __init__(self, entries: list[tuple[int, bytes]]) -> None:
        self.entries = entries  # sorted (key, value)
        self._digest: Digest | None = None

    @property
    def min_key(self) -> int:
        return self.entries[0][0]

    @property
    def max_key(self) -> int:
        return self.entries[-1][0]

    def invalidate(self) -> None:
        self._digest = None

    def digest(self) -> Digest:
        if self._digest is None:
            self._digest = _leaf_digest(
                [(key, sha256(value)) for key, value in self.entries]
            )
        return self._digest


class _InternalNode:
    __slots__ = ("children", "_digest")

    def __init__(self, children: list["_LeafNode | _InternalNode"]) -> None:
        self.children = children
        self._digest: Digest | None = None

    @property
    def min_key(self) -> int:
        return self.children[0].min_key

    @property
    def max_key(self) -> int:
        return self.children[-1].max_key

    def invalidate(self) -> None:
        self._digest = None

    def digest(self) -> Digest:
        if self._digest is None:
            self._digest = _internal_digest(
                [
                    (child.min_key, child.max_key, child.digest())
                    for child in self.children
                ]
            )
        return self._digest


_BNode = _LeafNode | _InternalNode


# -- proof structure -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LeafOpening:
    """An opened leaf: every entry, payloads only for in-range keys."""

    entries: tuple[tuple[int, bytes | None, Digest | None], ...]
    # Each entry is (key, value, None) when in range and the payload is
    # shipped, or (key, None, value_digest) for out-of-range boundaries.


@dataclass(frozen=True, slots=True)
class SubtreeStub:
    """A pruned subtree: its authenticated range and digest."""

    min_key: int
    max_key: int
    digest: Digest


@dataclass(frozen=True, slots=True)
class InternalOpening:
    """An opened internal node: each child opened or stubbed, in order."""

    children: tuple["InternalOpening | LeafOpening | SubtreeStub", ...]


_ProofNode = InternalOpening | LeafOpening | SubtreeStub


@dataclass(frozen=True, slots=True)
class MBRangeProof:
    """Authenticated answer to a range query ``[lo, hi]``."""

    lo: int
    hi: int
    root_opening: _ProofNode | None  # None proves the tree is empty

    def size_bytes(self) -> int:
        return 16 + _proof_node_size(self.root_opening)


def _proof_node_size(node: _ProofNode | None) -> int:
    if node is None:
        return 0
    if isinstance(node, SubtreeStub):
        return 8 + 8 + 32
    if isinstance(node, LeafOpening):
        total = 0
        for key, value, value_digest in node.entries:
            total += 8 + (len(value) if value is not None else 32)
        return total
    return sum(_proof_node_size(child) for child in node.children)


class MerkleBTree:
    """Mutable MB-tree over integer keys with verifiable range queries."""

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        self.fanout = fanout
        self._root: _BNode | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> Digest:
        return self._root.digest() if self._root is not None else EMPTY_ROOT

    def insert(self, key: int, value: bytes) -> None:
        """Insert ``key -> value`` (overwrites an equal key)."""
        if self._root is None:
            self._root = _LeafNode([(key, value)])
            self._size = 1
            return
        split = self._insert(self._root, key, value)
        if split is not None:
            self._root = _InternalNode([self._root, split])

    def get(self, key: int) -> bytes | None:
        node = self._root
        while node is not None:
            if isinstance(node, _LeafNode):
                for entry_key, value in node.entries:
                    if entry_key == key:
                        return value
                return None
            next_node = node.children[0]
            for child in node.children:
                if child.min_key <= key:
                    next_node = child
                else:
                    break
            node = next_node
        return None

    def range_query(self, lo: int, hi: int) -> tuple[list[tuple[int, bytes]], MBRangeProof]:
        """Return all ``(key, value)`` with lo <= key <= hi, plus a proof."""
        if lo > hi:
            raise ProofError("empty range: lo > hi")
        if self._root is None:
            return [], MBRangeProof(lo=lo, hi=hi, root_opening=None)
        results: list[tuple[int, bytes]] = []
        opening = self._open(self._root, lo, hi, results)
        return results, MBRangeProof(lo=lo, hi=hi, root_opening=opening)

    # -- internals ---------------------------------------------------------

    def _insert(self, node: _BNode, key: int, value: bytes) -> _BNode | None:
        """Insert under ``node``; returns the new right sibling on split."""
        node.invalidate()
        if isinstance(node, _LeafNode):
            return self._insert_leaf(node, key, value)
        chosen = 0
        for index, child in enumerate(node.children):
            if index == 0 or child.min_key <= key:
                chosen = index
            else:
                break
        split = self._insert(node.children[chosen], key, value)
        if split is not None:
            node.children.insert(chosen + 1, split)
            if len(node.children) > self.fanout:
                half = len(node.children) // 2
                sibling = _InternalNode(node.children[half:])
                node.children = node.children[:half]
                return sibling
        return None

    def _insert_leaf(self, node: _LeafNode, key: int, value: bytes) -> _LeafNode | None:
        position = len(node.entries)
        for index, (entry_key, _) in enumerate(node.entries):
            if entry_key == key:
                node.entries[index] = (key, value)
                return None
            if entry_key > key:
                position = index
                break
        node.entries.insert(position, (key, value))
        self._size += 1
        if len(node.entries) > self.fanout:
            half = len(node.entries) // 2
            sibling = _LeafNode(node.entries[half:])
            node.entries = node.entries[:half]
            return sibling
        return None

    def _open(
        self, node: _BNode, lo: int, hi: int, results: list[tuple[int, bytes]]
    ) -> _ProofNode:
        if isinstance(node, _LeafNode):
            entries: list[tuple[int, bytes | None, Digest | None]] = []
            for key, value in node.entries:
                if lo <= key <= hi:
                    results.append((key, value))
                    entries.append((key, value, None))
                else:
                    entries.append((key, None, sha256(value)))
            return LeafOpening(entries=tuple(entries))
        children: list[_ProofNode] = []
        for child in node.children:
            if child.max_key < lo or child.min_key > hi:
                children.append(
                    SubtreeStub(child.min_key, child.max_key, child.digest())
                )
            else:
                children.append(self._open(child, lo, hi, results))
        return InternalOpening(children=tuple(children))


def _verify_node(
    node: _ProofNode, lo: int, hi: int, collected: list[tuple[int, bytes]]
) -> tuple[Digest, int, int]:
    """Recompute (digest, min_key, max_key) for a proof node, collecting
    in-range results and raising on any completeness violation."""
    if isinstance(node, SubtreeStub):
        if node.min_key > node.max_key:
            raise ProofError("stub with inverted key range")
        if not (node.max_key < lo or node.min_key > hi):
            raise ProofError("pruned subtree overlaps the query range")
        return node.digest, node.min_key, node.max_key
    if isinstance(node, LeafOpening):
        if not node.entries:
            raise ProofError("opened leaf with no entries")
        hashed: list[tuple[int, Digest]] = []
        previous: int | None = None
        for key, value, value_digest in node.entries:
            if previous is not None and key <= previous:
                raise ProofError("leaf entries out of order")
            previous = key
            if lo <= key <= hi:
                if value is None:
                    raise ProofError("in-range entry withheld from results")
                collected.append((key, value))
                hashed.append((key, sha256(value)))
            else:
                if value_digest is None:
                    raise ProofError("out-of-range entry missing its digest")
                hashed.append((key, value_digest))
        return _leaf_digest(hashed), node.entries[0][0], node.entries[-1][0]
    if not node.children:
        raise ProofError("opened internal node with no children")
    triples: list[tuple[int, int, Digest]] = []
    previous_max: int | None = None
    for child in node.children:
        digest, min_key, max_key = _verify_node(child, lo, hi, collected)
        if previous_max is not None and min_key <= previous_max:
            raise ProofError("children key ranges out of order")
        previous_max = max_key
        triples.append((min_key, max_key, digest))
    return (
        _internal_digest(triples),
        triples[0][0],
        triples[-1][1],
    )


def verify_range(
    root: Digest, results: list[tuple[int, bytes]], proof: MBRangeProof
) -> bool:
    """Verify that ``results`` is the *complete, correct* answer for the
    proof's range under ``root``."""
    if proof.root_opening is None:
        return root == EMPTY_ROOT and not results
    collected: list[tuple[int, bytes]] = []
    try:
        digest, _, _ = _verify_node(proof.root_opening, proof.lo, proof.hi, collected)
    except ProofError:
        return False
    return digest == root and collected == sorted(results)


# -- proof-based inserts (used inside the enclave) --------------------------
#
# DCert's enclave must verify that an authenticated index was updated
# correctly *without holding the index* (Alg. 4 line 9-10 / Alg. 5 line
# 12-13).  An insert proof opens the exact root-to-leaf path the insert
# descends, with every off-path child as an authenticated stub; applying
# the insert (including any cascading node splits, which only ever touch
# the opened path) is then a pure function from (old root, proof) to the
# new root.


@dataclass(frozen=True, slots=True)
class OpenedInternal:
    """An internal node on the insert path: all children as stubs."""

    children: tuple[SubtreeStub, ...]
    taken: int


@dataclass(frozen=True, slots=True)
class OpenedLeaf:
    """The leaf the insert lands in: full entries with value digests."""

    entries: tuple[tuple[int, Digest], ...]


@dataclass(frozen=True, slots=True)
class MBInsertProof:
    """Opening of the insert descent path for one key."""

    key: int
    fanout: int
    path: tuple[OpenedInternal | OpenedLeaf, ...]  # empty for an empty tree

    def size_bytes(self) -> int:
        total = 8 + 2
        for node in self.path:
            if isinstance(node, OpenedInternal):
                total += 2 + len(node.children) * (8 + 8 + 32)
            else:
                total += len(node.entries) * (8 + 32)
        return total


def _descend_choice(mins: list[int], key: int) -> int:
    """The child index the insert descends into (mirrors ``_insert``)."""
    chosen = 0
    for index, min_key in enumerate(mins):
        if index == 0 or min_key <= key:
            chosen = index
        else:
            break
    return chosen


def _prove_insert(self: MerkleBTree, key: int) -> MBInsertProof:
    """Open the descent path ``insert(key)`` would take."""
    path: list[OpenedInternal | OpenedLeaf] = []
    node = self._root
    while node is not None:
        if isinstance(node, _LeafNode):
            path.append(
                OpenedLeaf(
                    entries=tuple(
                        (entry_key, sha256(value))
                        for entry_key, value in node.entries
                    )
                )
            )
            break
        stubs = tuple(
            SubtreeStub(child.min_key, child.max_key, child.digest())
            for child in node.children
        )
        taken = _descend_choice([child.min_key for child in node.children], key)
        path.append(OpenedInternal(children=stubs, taken=taken))
        node = node.children[taken]
    return MBInsertProof(key=key, fanout=self.fanout, path=tuple(path))


def apply_insert(
    old_root: Digest, key: int, value: bytes, proof: MBInsertProof
) -> Digest:
    """Pure function: the MB-tree root after ``insert(key, value)``.

    Verifies the opened path against ``old_root`` first; raises
    :class:`ProofError` on any inconsistency.  Mirrors the exact split
    behaviour of :class:`MerkleBTree`.
    """
    value_digest = sha256(value)
    if not proof.path:
        if old_root != EMPTY_ROOT:
            raise ProofError("non-empty tree needs an opened insert path")
        return _leaf_digest([(key, value_digest)])

    if not isinstance(proof.path[-1], OpenedLeaf):
        raise ProofError("insert path must end at a leaf")

    # Verify the opening bottom-up against the old root, and that each
    # opened internal's taken child matches the next opened node.
    digests_up: list[tuple[Digest, int, int]] = []  # (digest, min, max) per node
    for position in range(len(proof.path) - 1, -1, -1):
        node = proof.path[position]
        if isinstance(node, OpenedLeaf):
            if position != len(proof.path) - 1:
                raise ProofError("leaf opening must terminate the path")
            if not node.entries:
                raise ProofError("opened leaf with no entries")
            keys = [entry_key for entry_key, _ in node.entries]
            if keys != sorted(set(keys)):
                raise ProofError("leaf entries out of order")
            digests_up.append(
                (_leaf_digest(list(node.entries)), keys[0], keys[-1])
            )
        else:
            if not node.children:
                raise ProofError("opened internal with no children")
            if not 0 <= node.taken < len(node.children):
                raise ProofError("taken child out of range")
            below, below_min, below_max = digests_up[-1]
            triples = []
            for index, stub in enumerate(node.children):
                if index == node.taken:
                    if (stub.min_key, stub.max_key, stub.digest) != (
                        below_min,
                        below_max,
                        below,
                    ):
                        raise ProofError("taken child does not match next opening")
                triples.append((stub.min_key, stub.max_key, stub.digest))
            mins = [stub.min_key for stub in node.children]
            if node.taken != _descend_choice(mins, proof.key):
                raise ProofError("opened path is not the insert descent path")
            if mins != sorted(mins):
                raise ProofError("children out of order")
            digests_up.append(
                (_internal_digest(triples), triples[0][0], triples[-1][1])
            )
    if digests_up[-1][0] != old_root:
        raise ProofError("insert proof does not verify against the root")

    # Replay the insert bottom-up.  Each level yields one or two
    # (digest, min, max) nodes (two after a split).
    leaf = proof.path[-1]
    entries = list(leaf.entries)
    replaced = False
    for index, (entry_key, _) in enumerate(entries):
        if entry_key == key:
            entries[index] = (key, value_digest)
            replaced = True
            break
    if not replaced:
        position = len(entries)
        for index, (entry_key, _) in enumerate(entries):
            if entry_key > key:
                position = index
                break
        entries.insert(position, (key, value_digest))
    if len(entries) > proof.fanout:
        half = len(entries) // 2
        left, right = entries[:half], entries[half:]
        carry = [
            (_leaf_digest(left), left[0][0], left[-1][0]),
            (_leaf_digest(right), right[0][0], right[-1][0]),
        ]
    else:
        carry = [(_leaf_digest(entries), entries[0][0], entries[-1][0])]

    for node in reversed(proof.path[:-1]):
        assert isinstance(node, OpenedInternal)
        triples = [
            (stub.min_key, stub.max_key, stub.digest) for stub in node.children
        ]
        triples[node.taken : node.taken + 1] = [
            (min_key, max_key, digest) for digest, min_key, max_key in carry
        ]
        if len(triples) > proof.fanout:
            half = len(triples) // 2
            left_triples, right_triples = triples[:half], triples[half:]
            carry = [
                (
                    _internal_digest(left_triples),
                    left_triples[0][0],
                    left_triples[-1][1],
                ),
                (
                    _internal_digest(right_triples),
                    right_triples[0][0],
                    right_triples[-1][1],
                ),
            ]
        else:
            carry = [
                (_internal_digest(triples), triples[0][0], triples[-1][1])
            ]
    if len(carry) == 2:
        # Root split: a fresh root adopts both halves.
        triples = [
            (min_key, max_key, digest) for digest, min_key, max_key in carry
        ]
        return _internal_digest(triples)
    return carry[0][0]


# Attach the insert-proof method (defined after the proof dataclasses it
# returns; behaviourally identical to an in-class definition).
MerkleBTree.prove_insert = _prove_insert
