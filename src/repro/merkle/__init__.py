"""Authenticated data structures used throughout DCert.

The paper's certification and query layers are built on a family of
Merkle structures, each reproduced here from scratch:

* :mod:`repro.merkle.mht` — the classic binary Merkle Hash Tree, used for
  block transaction roots (Fig. 1 of the paper).
* :mod:`repro.merkle.smt` — a sparse Merkle tree over a fixed keyspace,
  used for the global state commitment.  It supports *compressed* proofs
  and batched updates, which keep the stateless-enclave design (§4.1)
  practical.
* :mod:`repro.merkle.partial` — a partial sparse Merkle tree
  reconstructed from proofs alone; this is exactly what the enclave uses
  to verify read sets and recompute the post-block state root without
  holding the state (Alg. 2, lines 17/22-23).
* :mod:`repro.merkle.mpt` — a Merkle Patricia Trie, the upper level of
  the two-level historical-query index (§5.4, Fig. 5).
* :mod:`repro.merkle.mbtree` — a Merkle B-tree (Li et al., SIGMOD'06),
  the lower level of the two-level index; supports authenticated range
  queries with completeness proofs.
* :mod:`repro.merkle.skiplist` — an authenticated deterministic skip
  list, the LineageChain baseline index.
* :mod:`repro.merkle.mmr` — a Merkle Mountain Range, used by the
  FlyClient-style baseline client (related-work extension).
* :mod:`repro.merkle.inverted` — a Merkle inverted index for conjunctive
  keyword queries over transactions (§5.4, right side of Fig. 5).
"""

from repro.merkle.aggtree import (
    Aggregate,
    AggregateMBTree,
    AggRangeProof,
    verify_aggregate,
)
from repro.merkle.inverted import (
    ConjunctiveProof,
    MerkleInvertedIndex,
    verify_conjunctive,
)
from repro.merkle.mbtree import MBRangeProof, MerkleBTree, verify_range
from repro.merkle.mht import MembershipProof, MerkleTree, verify_membership
from repro.merkle.mmr import MerkleMountainRange, MMRProof, verify_mmr
from repro.merkle.mpt import MerklePatriciaTrie, MPTProof, verify_mpt
from repro.merkle.partial import PartialSMT
from repro.merkle.proofcache import ProofCache
from repro.merkle.skiplist import (
    AuthenticatedSkipList,
    SkipRangeProof,
    verify_window,
)
from repro.merkle.smt import SMTProof, SparseMerkleTree, verify_proof

__all__ = [
    "AggRangeProof",
    "Aggregate",
    "AggregateMBTree",
    "AuthenticatedSkipList",
    "ConjunctiveProof",
    "MBRangeProof",
    "MMRProof",
    "MPTProof",
    "MembershipProof",
    "MerkleBTree",
    "MerkleInvertedIndex",
    "MerkleMountainRange",
    "MerklePatriciaTrie",
    "MerkleTree",
    "PartialSMT",
    "ProofCache",
    "SMTProof",
    "SkipRangeProof",
    "SparseMerkleTree",
    "verify_aggregate",
    "verify_conjunctive",
    "verify_membership",
    "verify_mmr",
    "verify_mpt",
    "verify_proof",
    "verify_range",
    "verify_window",
]
