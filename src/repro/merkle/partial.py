"""Partial sparse Merkle tree reconstructed from proofs alone.

This structure is the heart of the *stateless enclave* design (§4.1 of
the paper).  The CI's outside-enclave program ships, for every key in the
block's read and write sets, a compressed SMT proof against the previous
state root.  Inside the enclave we rebuild just the proven slice of the
tree, which lets the enclave

1. verify that every read value is authentic (Alg. 2, line 17),
2. re-execute the block's transactions against the proven values, and
3. apply the resulting write set and recompute the *new* state root
   (Alg. 2, lines 22-23) — all without ever holding the full state,
   whose size (hundreds of GB on mainnets) dwarfs the 93 MB EPC.

Keys whose proofs were not supplied are simply *unknown*: reading or
writing them raises, which is exactly the behaviour that forces a
malicious CI to supply complete, consistent proofs.
"""

from __future__ import annotations

from repro.crypto.hashing import Digest, hash_node
from repro.errors import ProofError
from repro.merkle.smt import (
    SMTProof,
    default_digests,
    key_path,
    leaf_digest,
)


class PartialSMT:
    """A verified slice of a sparse Merkle tree, mutable on proven keys."""

    def __init__(self, depth: int) -> None:
        self.depth = depth
        self._defaults = default_digests(depth)
        # Known node digests keyed by (level, prefix); level 0 = leaves.
        self._nodes: dict[tuple[int, int], Digest] = {}
        self._values: dict[bytes, bytes | None] = {}

    @classmethod
    def from_proofs(
        cls,
        root: Digest,
        entries: list[tuple[bytes, bytes | None, SMTProof]],
    ) -> "PartialSMT":
        """Verify ``entries`` against ``root`` and merge them into a slice.

        Each entry is ``(key, value_or_None, proof)``; ``None`` asserts
        non-membership.  Raises :class:`ProofError` if any proof fails or
        two proofs disagree about a shared node.
        """
        if not entries:
            raise ProofError("cannot build a partial SMT from zero proofs")
        depth = entries[0][2].depth
        partial = cls(depth)
        for key, value, proof in entries:
            partial._merge_entry(root, key, value, proof)
        return partial

    def __len__(self) -> int:
        return len(self._values)

    def covers(self, key: bytes) -> bool:
        """True when ``key`` was proven and can be read or written."""
        return key in self._values

    def covered_keys(self) -> set[bytes]:
        """The keys currently proven (readable/writable) in this slice."""
        return set(self._values)

    def forget(self, keys) -> None:
        """Evict entries from the slice and prune unneeded node digests.

        This is how a bounded proof cache stays bounded: evicted keys
        must be re-proven before they can be read or written again, and
        every internal digest that no remaining entry's path (or path
        sibling) touches is dropped.  Forgetting a key the slice does
        not hold is a no-op, so untrusted eviction hints are safe to
        apply verbatim.
        """
        dropped = False
        for key in keys:
            if key in self._values:
                del self._values[key]
                dropped = True
        if not dropped:
            return
        if not self._values:
            self._nodes.clear()
            return
        keep: set[tuple[int, int]] = {(self.depth, 0)}
        for key in self._values:
            prefix = key_path(key, self.depth)
            for level in range(self.depth):
                keep.add((level, prefix))
                keep.add((level, prefix ^ 1))
                prefix >>= 1
                keep.add((level + 1, prefix))
        self._nodes = {
            position: digest
            for position, digest in self._nodes.items()
            if position in keep
        }

    def merge_entry(
        self, root: Digest, key: bytes, value: bytes | None, proof: "SMTProof"
    ) -> None:
        """Verify and merge one more proof into the slice.

        Only valid before any :meth:`update` — proofs verify against the
        original root.  Lazy (Ocall-fetching) enclave designs use this
        to grow the slice on demand.
        """
        self._merge_entry(root, key, value, proof)

    def get(self, key: bytes) -> bytes | None:
        """Value at a proven key (None = proven absent)."""
        if key not in self._values:
            raise ProofError("read of a key outside the proven slice")
        return self._values[key]

    def get_raw(self, key: bytes) -> bytes | None:
        """BackingState-protocol alias, so the executor can replay
        transactions directly against the proven slice."""
        return self.get(key)

    def update(self, key: bytes, value: bytes | None) -> None:
        """Write a proven key and recompute digests up to the root."""
        if key not in self._values:
            raise ProofError("write to a key outside the proven slice")
        self._values[key] = value
        path = key_path(key, self.depth)
        self._nodes[(0, path)] = (
            self._defaults[0] if value is None else leaf_digest(key, value)
        )
        prefix = path
        for level in range(1, self.depth + 1):
            prefix >>= 1
            left = self._known_child(level - 1, prefix << 1)
            right = self._known_child(level - 1, (prefix << 1) | 1)
            self._nodes[(level, prefix)] = hash_node(left, right)

    def update_batch(self, items: dict[bytes, bytes | None]) -> None:
        """Apply many writes (all keys must be proven)."""
        for key, value in items.items():
            self.update(key, value)

    @property
    def root(self) -> Digest:
        """Current root of the (partially known, possibly updated) tree."""
        return self._nodes.get((self.depth, 0), self._defaults[self.depth])

    # -- internals -------------------------------------------------------

    def _known_child(self, level: int, prefix: int) -> Digest:
        digest = self._nodes.get((level, prefix))
        if digest is not None:
            return digest
        # A child never named by any proof and never written: it can only
        # be default if some verified proof elided it, which _merge_entry
        # records as an explicit default entry — so absence here is a bug
        # in the supplied proofs, not in us.
        raise ProofError("internal SMT node outside the proven slice")

    def _merge_entry(
        self, root: Digest, key: bytes, value: bytes | None, proof: SMTProof
    ) -> None:
        if proof.depth != self.depth:
            raise ProofError("mixed-depth SMT proofs")
        if proof.key != key:
            raise ProofError("SMT proof bound to a different key")
        path = key_path(key, self.depth)
        digest = self._defaults[0] if value is None else leaf_digest(key, value)
        # Walk to the root, recording every node we learn along the way
        # and cross-checking against nodes learned from earlier proofs.
        self._learn((0, path), digest)
        cursor = 0
        prefix = path
        for level in range(self.depth):
            sibling, cursor = proof.sibling_at(level, cursor)
            if sibling is None:
                sibling = self._defaults[level]
            self._learn((level, prefix ^ 1), sibling)
            if prefix & 1:
                digest = hash_node(sibling, digest)
            else:
                digest = hash_node(digest, sibling)
            prefix >>= 1
            self._learn((level + 1, prefix), digest)
        if cursor != len(proof.siblings):
            raise ProofError("SMT proof has trailing sibling digests")
        if digest != root:
            raise ProofError("SMT proof does not verify against the state root")
        self._values[key] = value

    def _learn(self, position: tuple[int, int], digest: Digest) -> None:
        existing = self._nodes.get(position)
        if existing is not None and existing != digest:
            raise ProofError("inconsistent SMT proofs for the same node")
        self._nodes[position] = digest
