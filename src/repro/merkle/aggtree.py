"""Aggregate-authenticated MB-tree for verifiable aggregation queries.

§5.1 of the paper notes DCert supports "complex queries such as
aggregations [32]" whenever an authenticated query-processing scheme
exists.  This module supplies that scheme: an MB-tree whose every node
additionally authenticates the (count, sum, min, max) aggregate of its
subtree, folded into the node digest.  A ``SUM/COUNT/MIN/MAX/AVG`` over
a key window then needs to *open* only the two boundary paths — fully
covered subtrees contribute their authenticated aggregate directly —
so the proof is O(fanout * depth) no matter how wide the window is.

Keys are unsigned integers (timestamps); values are signed integers
(balances, amounts).  The structural layout, split rules, and insert
machinery deliberately mirror :mod:`repro.merkle.mbtree` so the same
proof-based-insert pattern certifies this index inside the enclave.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_concat, sha256
from repro.errors import ProofError

DEFAULT_FANOUT = 16

#: Root committed by an empty tree.
EMPTY_ROOT: Digest = sha256(b"repro-aggtree-empty")


@dataclass(frozen=True, slots=True)
class Aggregate:
    """The authenticated summary of a key set."""

    count: int
    total: int
    minimum: int
    maximum: int

    @classmethod
    def of_value(cls, value: int) -> "Aggregate":
        return cls(count=1, total=value, minimum=value, maximum=value)

    def merge(self, other: "Aggregate") -> "Aggregate":
        return Aggregate(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    def encode(self) -> bytes:
        return (
            self.count.to_bytes(8, "big")
            + self.total.to_bytes(16, "big", signed=True)
            + self.minimum.to_bytes(16, "big", signed=True)
            + self.maximum.to_bytes(16, "big", signed=True)
        )


#: Identity for merging (encodes distinctly from any real aggregate).
def _merge_many(aggregates: list[Aggregate]) -> Aggregate | None:
    result: Aggregate | None = None
    for aggregate in aggregates:
        result = aggregate if result is None else result.merge(aggregate)
    return result


def _key_bytes(key: int) -> bytes:
    return key.to_bytes(8, "big")


def _value_bytes(value: int) -> bytes:
    return value.to_bytes(16, "big", signed=True)


def _leaf_digest(entries: list[tuple[int, int]]) -> Digest:
    parts = [b"agg-leaf"]
    for key, value in entries:
        parts.append(_key_bytes(key) + _value_bytes(value))
    return hash_concat(*parts)


def _internal_digest(children: list[tuple[int, int, Aggregate, Digest]]) -> Digest:
    parts = [b"agg-int"]
    for min_key, max_key, aggregate, digest in children:
        parts.append(
            _key_bytes(min_key) + _key_bytes(max_key) + aggregate.encode() + digest
        )
    return hash_concat(*parts)


def _leaf_aggregate(entries: list[tuple[int, int]]) -> Aggregate:
    merged = _merge_many([Aggregate.of_value(value) for _, value in entries])
    assert merged is not None
    return merged


class _LeafNode:
    __slots__ = ("entries", "_digest")

    def __init__(self, entries: list[tuple[int, int]]) -> None:
        self.entries = entries
        self._digest: Digest | None = None

    @property
    def min_key(self) -> int:
        return self.entries[0][0]

    @property
    def max_key(self) -> int:
        return self.entries[-1][0]

    def aggregate(self) -> Aggregate:
        return _leaf_aggregate(self.entries)

    def invalidate(self) -> None:
        self._digest = None

    def digest(self) -> Digest:
        if self._digest is None:
            self._digest = _leaf_digest(self.entries)
        return self._digest


class _InternalNode:
    __slots__ = ("children", "_digest")

    def __init__(self, children: list["_LeafNode | _InternalNode"]) -> None:
        self.children = children
        self._digest: Digest | None = None

    @property
    def min_key(self) -> int:
        return self.children[0].min_key

    @property
    def max_key(self) -> int:
        return self.children[-1].max_key

    def aggregate(self) -> Aggregate:
        merged = _merge_many([child.aggregate() for child in self.children])
        assert merged is not None
        return merged

    def invalidate(self) -> None:
        self._digest = None

    def digest(self) -> Digest:
        if self._digest is None:
            self._digest = _internal_digest(
                [
                    (child.min_key, child.max_key, child.aggregate(), child.digest())
                    for child in self.children
                ]
            )
        return self._digest


_ANode = _LeafNode | _InternalNode


# -- aggregate query proofs ---------------------------------------------------


@dataclass(frozen=True, slots=True)
class AggStub:
    """A subtree summarized by its authenticated range + aggregate."""

    min_key: int
    max_key: int
    aggregate: Aggregate
    digest: Digest


@dataclass(frozen=True, slots=True)
class AggLeafOpening:
    """A boundary leaf, fully listed (keys and integer values)."""

    entries: tuple[tuple[int, int], ...]


@dataclass(frozen=True, slots=True)
class AggInternalOpening:
    """An internal node on a boundary path."""

    children: tuple["AggInternalOpening | AggLeafOpening | AggStub", ...]


_AggProofNode = AggInternalOpening | AggLeafOpening | AggStub


@dataclass(frozen=True, slots=True)
class AggRangeProof:
    """Proof for an aggregate over ``[lo, hi]``."""

    lo: int
    hi: int
    root_opening: _AggProofNode | None  # None: empty tree

    def size_bytes(self) -> int:
        return 16 + _agg_node_size(self.root_opening)


def _agg_node_size(node: _AggProofNode | None) -> int:
    if node is None:
        return 0
    if isinstance(node, AggStub):
        return 8 + 8 + 56 + 32
    if isinstance(node, AggLeafOpening):
        return len(node.entries) * (8 + 16)
    return sum(_agg_node_size(child) for child in node.children)


class AggregateMBTree:
    """MB-tree with authenticated per-node aggregates."""

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise ValueError("fanout must be at least 4")
        self.fanout = fanout
        self._root: _ANode | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def root(self) -> Digest:
        return self._root.digest() if self._root is not None else EMPTY_ROOT

    def get(self, key: int) -> int | None:
        node = self._root
        while node is not None:
            if isinstance(node, _LeafNode):
                for entry_key, value in node.entries:
                    if entry_key == key:
                        return value
                return None
            chosen = node.children[0]
            for child in node.children:
                if child.min_key <= key:
                    chosen = child
                else:
                    break
            node = chosen
        return None

    def insert(self, key: int, value: int) -> None:
        """Insert ``key -> value`` (overwrites an equal key)."""
        if self._root is None:
            self._root = _LeafNode([(key, value)])
            self._size = 1
            return
        split = self._insert(self._root, key, value)
        if split is not None:
            self._root = _InternalNode([self._root, split])

    def aggregate_query(self, lo: int, hi: int) -> tuple[Aggregate | None, AggRangeProof]:
        """The aggregate of all keys in ``[lo, hi]``, plus its proof.

        Returns ``None`` as the aggregate when the window is empty.
        """
        if lo > hi:
            raise ProofError("empty range: lo > hi")
        if self._root is None:
            return None, AggRangeProof(lo=lo, hi=hi, root_opening=None)
        collected: list[Aggregate] = []
        opening = self._open(self._root, lo, hi, collected)
        return _merge_many(collected), AggRangeProof(lo=lo, hi=hi, root_opening=opening)

    # -- internals -----------------------------------------------------------

    def _insert(self, node: _ANode, key: int, value: int) -> _ANode | None:
        node.invalidate()
        if isinstance(node, _LeafNode):
            return self._insert_leaf(node, key, value)
        chosen = 0
        for index, child in enumerate(node.children):
            if index == 0 or child.min_key <= key:
                chosen = index
            else:
                break
        split = self._insert(node.children[chosen], key, value)
        if split is not None:
            node.children.insert(chosen + 1, split)
            if len(node.children) > self.fanout:
                half = len(node.children) // 2
                sibling = _InternalNode(node.children[half:])
                node.children = node.children[:half]
                return sibling
        return None

    def _insert_leaf(self, node: _LeafNode, key: int, value: int) -> _LeafNode | None:
        position = len(node.entries)
        for index, (entry_key, _) in enumerate(node.entries):
            if entry_key == key:
                node.entries[index] = (key, value)
                return None
            if entry_key > key:
                position = index
                break
        node.entries.insert(position, (key, value))
        self._size += 1
        if len(node.entries) > self.fanout:
            half = len(node.entries) // 2
            sibling = _LeafNode(node.entries[half:])
            node.entries = node.entries[:half]
            return sibling
        return None

    def _open(
        self, node: _ANode, lo: int, hi: int, collected: list[Aggregate]
    ) -> _AggProofNode:
        if isinstance(node, _LeafNode):
            in_range = [
                Aggregate.of_value(value)
                for key, value in node.entries
                if lo <= key <= hi
            ]
            merged = _merge_many(in_range)
            if merged is not None:
                collected.append(merged)
            return AggLeafOpening(entries=tuple(node.entries))
        children: list[_AggProofNode] = []
        for child in node.children:
            if child.max_key < lo or child.min_key > hi:
                # Disjoint: stub, contributes nothing.
                children.append(
                    AggStub(child.min_key, child.max_key, child.aggregate(), child.digest())
                )
            elif lo <= child.min_key and child.max_key <= hi:
                # Fully covered: stub whose aggregate is the contribution.
                aggregate = child.aggregate()
                collected.append(aggregate)
                children.append(
                    AggStub(child.min_key, child.max_key, aggregate, child.digest())
                )
            else:
                children.append(self._open(child, lo, hi, collected))
        return AggInternalOpening(children=tuple(children))


def _verify_node(
    node: _AggProofNode, lo: int, hi: int, collected: list[Aggregate]
) -> tuple[Digest, int, int, Aggregate]:
    """Returns (digest, min_key, max_key, aggregate), collecting in-range
    contributions and raising on inconsistency."""
    if isinstance(node, AggStub):
        if node.min_key > node.max_key:
            raise ProofError("stub with inverted key range")
        if node.aggregate.count <= 0:
            raise ProofError("stub with non-positive count")
        if lo <= node.min_key and node.max_key <= hi:
            collected.append(node.aggregate)
        elif not (node.max_key < lo or node.min_key > hi):
            raise ProofError("partially overlapping subtree left unopened")
        return node.digest, node.min_key, node.max_key, node.aggregate
    if isinstance(node, AggLeafOpening):
        if not node.entries:
            raise ProofError("opened leaf with no entries")
        previous: int | None = None
        for key, _ in node.entries:
            if previous is not None and key <= previous:
                raise ProofError("leaf entries out of order")
            previous = key
        in_range = _merge_many(
            [Aggregate.of_value(v) for k, v in node.entries if lo <= k <= hi]
        )
        if in_range is not None:
            collected.append(in_range)
        return (
            _leaf_digest(list(node.entries)),
            node.entries[0][0],
            node.entries[-1][0],
            _leaf_aggregate(list(node.entries)),
        )
    if not node.children:
        raise ProofError("opened internal node with no children")
    quads: list[tuple[int, int, Aggregate, Digest]] = []
    previous_max: int | None = None
    merged: Aggregate | None = None
    for child in node.children:
        digest, min_key, max_key, aggregate = _verify_node(child, lo, hi, collected)
        if previous_max is not None and min_key <= previous_max:
            raise ProofError("children key ranges out of order")
        previous_max = max_key
        quads.append((min_key, max_key, aggregate, digest))
        merged = aggregate if merged is None else merged.merge(aggregate)
    assert merged is not None
    return _internal_digest(quads), quads[0][0], quads[-1][1], merged


def verify_aggregate(
    root: Digest, result: Aggregate | None, proof: AggRangeProof
) -> bool:
    """Verify that ``result`` is the exact aggregate of ``[lo, hi]``."""
    if proof.root_opening is None:
        return root == EMPTY_ROOT and result is None
    collected: list[Aggregate] = []
    try:
        digest, _, _, _ = _verify_node(proof.root_opening, proof.lo, proof.hi, collected)
    except ProofError:
        return False
    if digest != root:
        return False
    return _merge_many(collected) == result


# -- proof-based inserts (used inside the enclave) ---------------------------
#
# Same pattern as repro.merkle.mbtree: the insert descent path is opened
# with aggregate-carrying stubs for off-path children, and applying the
# insert (splits included) is a pure function of (old root, proof).


@dataclass(frozen=True, slots=True)
class AggOpenedInternal:
    """An internal node on the insert path: all children as stubs."""

    children: tuple[AggStub, ...]
    taken: int


@dataclass(frozen=True, slots=True)
class AggOpenedLeaf:
    """The leaf the insert lands in: full (key, value) entries."""

    entries: tuple[tuple[int, int], ...]


@dataclass(frozen=True, slots=True)
class AggInsertProof:
    """Opening of the insert descent path for one key."""

    key: int
    fanout: int
    path: tuple[AggOpenedInternal | AggOpenedLeaf, ...]

    def size_bytes(self) -> int:
        total = 8 + 2
        for node in self.path:
            if isinstance(node, AggOpenedInternal):
                total += 2 + len(node.children) * (8 + 8 + 56 + 32)
            else:
                total += len(node.entries) * (8 + 16)
        return total


def _descend_choice(mins: list[int], key: int) -> int:
    chosen = 0
    for index, min_key in enumerate(mins):
        if index == 0 or min_key <= key:
            chosen = index
        else:
            break
    return chosen


def _prove_insert(self: AggregateMBTree, key: int) -> AggInsertProof:
    """Open the descent path ``insert(key)`` would take."""
    path: list[AggOpenedInternal | AggOpenedLeaf] = []
    node = self._root
    while node is not None:
        if isinstance(node, _LeafNode):
            path.append(AggOpenedLeaf(entries=tuple(node.entries)))
            break
        stubs = tuple(
            AggStub(child.min_key, child.max_key, child.aggregate(), child.digest())
            for child in node.children
        )
        taken = _descend_choice([child.min_key for child in node.children], key)
        path.append(AggOpenedInternal(children=stubs, taken=taken))
        node = node.children[taken]
    return AggInsertProof(key=key, fanout=self.fanout, path=tuple(path))


AggregateMBTree.prove_insert = _prove_insert


def apply_insert(old_root: Digest, key: int, value: int, proof: AggInsertProof) -> Digest:
    """Pure function: the tree root after ``insert(key, value)``.

    Verifies the opened path against ``old_root``; mirrors the exact
    split behaviour of :class:`AggregateMBTree`.
    """
    if not proof.path:
        if old_root != EMPTY_ROOT:
            raise ProofError("non-empty tree needs an opened insert path")
        return _leaf_digest([(key, value)])
    if not isinstance(proof.path[-1], AggOpenedLeaf):
        raise ProofError("insert path must end at a leaf")

    # Verify the opening bottom-up against the old root.
    verified_up: list[tuple[Digest, int, int, Aggregate]] = []
    for position in range(len(proof.path) - 1, -1, -1):
        node = proof.path[position]
        if isinstance(node, AggOpenedLeaf):
            if position != len(proof.path) - 1:
                raise ProofError("leaf opening must terminate the path")
            if not node.entries:
                raise ProofError("opened leaf with no entries")
            keys = [entry_key for entry_key, _ in node.entries]
            if keys != sorted(set(keys)):
                raise ProofError("leaf entries out of order")
            verified_up.append(
                (
                    _leaf_digest(list(node.entries)),
                    keys[0],
                    keys[-1],
                    _leaf_aggregate(list(node.entries)),
                )
            )
        else:
            if not node.children:
                raise ProofError("opened internal with no children")
            if not 0 <= node.taken < len(node.children):
                raise ProofError("taken child out of range")
            below_digest, below_min, below_max, below_agg = verified_up[-1]
            taken_stub = node.children[node.taken]
            if (
                taken_stub.min_key,
                taken_stub.max_key,
                taken_stub.aggregate,
                taken_stub.digest,
            ) != (below_min, below_max, below_agg, below_digest):
                raise ProofError("taken child does not match next opening")
            mins = [stub.min_key for stub in node.children]
            if node.taken != _descend_choice(mins, proof.key):
                raise ProofError("opened path is not the insert descent path")
            if mins != sorted(mins):
                raise ProofError("children out of order")
            quads = [
                (stub.min_key, stub.max_key, stub.aggregate, stub.digest)
                for stub in node.children
            ]
            merged = _merge_many([stub.aggregate for stub in node.children])
            assert merged is not None
            verified_up.append(
                (_internal_digest(quads), quads[0][0], quads[-1][1], merged)
            )
    if verified_up[-1][0] != old_root:
        raise ProofError("insert proof does not verify against the root")

    # Replay the insert bottom-up; each level carries 1-2 child quads.
    leaf = proof.path[-1]
    entries = list(leaf.entries)
    replaced = False
    for index, (entry_key, _) in enumerate(entries):
        if entry_key == key:
            entries[index] = (key, value)
            replaced = True
            break
    if not replaced:
        position = len(entries)
        for index, (entry_key, _) in enumerate(entries):
            if entry_key > key:
                position = index
                break
        entries.insert(position, (key, value))

    def leaf_quad(leaf_entries):
        return (
            _leaf_digest(leaf_entries),
            leaf_entries[0][0],
            leaf_entries[-1][0],
            _leaf_aggregate(leaf_entries),
        )

    if len(entries) > proof.fanout:
        half = len(entries) // 2
        carry = [leaf_quad(entries[:half]), leaf_quad(entries[half:])]
    else:
        carry = [leaf_quad(entries)]

    for node in reversed(proof.path[:-1]):
        assert isinstance(node, AggOpenedInternal)
        quads = [
            (stub.min_key, stub.max_key, stub.aggregate, stub.digest)
            for stub in node.children
        ]
        carry_quads = [
            (min_key, max_key, aggregate, digest)
            for digest, min_key, max_key, aggregate in carry
        ]
        quads[node.taken : node.taken + 1] = carry_quads

        def internal_quad(sub):
            merged = _merge_many([aggregate for _, _, aggregate, _ in sub])
            assert merged is not None
            return (_internal_digest(sub), sub[0][0], sub[-1][1], merged)

        if len(quads) > proof.fanout:
            half = len(quads) // 2
            carry = [internal_quad(quads[:half]), internal_quad(quads[half:])]
        else:
            carry = [internal_quad(quads)]
    if len(carry) == 2:
        quads = [
            (min_key, max_key, aggregate, digest)
            for digest, min_key, max_key, aggregate in carry
        ]
        return _internal_digest(quads)
    return carry[0][0]
