"""Bounded LRU proof cache for batched certification.

Consecutive blocks touch overlapping state: a hot contract cell read by
block ``i`` is very likely read (or written) again by block ``i+1``.
In the batched issuance path the enclave *carries* its verified
:class:`~repro.merkle.partial.PartialSMT` slice from block to block
(see ``DCertEnclaveProgram.sig_gen_batch``), so the CI only needs to
ship an SMT proof for keys the enclave does **not** already cover.

:class:`ProofCache` is the CI-side mirror of that carried slice: a
bounded LRU over state keys.  The CI consults it while staging a block
(``lookup``), ships proofs only for misses (``admit``), and at every
batch boundary tells the enclave which keys fell out of the LRU so the
enclave's slice stays in lock-step (``repro.core.issuer`` computes the
eviction set from :meth:`keys`).

The cache is pure *performance* state and entirely untrusted: the
enclave verifies every shipped proof and fails loudly on any read of a
key outside its slice, so a CI whose mirror drifts (or lies) can only
abort its own certification, never forge one.
"""

from __future__ import annotations

from collections import OrderedDict


class ProofCache:
    """Bounded LRU over state keys whose proof material is retained.

    ``capacity == 0`` disables the cache (every lookup is a miss and
    nothing is admitted), which degenerates to shipping full update
    proofs — the sequential path's behaviour.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("proof cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: OrderedDict[bytes, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: bytes) -> bool:
        return key in self._entries

    def lookup(self, key: bytes) -> bool:
        """True when ``key``'s proof material is retained (refreshes
        its recency); records the hit/miss either way."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def admit(self, key: bytes) -> None:
        """Retain ``key``, evicting least-recently-used keys beyond
        capacity.  Evicted keys simply drop out of :meth:`keys`; the
        caller reconciles the enclave side at the next batch boundary."""
        if self.capacity == 0:
            return
        self._entries[key] = None
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def keys(self) -> set[bytes]:
        """The currently retained keys (the mirror of the enclave slice)."""
        return set(self._entries)

    def clear(self) -> None:
        """Drop every entry (e.g. after an interleaved sequential
        certification invalidated the enclave's carried slice)."""
        self._entries.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Wire/JSON-safe counters for metrics snapshots."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
        }
