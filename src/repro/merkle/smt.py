"""Sparse Merkle tree committing to the blockchain's global state.

The state of the chain (Fig. 1's ``H_state``) is a mapping from 32-byte
keys to byte-string values.  We commit to it with a fixed-depth sparse
Merkle tree: every possible key prefix addresses a node, absent subtrees
hash to a per-level *default digest*, and only non-default nodes are
stored.  This gives

* O(depth) inserts/updates/deletes,
* membership **and non-membership** proofs of the same shape, and
* *compressed* proofs (default siblings are elided with a bitmap), which
  keeps the update proofs shipped into the enclave small — the property
  the stateless-enclave design of §4.1 depends on.

``depth`` is configurable.  The default of 64 bits of path (keys are
hashes, so accidental collisions are negligible at simulation scale) is
a deliberate speed/security knob for the benchmark harness; security
tests also run at depth 256 where collisions are cryptographically
impossible.  A path collision between *distinct* keys raises rather than
silently corrupting state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_leaf, hash_node
from repro.errors import ProofError, StateError

DEFAULT_DEPTH = 64

#: Digest of an empty leaf; defaults[d] is the digest of an empty subtree
#: whose leaves sit d levels below.
_EMPTY_LEAF: Digest = hash_leaf(b"repro-smt-empty")


def default_digests(depth: int) -> list[Digest]:
    """Return ``defaults[0..depth]`` for an SMT of the given depth."""
    defaults = [_EMPTY_LEAF]
    for _ in range(depth):
        defaults.append(hash_node(defaults[-1], defaults[-1]))
    return defaults


def leaf_digest(key: bytes, value: bytes) -> Digest:
    """Digest of an occupied leaf.

    The *full* key is folded in (not just the path bits), so even at
    truncated depths a forged value under a colliding path cannot verify.
    """
    return hash_leaf(b"\x01" + key + value)


def key_path(key: bytes, depth: int) -> int:
    """Map a 32-byte key to its ``depth``-bit path (top bits, big-endian)."""
    if len(key) != 32:
        raise StateError("SMT keys must be 32 bytes")
    return int.from_bytes(key, "big") >> (256 - depth)


@dataclass(frozen=True, slots=True)
class SMTProof:
    """A (non-)membership proof for one key.

    ``siblings`` lists only the non-default sibling digests bottom-up;
    ``default_mask`` bit ``k`` (leaf level is bit 0) is set when the
    sibling at level ``k`` is the default digest and therefore elided.
    """

    key: bytes
    depth: int
    default_mask: int
    siblings: tuple[Digest, ...]

    def sibling_at(self, level: int, cursor: int) -> tuple[Digest | None, int]:
        """Internal: sibling digest at ``level`` plus the advanced cursor."""
        if self.default_mask >> level & 1:
            return None, cursor
        return self.siblings[cursor], cursor + 1

    def size_bytes(self) -> int:
        """Serialized size: key + depth byte + mask bitmap + digests."""
        return 32 + 1 + (self.depth + 7) // 8 + 32 * len(self.siblings)


class SparseMerkleTree:
    """Mutable sparse Merkle tree with compressed (non-)membership proofs."""

    def __init__(self, depth: int = DEFAULT_DEPTH) -> None:
        if not 1 <= depth <= 256:
            raise StateError("SMT depth must be in [1, 256]")
        self.depth = depth
        self._defaults = default_digests(depth)
        self._values: dict[bytes, bytes] = {}
        self._path_to_key: dict[int, bytes] = {}
        # Non-default node digests keyed by (level, prefix); level 0 is the
        # leaf level, level == depth is the root.  ``prefix`` is the path
        # truncated to ``depth - level`` bits.
        self._nodes: dict[tuple[int, int], Digest] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: bytes) -> bool:
        return key in self._values

    @property
    def root(self) -> Digest:
        return self._nodes.get((self.depth, 0), self._defaults[self.depth])

    def get(self, key: bytes) -> bytes | None:
        """Return the value stored at ``key`` or None."""
        return self._values.get(key)

    def items(self) -> list[tuple[bytes, bytes]]:
        """All (key, value) pairs, unordered."""
        return list(self._values.items())

    def update(self, key: bytes, value: bytes | None) -> None:
        """Set ``key`` to ``value`` (None deletes), updating path digests."""
        self._set_leaf(key, value)
        path = key_path(key, self.depth)
        self._recompute_path(path)

    def update_batch(self, items: dict[bytes, bytes | None]) -> None:
        """Apply many writes, recomputing shared internal nodes only once."""
        dirty = set()
        for key, value in items.items():
            self._set_leaf(key, value)
            dirty.add(key_path(key, self.depth))
        for level in range(1, self.depth + 1):
            parents = {path >> 1 for path in dirty}
            for prefix in parents:
                self._recompute_node(level, prefix)
            dirty = parents

    def prove(self, key: bytes) -> SMTProof:
        """Build a compressed (non-)membership proof for ``key``."""
        path = key_path(key, self.depth)
        siblings: list[Digest] = []
        mask = 0
        prefix = path
        for level in range(self.depth):
            sibling = self._nodes.get((level, prefix ^ 1))
            if sibling is None:
                mask |= 1 << level
            else:
                siblings.append(sibling)
            prefix >>= 1
        return SMTProof(
            key=key, depth=self.depth, default_mask=mask, siblings=tuple(siblings)
        )

    # -- internals -------------------------------------------------------

    def _set_leaf(self, key: bytes, value: bytes | None) -> None:
        path = key_path(key, self.depth)
        holder = self._path_to_key.get(path)
        if holder is not None and holder != key:
            raise StateError(
                "SMT path collision between distinct keys; increase depth"
            )
        if value is None:
            self._values.pop(key, None)
            self._path_to_key.pop(path, None)
            self._nodes.pop((0, path), None)
        else:
            self._values[key] = value
            self._path_to_key[path] = key
            self._nodes[(0, path)] = leaf_digest(key, value)

    def _recompute_path(self, path: int) -> None:
        prefix = path
        for level in range(1, self.depth + 1):
            prefix >>= 1
            self._recompute_node(level, prefix)

    def _recompute_node(self, level: int, prefix: int) -> None:
        child_default = self._defaults[level - 1]
        left = self._nodes.get((level - 1, prefix << 1), child_default)
        right = self._nodes.get((level - 1, (prefix << 1) | 1), child_default)
        if left == child_default and right == child_default:
            self._nodes.pop((level, prefix), None)
        else:
            self._nodes[(level, prefix)] = hash_node(left, right)


def verify_proof(
    root: Digest, key: bytes, value: bytes | None, proof: SMTProof
) -> bool:
    """Check an :class:`SMTProof` asserting ``key -> value`` under ``root``.

    ``value is None`` verifies *non-membership* (the leaf is empty).
    """
    if proof.key != key:
        return False
    defaults = default_digests(proof.depth)
    digest = defaults[0] if value is None else leaf_digest(key, value)
    path = key_path(key, proof.depth)
    cursor = 0
    for level in range(proof.depth):
        sibling, cursor = proof.sibling_at(level, cursor)
        if sibling is None:
            sibling = defaults[level]
        if path >> level & 1:
            digest = hash_node(sibling, digest)
        else:
            digest = hash_node(digest, sibling)
    if cursor != len(proof.siblings):
        raise ProofError("SMT proof has trailing sibling digests")
    return digest == root
