"""Merkle inverted index for conjunctive keyword queries.

The right half of the paper's Fig. 5: the SP maintains, per keyword, a
sorted posting list of transaction ids; DCert certifies the index's root
digest so superlight clients can run ``[Stock AND Bank]``-style queries
with integrity (following Goodrich et al.'s authenticated web-crawler
scheme [12]).

Structure: each keyword's posting list is an MB-tree keyed by tx id; a
Merkle Patricia Trie maps keyword bytes to the posting tree's root; the
index commitment is the MPT root.  A conjunctive query proves

1. each keyword's posting root (MPT membership / non-membership),
2. the *complete* posting list of the rarest keyword (full-range MB
   proof), and
3. per candidate id, membership or absence in every other keyword's
   tree (point-range MB proofs),

so tampering with or withholding any result id is detectable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest
from repro.errors import QueryError
from repro.merkle.mbtree import MBRangeProof, MerkleBTree, verify_range
from repro.merkle.mpt import MerklePatriciaTrie, MPTProof, verify_mpt

_FULL_RANGE = (0, (1 << 63) - 1)


@dataclass(frozen=True, slots=True)
class KeywordProof:
    """Everything proving one keyword's posting tree root."""

    keyword: str
    posting_root: Digest | None  # None: keyword absent from the dictionary
    dictionary_proof: MPTProof

    def size_bytes(self) -> int:
        return len(self.keyword) + 32 + self.dictionary_proof.size_bytes()


@dataclass(frozen=True, slots=True)
class ConjunctiveProof:
    """Proof for a conjunctive (AND) keyword query."""

    keywords: tuple[str, ...]
    pivot: str  # the keyword whose full posting list anchors the result
    keyword_proofs: tuple[KeywordProof, ...]
    pivot_postings: tuple[int, ...]
    pivot_proof: MBRangeProof | None
    # For every pivot id and every non-pivot keyword, a point-range proof
    # of membership or absence, in (id, keyword) iteration order.
    membership_proofs: tuple[tuple[int, str, bool, MBRangeProof], ...]

    def size_bytes(self) -> int:
        total = sum(len(k) for k in self.keywords) + len(self.pivot)
        total += sum(p.size_bytes() for p in self.keyword_proofs)
        total += 8 * len(self.pivot_postings)
        if self.pivot_proof is not None:
            total += self.pivot_proof.size_bytes()
        for _, keyword, _, proof in self.membership_proofs:
            total += 8 + len(keyword) + 1 + proof.size_bytes()
        return total


class MerkleInvertedIndex:
    """SP-side inverted index: keyword -> authenticated posting list."""

    def __init__(self, fanout: int = 16) -> None:
        self._fanout = fanout
        self._postings: dict[str, MerkleBTree] = {}
        self._dictionary = MerklePatriciaTrie()

    @property
    def root(self) -> Digest:
        """Index commitment (what DCert's certificates sign)."""
        return self._dictionary.root

    def keywords(self) -> list[str]:
        return sorted(self._postings)

    def add_document(self, tx_id: int, keywords: list[str]) -> None:
        """Register transaction ``tx_id`` under each keyword."""
        for keyword in set(keywords):
            tree = self._postings.get(keyword)
            if tree is None:
                tree = MerkleBTree(fanout=self._fanout)
                self._postings[keyword] = tree
            tree.insert(tx_id, tx_id.to_bytes(8, "big"))
            self._dictionary.insert(keyword.encode("utf-8"), tree.root)

    def query_conjunctive(
        self, keywords: list[str]
    ) -> tuple[list[int], ConjunctiveProof]:
        """All tx ids containing *every* keyword, plus an integrity proof."""
        if not keywords:
            raise QueryError("conjunctive query needs at least one keyword")
        unique = sorted(set(keywords))
        keyword_proofs = []
        posting_sizes: dict[str, int] = {}
        for keyword in unique:
            tree = self._postings.get(keyword)
            keyword_proofs.append(
                KeywordProof(
                    keyword=keyword,
                    posting_root=tree.root if tree is not None else None,
                    dictionary_proof=self._dictionary.prove(keyword.encode("utf-8")),
                )
            )
            posting_sizes[keyword] = len(tree) if tree is not None else 0
        pivot = min(unique, key=lambda k: posting_sizes[k])
        if posting_sizes[pivot] == 0 and pivot not in self._postings:
            # Some keyword is absent entirely: result is empty and the
            # dictionary non-membership proof alone establishes it.
            return [], ConjunctiveProof(
                keywords=tuple(unique),
                pivot=pivot,
                keyword_proofs=tuple(keyword_proofs),
                pivot_postings=(),
                pivot_proof=None,
                membership_proofs=(),
            )
        pivot_tree = self._postings[pivot]
        pivot_entries, pivot_proof = pivot_tree.range_query(*_FULL_RANGE)
        pivot_ids = [key for key, _ in pivot_entries]
        membership_proofs: list[tuple[int, str, bool, MBRangeProof]] = []
        results = []
        for tx_id in pivot_ids:
            in_all = True
            for keyword in unique:
                if keyword == pivot:
                    continue
                entries, proof = self._postings[keyword].range_query(tx_id, tx_id)
                present = bool(entries)
                membership_proofs.append((tx_id, keyword, present, proof))
                in_all = in_all and present
            if in_all:
                results.append(tx_id)
        return results, ConjunctiveProof(
            keywords=tuple(unique),
            pivot=pivot,
            keyword_proofs=tuple(keyword_proofs),
            pivot_postings=tuple(pivot_ids),
            pivot_proof=pivot_proof,
            membership_proofs=tuple(membership_proofs),
        )


def verify_conjunctive(
    root: Digest, results: list[int], proof: ConjunctiveProof
) -> bool:
    """Verify a conjunctive query answer against the index commitment."""
    posting_roots: dict[str, Digest | None] = {}
    for keyword_proof in proof.keyword_proofs:
        ok = verify_mpt(
            root,
            keyword_proof.keyword.encode("utf-8"),
            keyword_proof.posting_root,
            keyword_proof.dictionary_proof,
        )
        if not ok:
            return False
        posting_roots[keyword_proof.keyword] = keyword_proof.posting_root
    if set(posting_roots) != set(proof.keywords) or proof.pivot not in posting_roots:
        return False

    pivot_root = posting_roots[proof.pivot]
    if pivot_root is None:
        # Absent keyword: the conjunction is provably empty.
        return not results and not proof.pivot_postings
    if proof.pivot_proof is None:
        return False
    pivot_entries = [(tx_id, tx_id.to_bytes(8, "big")) for tx_id in proof.pivot_postings]
    if not verify_range(pivot_root, pivot_entries, proof.pivot_proof):
        return False
    if (proof.pivot_proof.lo, proof.pivot_proof.hi) != _FULL_RANGE:
        return False  # pivot list must be complete, not a sub-range

    # Index the point proofs and make sure every (pivot id, keyword)
    # pair is covered exactly once.
    point: dict[tuple[int, str], tuple[bool, MBRangeProof]] = {}
    for tx_id, keyword, present, range_proof in proof.membership_proofs:
        if (tx_id, keyword) in point:
            return False
        point[(tx_id, keyword)] = (present, range_proof)
    others = [k for k in proof.keywords if k != proof.pivot]
    expected = []
    for tx_id in proof.pivot_postings:
        in_all = True
        for keyword in others:
            if (tx_id, keyword) not in point:
                return False
            present, range_proof = point[(tx_id, keyword)]
            posting_root = posting_roots[keyword]
            if posting_root is None:
                return False  # absent keyword cannot prove membership
            entries = [(tx_id, tx_id.to_bytes(8, "big"))] if present else []
            if (range_proof.lo, range_proof.hi) != (tx_id, tx_id):
                return False
            if not verify_range(posting_root, entries, range_proof):
                return False
            in_all = in_all and present
        if in_all:
            expected.append(tx_id)
    if len(point) != len(proof.pivot_postings) * len(others):
        return False
    return expected == sorted(results)
