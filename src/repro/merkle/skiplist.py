"""Authenticated deterministic skip list (the LineageChain baseline).

LineageChain (Ruan et al., PVLDB'19) indexes the version history of each
account with an authenticated deterministic skip list whose *head is the
latest version*: every element keeps hash-authenticated backward pointers
at power-of-two distances, and the commitment is the digest of the latest
element.  A historical query anchors at the head and follows backward
pointers into the queried time window, so both latency and proof size
grow with the window's distance from the latest block — exactly the
behaviour the paper's Fig. 11 contrasts with DCert's MB-tree, whose
search cost is flat in that distance.

Concretely, element ``i`` (0-based append order) carries one pointer per
level ``l`` with ``2^l | i``, pointing to element ``i - 2^l``; its digest
folds in its key, value digest, and the digests of all its pointers.
Appending therefore never rewrites history (old digests are immutable),
which is what makes the structure cheap for the SP to maintain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_concat, sha256
from repro.errors import ProofError

#: Commitment of an empty skip list.
EMPTY_ROOT: Digest = sha256(b"repro-asl-empty")


def pointer_levels(index: int) -> list[int]:
    """Levels at which element ``index`` has backward pointers."""
    if index == 0:
        return []
    levels = [0]
    level = 1
    while index % (1 << level) == 0:
        levels.append(level)
        level += 1
    return levels


def _element_digest(
    index: int, key: int, value_digest: Digest, pointer_digests: list[Digest]
) -> Digest:
    parts = [b"asl-elem", index.to_bytes(8, "big"), key.to_bytes(8, "big"), value_digest]
    parts.extend(pointer_digests)
    return hash_concat(*parts)


@dataclass(frozen=True, slots=True)
class _Element:
    index: int
    key: int
    value: bytes
    digest: Digest
    pointer_digests: tuple[Digest, ...]  # one per level in pointer_levels()


@dataclass(frozen=True, slots=True)
class SkipStep:
    """One element on the traversal path.

    ``followed_level`` is the pointer level the traversal continued
    through (-1 when this is the final element).  The digests of all
    *other* pointers are carried so the verifier can recompute the
    element's digest; the followed pointer's digest is recomputed
    recursively from the next step.
    """

    index: int
    key: int
    value: bytes | None  # payload shipped only for in-window elements
    value_digest: Digest | None  # for out-of-window elements
    followed_level: int
    other_pointer_digests: tuple[Digest, ...]

    def size_bytes(self) -> int:
        total = 8 + 8 + 1 + 32 * len(self.other_pointer_digests)
        total += len(self.value) if self.value is not None else 32
        return total


@dataclass(frozen=True, slots=True)
class SkipRangeProof:
    """Authenticated answer to a window query ``[lo, hi]``."""

    lo: int
    hi: int
    length: int  # number of elements in the list (authenticates the head)
    steps: tuple[SkipStep, ...]

    def size_bytes(self) -> int:
        return 24 + sum(step.size_bytes() for step in self.steps)


class AuthenticatedSkipList:
    """Append-only authenticated skip list keyed by increasing integers."""

    def __init__(self) -> None:
        self._elements: list[_Element] = []

    def __len__(self) -> int:
        return len(self._elements)

    @property
    def root(self) -> Digest:
        """Commitment: the digest of the latest element (the head)."""
        if not self._elements:
            return EMPTY_ROOT
        return self._elements[-1].digest

    def append(self, key: int, value: bytes) -> None:
        """Append a new latest version; ``key`` must strictly increase."""
        index = len(self._elements)
        if index and key <= self._elements[-1].key:
            raise ProofError("skip list keys must strictly increase")
        pointers = tuple(
            self._elements[index - (1 << level)].digest
            for level in pointer_levels(index)
        )
        digest = _element_digest(index, key, sha256(value), list(pointers))
        self._elements.append(
            _Element(index=index, key=key, value=value, digest=digest, pointer_digests=pointers)
        )

    def window_query(self, lo: int, hi: int) -> tuple[list[tuple[int, bytes]], SkipRangeProof]:
        """All ``(key, value)`` with lo <= key <= hi, plus a traversal proof.

        The traversal starts at the head (latest element), greedily takes
        the largest backward jump that does not overshoot the window's
        upper bound, then walks element-by-element through the window and
        one element past it (the completeness boundary).
        """
        if lo > hi:
            raise ProofError("empty range: lo > hi")
        steps: list[SkipStep] = []
        results: list[tuple[int, bytes]] = []
        if not self._elements:
            return [], SkipRangeProof(lo=lo, hi=hi, length=0, steps=())
        position = len(self._elements) - 1
        while True:
            element = self._elements[position]
            in_window = lo <= element.key <= hi
            if in_window:
                results.append((element.key, element.value))
            # Decide the next hop.
            if element.key < lo or position == 0:
                followed = -1
            elif element.key > hi:
                followed = self._jump_level(position, hi)
            else:
                followed = 0  # inside the window: single steps for contiguity
            levels = pointer_levels(element.index)
            others = tuple(
                digest
                for level, digest in zip(levels, element.pointer_digests)
                if level != followed
            )
            steps.append(
                SkipStep(
                    index=element.index,
                    key=element.key,
                    value=element.value if in_window else None,
                    value_digest=None if in_window else sha256(element.value),
                    followed_level=followed,
                    other_pointer_digests=others,
                )
            )
            if followed == -1:
                break
            position = element.index - (1 << followed)
        results.reverse()
        return results, SkipRangeProof(
            lo=lo, hi=hi, length=len(self._elements), steps=tuple(steps)
        )

    def _jump_level(self, position: int, hi: int) -> int:
        """Largest pointer level from ``position`` not overshooting keys > hi.

        Overshooting past the window entirely would lose completeness
        evidence, so a jump is allowed only if the landing element's key
        is still >= the window upper bound *or* the jump is the smallest
        one available (level 0 always keeps contiguity... it may land
        inside or below the window, both handled by the caller).
        """
        element = self._elements[position]
        best = 0
        for level in pointer_levels(element.index):
            target = element.index - (1 << level)
            if self._elements[target].key >= hi:
                best = level
        return best


def verify_window(
    root: Digest,
    results: list[tuple[int, bytes]],
    proof: SkipRangeProof,
) -> bool:
    """Verify a window query answer against the skip list commitment."""
    if proof.length == 0:
        return root == EMPTY_ROOT and not results and not proof.steps
    if not proof.steps:
        return False

    collected: list[tuple[int, bytes]] = []
    try:
        head_digest = _replay(proof, 0, collected)
    except ProofError:
        return False
    if head_digest != root:
        return False
    if proof.steps[0].index != proof.length - 1:
        return False  # traversal must anchor at the head
    # Completeness: the walk must have reached below the window (or the
    # genesis element) so nothing older in-window was skipped, and steps
    # inside the window must be contiguous (level-0 hops), which _replay
    # enforces.  Nothing newer is skipped because jumps only land on
    # keys >= hi.
    last = proof.steps[-1]
    if last.key >= proof.lo and last.index != 0:
        return False
    collected.reverse()
    return collected == results


def _replay(proof: SkipRangeProof, step_index: int, collected: list[tuple[int, bytes]]) -> Digest:
    """Recompute the digest of the element at ``step_index`` recursively."""
    step = proof.steps[step_index]
    levels = pointer_levels(step.index)
    in_window = proof.lo <= step.key <= proof.hi
    if in_window:
        if step.value is None:
            raise ProofError("in-window element withheld from results")
        collected.append((step.key, step.value))
        value_digest = sha256(step.value)
        if step.followed_level not in (0, -1):
            raise ProofError("non-contiguous hop inside the window")
    else:
        if step.value_digest is None:
            raise ProofError("out-of-window element missing value digest")
        value_digest = step.value_digest
    if step.followed_level == -1:
        if step_index != len(proof.steps) - 1:
            raise ProofError("traversal continues past its declared end")
        if len(step.other_pointer_digests) != len(levels):
            raise ProofError("pointer digests do not match element shape")
        return _element_digest(
            step.index, step.key, value_digest, list(step.other_pointer_digests)
        )
    if step.followed_level not in levels:
        raise ProofError("followed pointer level does not exist")
    if step_index + 1 >= len(proof.steps):
        raise ProofError("traversal ends without a terminal step")
    next_step = proof.steps[step_index + 1]
    if next_step.index != step.index - (1 << step.followed_level):
        raise ProofError("next step is not the followed pointer's target")
    if next_step.key >= step.key:
        raise ProofError("keys must strictly decrease along the walk")
    if step.key > proof.hi and step.followed_level > 0 and next_step.key < proof.hi:
        # A multi-level jump from above the window may only land on a key
        # still >= hi; otherwise it could have skipped in-window elements
        # (keys between the landing and the jump origin are unseen).
        raise ProofError("jump skipped over the query window")
    followed_digest = _replay(proof, step_index + 1, collected)
    if len(step.other_pointer_digests) != len(levels) - 1:
        raise ProofError("pointer digests do not match element shape")
    pointer_digests: list[Digest] = []
    other_iter = iter(step.other_pointer_digests)
    for level in levels:
        if level == step.followed_level:
            pointer_digests.append(followed_digest)
        else:
            pointer_digests.append(next(other_iter))
    return _element_digest(step.index, step.key, value_digest, pointer_digests)
