"""Binary Merkle Hash Tree over an ordered list of items.

This is the structure from Fig. 1 of the paper: leaves are hashed items,
internal nodes hash the concatenation of their children, and a membership
proof is the list of sibling digests along the leaf-to-root path.  Blocks
use it to commit to their transaction list (``H_tx``).

Odd nodes are *promoted* unchanged to the next level (rather than
duplicated), which avoids the CVE-2012-2459 style ambiguity where two
different leaf lists share a root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_leaf, hash_node, sha256
from repro.errors import ProofError

#: Root committed by a tree with no leaves.
EMPTY_ROOT: Digest = sha256(b"repro-empty-mht")


@dataclass(frozen=True, slots=True)
class MembershipProof:
    """Sibling path proving one leaf's membership under a root.

    ``siblings[k]`` is the sibling digest at level ``k`` (leaf level is 0)
    or ``None`` when the node was promoted without a sibling.
    """

    index: int
    siblings: tuple[Digest | None, ...]

    def size_bytes(self) -> int:
        """Serialized proof size (index + presence bitmap + digests)."""
        present = sum(1 for s in self.siblings if s is not None)
        bitmap = (len(self.siblings) + 7) // 8
        return 8 + bitmap + 32 * present


class MerkleTree:
    """An immutable binary Merkle tree built from a list of leaf payloads."""

    def __init__(self, leaves: list[bytes]) -> None:
        self._levels: list[list[Digest]] = [[hash_leaf(leaf) for leaf in leaves]]
        current = self._levels[0]
        while len(current) > 1:
            parents: list[Digest] = []
            for i in range(0, len(current) - 1, 2):
                parents.append(hash_node(current[i], current[i + 1]))
            if len(current) % 2 == 1:
                parents.append(current[-1])  # promote the lonely node
            self._levels.append(parents)
            current = parents

    def __len__(self) -> int:
        return len(self._levels[0])

    @property
    def root(self) -> Digest:
        """The Merkle root (a fixed sentinel for the empty tree)."""
        if not self._levels[0]:
            return EMPTY_ROOT
        return self._levels[-1][0]

    def prove(self, index: int) -> MembershipProof:
        """Build a membership proof for the leaf at ``index``."""
        if not 0 <= index < len(self):
            raise ProofError(f"leaf index {index} out of range")
        siblings: list[Digest | None] = []
        position = index
        for level in self._levels[:-1]:
            sibling_index = position ^ 1
            if sibling_index < len(level):
                siblings.append(level[sibling_index])
            else:
                siblings.append(None)  # promoted — no sibling at this level
            position //= 2
        return MembershipProof(index=index, siblings=tuple(siblings))


def verify_membership(root: Digest, leaf: bytes, proof: MembershipProof) -> bool:
    """Check that ``leaf`` is committed at ``proof.index`` under ``root``."""
    digest = hash_leaf(leaf)
    position = proof.index
    for sibling in proof.siblings:
        if sibling is None:
            pass  # promoted node: digest is unchanged at this level
        elif position % 2 == 0:
            digest = hash_node(digest, sibling)
        else:
            digest = hash_node(sibling, digest)
        position //= 2
    return digest == root


def compute_root(leaves: list[bytes]) -> Digest:
    """Convenience helper: the root of a tree over ``leaves``."""
    return MerkleTree(leaves).root
