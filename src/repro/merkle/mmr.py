"""Merkle Mountain Range (MMR).

An append-only accumulator over a growing sequence of leaves, used by
the FlyClient-style baseline client (§8.1 of the paper) to commit to the
whole header chain: appending is O(log n) amortized, and any historical
leaf has an O(log n) membership proof against the *bagged* root of the
current peaks.  We include it as the related-work extension called out
in DESIGN.md — it lets the bootstrap benchmarks compare DCert not only
against the traditional light client but also against a logarithmic
sampling client.

The node layout is the canonical post-order MMR: positions 0..size-1,
leaves interleaved with parents; a peak exists per set bit of the leaf
count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import Digest, hash_concat, hash_leaf, hash_node, sha256
from repro.errors import ProofError

#: Root of an MMR with no leaves.
EMPTY_ROOT: Digest = sha256(b"repro-mmr-empty")


@dataclass(frozen=True, slots=True)
class MMRProof:
    """Membership proof: the sibling path plus the other peaks."""

    leaf_index: int
    leaf_count: int
    path: tuple[Digest, ...]  # siblings inside the leaf's mountain
    peaks_left: tuple[Digest, ...]  # peaks before the leaf's mountain
    peaks_right: tuple[Digest, ...]  # peaks after it

    def size_bytes(self) -> int:
        digests = len(self.path) + len(self.peaks_left) + len(self.peaks_right)
        return 16 + 32 * digests


def bag_peaks(peaks: list[Digest]) -> Digest:
    """Fold the peak digests right-to-left into a single root."""
    if not peaks:
        return EMPTY_ROOT
    root = peaks[-1]
    for peak in reversed(peaks[:-1]):
        root = hash_concat(b"mmr-bag", peak, root)
    return root


class MerkleMountainRange:
    """Append-only MMR over byte-string leaves."""

    def __init__(self) -> None:
        self._leaf_count = 0
        # Per-height lists of node digests inside each perfect mountain:
        # _mountains[i] = (height, levels) where levels[0] is that
        # mountain's leaves bottom-up.
        self._mountains: list[list[list[Digest]]] = []

    def __len__(self) -> int:
        return self._leaf_count

    def append(self, leaf: bytes) -> None:
        """Append a leaf, merging equal-height mountains."""
        self._mountains.append([[hash_leaf(leaf)]])
        self._leaf_count += 1
        while (
            len(self._mountains) >= 2
            and len(self._mountains[-1]) == len(self._mountains[-2])
        ):
            right = self._mountains.pop()
            left = self._mountains.pop()
            merged = [
                left_level + right_level
                for left_level, right_level in zip(left, right)
            ]
            # The top level of each mountain has exactly one node.
            merged.append([hash_node(left[-1][0], right[-1][0])])
            self._mountains.append(merged)

    @property
    def peaks(self) -> list[Digest]:
        return [mountain[-1][0] for mountain in self._mountains]

    @property
    def root(self) -> Digest:
        return bag_peaks(self.peaks)

    def prove(self, leaf_index: int) -> MMRProof:
        """Membership proof for the ``leaf_index``-th appended leaf."""
        if not 0 <= leaf_index < self._leaf_count:
            raise ProofError(f"leaf index {leaf_index} out of range")
        offset = leaf_index
        for mountain_index, mountain in enumerate(self._mountains):
            leaves_here = len(mountain[0])
            if offset < leaves_here:
                path: list[Digest] = []
                position = offset
                for level in mountain[:-1]:
                    path.append(level[position ^ 1])
                    position //= 2
                return MMRProof(
                    leaf_index=leaf_index,
                    leaf_count=self._leaf_count,
                    path=tuple(path),
                    peaks_left=tuple(
                        m[-1][0] for m in self._mountains[:mountain_index]
                    ),
                    peaks_right=tuple(
                        m[-1][0] for m in self._mountains[mountain_index + 1 :]
                    ),
                )
            offset -= leaves_here
        raise ProofError("unreachable")  # pragma: no cover


def verify_mmr(root: Digest, leaf: bytes, proof: MMRProof) -> bool:
    """Verify that ``leaf`` is committed by ``root`` at ``proof.leaf_index``."""
    digest = hash_leaf(leaf)
    # Recover the leaf's position inside its mountain from the index and
    # the peak split implied by the proof shapes.
    position = proof.leaf_index
    for peak_height_leaves in _mountain_sizes(proof):
        if position < peak_height_leaves:
            break
        position -= peak_height_leaves
    for sibling in proof.path:
        if position % 2 == 0:
            digest = hash_node(digest, sibling)
        else:
            digest = hash_node(sibling, digest)
        position //= 2
    peaks = list(proof.peaks_left) + [digest] + list(proof.peaks_right)
    return bag_peaks(peaks) == root


def _mountain_sizes(proof: MMRProof) -> list[int]:
    """Leaf counts of each mountain, derived from the total leaf count."""
    sizes = []
    count = proof.leaf_count
    bit = 1 << count.bit_length()
    while bit:
        if count & bit:
            sizes.append(bit)
        bit >>= 1
    return sizes
