"""Blockbench IOHeavy: state-traffic-dominated micro benchmark.

Each invocation reads and/or writes many distinct state cells, which
maximizes the size of the read/write sets and their Merkle proofs — the
exact input whose growth degrades enclave performance in the paper's
Fig. 8/9 analysis.
"""

from __future__ import annotations

from repro.chain.vm import Contract, ContractContext
from repro.errors import TransactionError


class IOHeavy(Contract):
    """``write(n, seed)`` / ``scan(n, seed)`` / ``mixed(n, seed)``."""

    name = "ioheavy"

    #: Number of distinct keys the workload cycles through.
    KEY_SPACE = 10_000

    def call(
        self, ctx: ContractContext, method: str, args: tuple[str, ...], sender: str
    ) -> None:
        if len(args) != 2:
            raise TransactionError(f"{method} expects (n, seed)")
        count, seed = int(args[0]), int(args[1])
        if count < 0 or count > self.KEY_SPACE:
            raise TransactionError("I/O count out of range")
        if method == "write":
            for offset in range(count):
                slot = (seed + offset) % self.KEY_SPACE
                ctx.put_int(f"slot:{slot}", seed + offset)
        elif method == "scan":
            total = 0
            for offset in range(count):
                slot = (seed + offset) % self.KEY_SPACE
                total += ctx.get_int(f"slot:{slot}")
            ctx.put_int(f"scan-result:{sender}", total)
        elif method == "mixed":
            for offset in range(count):
                slot = (seed + offset) % self.KEY_SPACE
                current = ctx.get_int(f"slot:{slot}")
                ctx.put_int(f"slot:{slot}", current + 1)
        else:
            raise TransactionError(f"ioheavy has no method {method!r}")
