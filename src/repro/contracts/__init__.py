"""The five Blockbench workload contracts (Dinh et al., SIGMOD'17).

The paper evaluates DCert with Blockbench's micro benchmarks —
DoNothing (DN), CPUHeavy (CPU), IOHeavy (IO) — and macro benchmarks —
KVStore (KV) and SmallBank (SB).  Each is reproduced here as a contract
for :mod:`repro.chain.vm`, preserving the characteristic that drives the
paper's Fig. 8: DN touches no state, CPU burns compute with few state
cells, IO touches many cells, and KV/SB look like real applications.
"""

from repro.contracts.cpuheavy import CPUHeavy
from repro.contracts.donothing import DoNothing
from repro.contracts.ioheavy import IOHeavy
from repro.contracts.kvstore import KVStore
from repro.contracts.smallbank import SmallBank

#: Blockbench short names from the paper's figures, mapped to factories.
BLOCKBENCH = {
    "DN": DoNothing,
    "CPU": CPUHeavy,
    "IO": IOHeavy,
    "KV": KVStore,
    "SB": SmallBank,
}

__all__ = ["BLOCKBENCH", "CPUHeavy", "DoNothing", "IOHeavy", "KVStore", "SmallBank"]
