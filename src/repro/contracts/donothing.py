"""Blockbench DoNothing: the empty-transaction micro benchmark."""

from __future__ import annotations

from repro.chain.vm import Contract, ContractContext
from repro.errors import TransactionError


class DoNothing(Contract):
    """Accepts ``invoke`` and does nothing — isolates per-tx fixed costs."""

    name = "donothing"

    def call(
        self, ctx: ContractContext, method: str, args: tuple[str, ...], sender: str
    ) -> None:
        if method != "invoke":
            raise TransactionError(f"donothing has no method {method!r}")
