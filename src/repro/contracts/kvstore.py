"""Blockbench KVStore: the key-value macro benchmark (YCSB-style)."""

from __future__ import annotations

from repro.chain.vm import Contract, ContractContext
from repro.errors import TransactionError


class KVStore(Contract):
    """``put(key, value)`` / ``get(key)`` / ``delete(key)``."""

    name = "kvstore"

    def call(
        self, ctx: ContractContext, method: str, args: tuple[str, ...], sender: str
    ) -> None:
        if method == "put":
            if len(args) != 2:
                raise TransactionError("put expects (key, value)")
            ctx.put_str(f"kv:{args[0]}", args[1])
        elif method == "get":
            if len(args) != 1:
                raise TransactionError("get expects (key,)")
            value = ctx.get_str(f"kv:{args[0]}")
            # Record the observation so the read is part of the state
            # transition the enclave replays (a pure read would leave no
            # trace in H_state and could not be certified).
            ctx.put_str(f"kv-last-read:{sender}", value if value is not None else "")
        elif method == "delete":
            if len(args) != 1:
                raise TransactionError("delete expects (key,)")
            ctx.delete(f"kv:{args[0]}")
        else:
            raise TransactionError(f"kvstore has no method {method!r}")
