"""Blockbench SmallBank: the banking macro benchmark.

The standard six SmallBank operations over per-customer checking and
savings balances.  Balances may not go negative; violating transactions
are rejected (and therefore excluded from blocks / certificates).
"""

from __future__ import annotations

from repro.chain.vm import Contract, ContractContext
from repro.errors import TransactionError


class SmallBank(Contract):
    """create / deposit_checking / transact_savings / send_payment /
    write_check / amalgamate."""

    name = "smallbank"

    def call(
        self, ctx: ContractContext, method: str, args: tuple[str, ...], sender: str
    ) -> None:
        handler = getattr(self, f"_op_{method}", None)
        if handler is None:
            raise TransactionError(f"smallbank has no method {method!r}")
        handler(ctx, args)

    # -- operations --------------------------------------------------------

    def _op_create(self, ctx: ContractContext, args: tuple[str, ...]) -> None:
        account, checking, savings = args[0], int(args[1]), int(args[2])
        if checking < 0 or savings < 0:
            raise TransactionError("initial balances must be non-negative")
        ctx.put_int(f"checking:{account}", checking)
        ctx.put_int(f"savings:{account}", savings)

    def _op_deposit_checking(self, ctx: ContractContext, args: tuple[str, ...]) -> None:
        account, amount = args[0], int(args[1])
        if amount < 0:
            raise TransactionError("deposit must be non-negative")
        self._require_account(ctx, account)
        ctx.put_int(f"checking:{account}", ctx.get_int(f"checking:{account}") + amount)

    def _op_transact_savings(self, ctx: ContractContext, args: tuple[str, ...]) -> None:
        account, amount = args[0], int(args[1])
        self._require_account(ctx, account)
        balance = ctx.get_int(f"savings:{account}") + amount
        if balance < 0:
            raise TransactionError("savings balance would go negative")
        ctx.put_int(f"savings:{account}", balance)

    def _op_send_payment(self, ctx: ContractContext, args: tuple[str, ...]) -> None:
        source, destination, amount = args[0], args[1], int(args[2])
        if amount < 0:
            raise TransactionError("payment must be non-negative")
        self._require_account(ctx, source)
        self._require_account(ctx, destination)
        balance = ctx.get_int(f"checking:{source}")
        if balance < amount:
            raise TransactionError("insufficient checking balance")
        ctx.put_int(f"checking:{source}", balance - amount)
        ctx.put_int(
            f"checking:{destination}", ctx.get_int(f"checking:{destination}") + amount
        )

    def _op_write_check(self, ctx: ContractContext, args: tuple[str, ...]) -> None:
        account, amount = args[0], int(args[1])
        self._require_account(ctx, account)
        total = ctx.get_int(f"checking:{account}") + ctx.get_int(f"savings:{account}")
        penalty = 1 if amount > total else 0
        ctx.put_int(
            f"checking:{account}",
            ctx.get_int(f"checking:{account}") - amount - penalty,
        )

    def _op_amalgamate(self, ctx: ContractContext, args: tuple[str, ...]) -> None:
        source, destination = args[0], args[1]
        self._require_account(ctx, source)
        self._require_account(ctx, destination)
        moved = ctx.get_int(f"savings:{source}") + ctx.get_int(f"checking:{source}")
        ctx.put_int(f"savings:{source}", 0)
        ctx.put_int(f"checking:{source}", 0)
        ctx.put_int(
            f"checking:{destination}", ctx.get_int(f"checking:{destination}") + moved
        )

    # -- helpers -----------------------------------------------------------

    def _require_account(self, ctx: ContractContext, account: str) -> None:
        if ctx.get(f"checking:{account}") is None:
            raise TransactionError(f"unknown account {account!r}")
