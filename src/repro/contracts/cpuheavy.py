"""Blockbench CPUHeavy: sorting-dominated compute micro benchmark.

The original workload quicksorts a pseudo-random array inside the
contract.  State traffic is minimal (one checksum cell), so certificate
construction time is dominated by transaction *execution* rather than
Merkle proof handling — which is why the paper observes the enclave
overhead being diluted for CPU (Fig. 8).
"""

from __future__ import annotations

from repro.chain.vm import Contract, ContractContext
from repro.errors import TransactionError


def _xorshift_sequence(seed: int, count: int) -> list[int]:
    """Deterministic pseudo-random ints (xorshift64*)."""
    state = (seed or 1) & 0xFFFFFFFFFFFFFFFF
    values = []
    for _ in range(count):
        state ^= (state >> 12) & 0xFFFFFFFFFFFFFFFF
        state ^= (state << 25) & 0xFFFFFFFFFFFFFFFF
        state ^= (state >> 27) & 0xFFFFFFFFFFFFFFFF
        values.append((state * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF)
    return values


class CPUHeavy(Contract):
    """``sort(n, seed)``: quicksort n pseudo-random ints, store a checksum."""

    name = "cpuheavy"

    def call(
        self, ctx: ContractContext, method: str, args: tuple[str, ...], sender: str
    ) -> None:
        if method != "sort":
            raise TransactionError(f"cpuheavy has no method {method!r}")
        if len(args) != 2:
            raise TransactionError("sort expects (n, seed)")
        size, seed = int(args[0]), int(args[1])
        if size < 0 or size > 1_000_000:
            raise TransactionError("sort size out of range")
        values = _xorshift_sequence(seed, size)
        ordered = self._quicksort(values)
        checksum = 0
        for index, value in enumerate(ordered):
            checksum = (checksum * 31 + value * (index + 1)) % (1 << 64)
        ctx.put_int(f"checksum:{sender}", checksum)

    def _quicksort(self, values: list[int]) -> list[int]:
        """Deterministic in-place quicksort (median-of-three pivot)."""
        values = list(values)
        stack = [(0, len(values) - 1)]
        while stack:
            low, high = stack.pop()
            if low >= high:
                continue
            mid = (low + high) // 2
            pivot_candidates = sorted(
                [(values[low], low), (values[mid], mid), (values[high], high)]
            )
            pivot = pivot_candidates[1][0]
            left, right = low, high
            while left <= right:
                while values[left] < pivot:
                    left += 1
                while values[right] > pivot:
                    right -= 1
                if left <= right:
                    values[left], values[right] = values[right], values[left]
                    left += 1
                    right -= 1
            stack.append((low, right))
            stack.append((left, high))
        return values
