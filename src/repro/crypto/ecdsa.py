"""Pure-Python ECDSA over secp256k1 with RFC-6979 deterministic nonces.

This is the signature scheme the (simulated) SGX enclave uses to sign
block digests, and the scheme blockchain accounts use to authorize
transactions.  It is written from scratch on top of the standard library:

* secp256k1 group arithmetic in Jacobian coordinates,
* scalar multiplication with a fixed 4-bit window,
* RFC-6979 nonce derivation (HMAC-SHA256) so signatures are deterministic
  and the test suite is reproducible,
* low-s normalization (BIP-62) so signatures are non-malleable.

The implementation favours clarity over raw speed; the benchmark harness
accounts for the constant-factor slowdown relative to the paper's Rust
crates (see EXPERIMENTS.md).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import CryptoError, SignatureError

# secp256k1 domain parameters (SEC 2, section 2.4.1).
P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
N = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141
A = 0
B = 7
GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8

#: A point is ``None`` (infinity) or an affine ``(x, y)`` pair.
Point = tuple[int, int] | None

_JPoint = tuple[int, int, int]  # Jacobian (X, Y, Z); Z == 0 is infinity.
_J_INFINITY: _JPoint = (1, 1, 0)


def _to_jacobian(point: Point) -> _JPoint:
    if point is None:
        return _J_INFINITY
    return (point[0], point[1], 1)


def _from_jacobian(point: _JPoint) -> Point:
    x, y, z = point
    if z == 0:
        return None
    z_inv = pow(z, P - 2, P)
    z_inv2 = (z_inv * z_inv) % P
    return ((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _j_double(point: _JPoint) -> _JPoint:
    x, y, z = point
    if z == 0 or y == 0:
        return _J_INFINITY
    y2 = (y * y) % P
    s = (4 * x * y2) % P
    m = (3 * x * x) % P  # a == 0 for secp256k1
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * y2 * y2) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _j_add(p1: _JPoint, p2: _JPoint) -> _JPoint:
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z12 = (z1 * z1) % P
    z22 = (z2 * z2) % P
    u1 = (x1 * z22) % P
    u2 = (x2 * z12) % P
    s1 = (y1 * z22 * z2) % P
    s2 = (y2 * z12 * z1) % P
    if u1 == u2:
        if s1 != s2:
            return _J_INFINITY
        return _j_double(p1)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    h2 = (h * h) % P
    h3 = (h2 * h) % P
    u1h2 = (u1 * h2) % P
    nx = (r * r - h3 - 2 * u1h2) % P
    ny = (r * (u1h2 - nx) - s1 * h3) % P
    nz = (h * z1 * z2) % P
    return (nx, ny, nz)


def _j_mul(point: _JPoint, scalar: int) -> _JPoint:
    """Scalar multiplication with a fixed 4-bit window."""
    scalar %= N
    if scalar == 0:
        return _J_INFINITY
    # Precompute 1P..15P.
    table = [_J_INFINITY, point]
    for _ in range(14):
        table.append(_j_add(table[-1], point))
    result = _J_INFINITY
    for nibble_index in range((scalar.bit_length() + 3) // 4 - 1, -1, -1):
        for _ in range(4):
            result = _j_double(result)
        nibble = (scalar >> (4 * nibble_index)) & 0xF
        if nibble:
            result = _j_add(result, table[nibble])
    return result


def point_mul(point: Point, scalar: int) -> Point:
    """Multiply an affine ``point`` by ``scalar`` on secp256k1."""
    return _from_jacobian(_j_mul(_to_jacobian(point), scalar))


def point_add(p1: Point, p2: Point) -> Point:
    """Add two affine points on secp256k1."""
    return _from_jacobian(_j_add(_to_jacobian(p1), _to_jacobian(p2)))


def generator() -> Point:
    """Return the secp256k1 base point G."""
    return (GX, GY)


def is_on_curve(point: Point) -> bool:
    """Check whether ``point`` satisfies y^2 = x^3 + 7 (mod p)."""
    if point is None:
        return True
    x, y = point
    return (y * y - (x * x * x + A * x + B)) % P == 0


def derive_public_point(secret: int) -> Point:
    """Return the public point ``secret * G``; ``secret`` must be in [1, n)."""
    if not 1 <= secret < N:
        raise CryptoError("secret scalar out of range")
    return point_mul(generator(), secret)


def _bits2int(data: bytes) -> int:
    value = int.from_bytes(data, "big")
    excess = len(data) * 8 - N.bit_length()
    if excess > 0:
        value >>= excess
    return value


def _int2octets(value: int) -> bytes:
    return value.to_bytes(32, "big")


def rfc6979_nonce(secret: int, msg_hash: bytes, extra: bytes = b"") -> int:
    """Derive the deterministic ECDSA nonce k per RFC 6979 (HMAC-SHA256)."""
    h1 = _bits2int(msg_hash) % N
    key_material = _int2octets(secret) + _int2octets(h1) + extra
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac.new(k, v + b"\x00" + key_material, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + key_material, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = _bits2int(v)
        if 1 <= candidate < N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


def sign_digest(secret: int, msg_hash: bytes) -> tuple[int, int]:
    """Sign a 32-byte message hash; returns the (r, s) pair with low s."""
    if len(msg_hash) != 32:
        raise CryptoError("message hash must be 32 bytes")
    z = _bits2int(msg_hash) % N
    attempt = 0
    while True:
        extra = attempt.to_bytes(4, "big") if attempt else b""
        k = rfc6979_nonce(secret, msg_hash, extra)
        point = point_mul(generator(), k)
        assert point is not None
        r = point[0] % N
        if r == 0:
            attempt += 1
            continue
        k_inv = pow(k, N - 2, N)
        s = (k_inv * (z + r * secret)) % N
        if s == 0:
            attempt += 1
            continue
        if s > N // 2:  # low-s normalization (BIP-62)
            s = N - s
        return (r, s)


def verify_digest(public: Point, msg_hash: bytes, signature: tuple[int, int]) -> bool:
    """Verify an (r, s) signature over a 32-byte message hash."""
    if public is None or not is_on_curve(public):
        raise SignatureError("invalid public key point")
    if len(msg_hash) != 32:
        raise SignatureError("message hash must be 32 bytes")
    r, s = signature
    if not (1 <= r < N and 1 <= s < N):
        return False
    z = _bits2int(msg_hash) % N
    s_inv = pow(s, N - 2, N)
    u1 = (z * s_inv) % N
    u2 = (r * s_inv) % N
    point = _from_jacobian(
        _j_add(_j_mul(_to_jacobian(generator()), u1), _j_mul(_to_jacobian(public), u2))
    )
    if point is None:
        return False
    return point[0] % N == r
