"""High-level sign/verify API over the ECDSA engine.

Messages are hashed with a caller-supplied domain tag so signatures over,
say, block digests can never be replayed as transaction authorizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import ecdsa
from repro.crypto.hashing import tagged_hash
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import CryptoError


@dataclass(frozen=True, slots=True)
class Signature:
    """An ECDSA signature, serialized as the fixed 64-byte ``r || s``."""

    r: int
    s: int

    def to_bytes(self) -> bytes:
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 64:
            raise CryptoError("signature must be exactly 64 bytes")
        return cls(int.from_bytes(data[:32], "big"), int.from_bytes(data[32:], "big"))


def sign(private: PrivateKey, message: bytes, domain: str = "repro-msg") -> Signature:
    """Sign ``message`` under the given domain tag."""
    digest = tagged_hash(domain, message)
    r, s = ecdsa.sign_digest(private.secret, digest)
    return Signature(r, s)


def verify(
    public: PublicKey, message: bytes, signature: Signature, domain: str = "repro-msg"
) -> bool:
    """Return True iff ``signature`` is valid for ``message`` under ``domain``."""
    digest = tagged_hash(domain, message)
    try:
        return ecdsa.verify_digest(public.point, digest, (signature.r, signature.s))
    except CryptoError:
        return False
