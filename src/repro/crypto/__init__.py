"""Cryptographic substrate: hashing and secp256k1 ECDSA signatures.

The DCert paper relies on two primitives: a collision-resistant hash
function (SHA-256) for every Merkle structure and block digest, and a
digital signature scheme for the enclave-resident certification key and
for transaction authorization.  Both are implemented here from scratch —
the ECDSA implementation is pure Python over secp256k1 with RFC-6979
deterministic nonces, which keeps the whole reproduction dependency-free
and deterministic.
"""

from repro.crypto.hashing import (
    HASH_SIZE,
    Digest,
    hash_concat,
    hash_leaf,
    hash_node,
    sha256,
    tagged_hash,
)
from repro.crypto.keys import KeyPair, PrivateKey, PublicKey, generate_keypair
from repro.crypto.signature import Signature, sign, verify

__all__ = [
    "HASH_SIZE",
    "Digest",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "Signature",
    "generate_keypair",
    "hash_concat",
    "hash_leaf",
    "hash_node",
    "sha256",
    "sign",
    "tagged_hash",
    "verify",
]
