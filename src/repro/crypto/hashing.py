"""Domain-separated SHA-256 hashing used by every authenticated structure.

All Merkle structures in this library hash through these helpers so that
leaves can never be confused with internal nodes (the classic second-
preimage attack on naive Merkle trees) and so that different structures
(state trie, transaction tree, MB-tree, inverted index...) live in
disjoint hash domains.
"""

from __future__ import annotations

import hashlib

#: Size in bytes of every digest in the library.
HASH_SIZE = 32

#: A digest is always exactly ``HASH_SIZE`` bytes.
Digest = bytes

#: Digest of the empty input; used as the canonical "nothing" commitment.
EMPTY_DIGEST: Digest = hashlib.sha256(b"").digest()

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"


def sha256(data: bytes) -> Digest:
    """Hash ``data`` with SHA-256 and return the 32-byte digest."""
    return hashlib.sha256(data).digest()


def tagged_hash(tag: str, data: bytes) -> Digest:
    """Hash ``data`` in the domain named by ``tag``.

    Uses the BIP-340 style ``H(H(tag) || H(tag) || data)`` construction so
    that digests from different domains can never collide by accident.
    """
    tag_digest = sha256(tag.encode("utf-8"))
    return sha256(tag_digest + tag_digest + data)


def hash_leaf(data: bytes) -> Digest:
    """Hash a Merkle leaf (domain-separated from internal nodes)."""
    return sha256(_LEAF_TAG + data)


def hash_node(left: Digest, right: Digest) -> Digest:
    """Hash an internal Merkle node from its two children."""
    return sha256(_NODE_TAG + left + right)


def hash_concat(*parts: bytes) -> Digest:
    """Hash the length-prefixed concatenation of ``parts``.

    Length prefixes make the encoding injective: ``hash_concat(b"ab", b"c")``
    and ``hash_concat(b"a", b"bc")`` produce different digests.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return hasher.digest()
