"""Key pairs and serialization for the library's ECDSA scheme.

Public keys serialize to the 33-byte SEC 1 compressed form; that is the
form embedded in DCert certificates (``pk_enc``) and attestation quotes.
Key generation is deterministic when given a seed, which the test suite
and the benchmark workload generators rely on for reproducibility.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

from repro.crypto import ecdsa
from repro.errors import CryptoError


@dataclass(frozen=True, slots=True)
class PublicKey:
    """A secp256k1 public key (affine point)."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if not ecdsa.is_on_curve((self.x, self.y)):
            raise CryptoError("public key point is not on secp256k1")

    @property
    def point(self) -> tuple[int, int]:
        return (self.x, self.y)

    def to_bytes(self) -> bytes:
        """Serialize to 33-byte SEC 1 compressed form."""
        prefix = b"\x03" if self.y & 1 else b"\x02"
        return prefix + self.x.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        """Parse a 33-byte SEC 1 compressed public key."""
        if len(data) != 33 or data[0] not in (2, 3):
            raise CryptoError("malformed compressed public key")
        x = int.from_bytes(data[1:], "big")
        if x >= ecdsa.P:
            raise CryptoError("public key x coordinate out of range")
        y_squared = (pow(x, 3, ecdsa.P) + ecdsa.B) % ecdsa.P
        y = pow(y_squared, (ecdsa.P + 1) // 4, ecdsa.P)
        if (y * y) % ecdsa.P != y_squared:
            raise CryptoError("public key x is not on the curve")
        if (y & 1) != (data[0] & 1):
            y = ecdsa.P - y
        return cls(x, y)

    def fingerprint(self) -> bytes:
        """A short stable identifier for the key (first 8 digest bytes)."""
        return hashlib.sha256(self.to_bytes()).digest()[:8]


@dataclass(frozen=True, slots=True)
class PrivateKey:
    """A secp256k1 private scalar.  Never serialized by the library."""

    secret: int

    def __post_init__(self) -> None:
        if not 1 <= self.secret < ecdsa.N:
            raise CryptoError("private key scalar out of range")

    def public_key(self) -> PublicKey:
        point = ecdsa.derive_public_point(self.secret)
        assert point is not None
        return PublicKey(point[0], point[1])


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A matched private/public key pair."""

    private: PrivateKey
    public: PublicKey


def generate_keypair(seed: bytes | None = None) -> KeyPair:
    """Generate a key pair, deterministically if ``seed`` is given.

    With a seed, the private scalar is derived via domain-separated
    SHA-256 stretching so distinct seeds give independent keys.
    """
    counter = 0
    while True:
        if seed is None:
            material = os.urandom(32)
        else:
            material = hashlib.sha256(
                b"repro-keygen" + counter.to_bytes(4, "big") + seed
            ).digest()
        secret = int.from_bytes(material, "big")
        if 1 <= secret < ecdsa.N:
            private = PrivateKey(secret)
            return KeyPair(private, private.public_key())
        counter += 1
