"""The Query Service Provider (SP) of Fig. 2.

An SP is an untrusted full node that materializes authenticated indexes
over the chain and serves verifiable queries.  It validates and ingests
every block (recomputing write sets itself), keeps its indexes in the
certified shape, and answers queries with integrity proofs that clients
check against CI-certified index roots.
"""

from __future__ import annotations

from repro.chain.block import Block
from repro.chain.consensus import ProofOfWork
from repro.chain.node import FullNode
from repro.chain.state import StateStore
from repro.chain.vm import VM
from repro.errors import QueryError
from repro.query.indexes import (
    AggregateAnswer,
    AggregateHistoryIndex,
    ValueRangeAnswer,
    ValueRangeIndex,
    AuthenticatedIndexSpec,
    HistoryAnswer,
    KeywordAnswer,
    MaintainedKeywordIndex,
    TwoLevelHistoryIndex,
)
from repro.query.lineagechain import LineageChainIndex


class QueryServiceProvider:
    """Maintains authenticated indexes and processes verifiable queries."""

    def __init__(
        self,
        genesis: Block,
        genesis_state: StateStore,
        vm: VM,
        pow_engine: ProofOfWork,
        index_specs: list[AuthenticatedIndexSpec],
        *,
        with_lineagechain_baseline: bool = False,
    ) -> None:
        from repro.core.issuer import make_maintained_index

        self.node = FullNode(genesis, genesis_state, vm, pow_engine)
        self.indexes = {
            spec.name: make_maintained_index(spec) for spec in index_specs
        }
        self.baselines: dict[str, LineageChainIndex] = {}
        if with_lineagechain_baseline:
            for spec in index_specs:
                if isinstance(self.indexes[spec.name], TwoLevelHistoryIndex):
                    self.baselines[spec.name] = LineageChainIndex(spec)

    def ingest_block(self, block: Block) -> None:
        """Validate ``block``, update every index, and commit it."""
        result = self.node.validate_block(block)
        for index in self.indexes.values():
            index.ingest_block(block, result.write_set)
        for baseline in self.baselines.values():
            baseline.ingest_block(block, result.write_set)
        self.node.state.apply_writes(result.write_set)
        self.node.blocks.append(block)

    def index_root(self, name: str) -> bytes:
        return self._index(name).root

    # -- query processing --------------------------------------------------

    def query_history(
        self, name: str, account: str, t_from: int, t_to: int
    ) -> HistoryAnswer:
        index = self._index(name)
        if not isinstance(index, TwoLevelHistoryIndex):
            raise QueryError(f"index {name!r} does not support history queries")
        return index.query_history(account, t_from, t_to)

    def query_history_baseline(
        self, name: str, account: str, t_from: int, t_to: int
    ):
        """The same query over the LineageChain skip-list baseline."""
        baseline = self.baselines.get(name)
        if baseline is None:
            raise QueryError(f"no LineageChain baseline for index {name!r}")
        return baseline.query_history(account, t_from, t_to)

    def query_aggregate(
        self, name: str, account: str, t_from: int, t_to: int
    ) -> AggregateAnswer:
        index = self._index(name)
        if not isinstance(index, AggregateHistoryIndex):
            raise QueryError(f"index {name!r} does not support aggregate queries")
        return index.query_aggregate(account, t_from, t_to)

    def query_value_range(self, name: str, lo: int, hi: int) -> ValueRangeAnswer:
        index = self._index(name)
        if not isinstance(index, ValueRangeIndex):
            raise QueryError(f"index {name!r} does not support value-range queries")
        return index.query_range(lo, hi)

    def query_keywords(self, name: str, keywords: list[str]) -> KeywordAnswer:
        index = self._index(name)
        if not isinstance(index, MaintainedKeywordIndex):
            raise QueryError(f"index {name!r} does not support keyword queries")
        return index.query_conjunctive(keywords)

    # -- internals -----------------------------------------------------------

    def _index(self, name: str):
        index = self.indexes.get(name)
        if index is None:
            raise QueryError(f"unknown index {name!r}")
        return index
