"""The Query Service Provider (SP) of Fig. 2.

An SP is an untrusted full node that materializes authenticated indexes
over the chain and serves verifiable queries.  It validates and ingests
every block (recomputing write sets itself), keeps its indexes in the
certified shape, and answers queries with integrity proofs that clients
check against CI-certified index roots.

Queries go through one typed entry point — :meth:`execute` with a
:class:`repro.query.api.QueryRequest` — which is also exactly what the
networked :class:`QueryService` serves over RPC.  The per-type
``query_*`` wrappers that predated the typed API were removed in PR 5;
only the LineageChain baseline keeps a dedicated method (it is a
benchmark comparison, not part of the query surface).
"""

from __future__ import annotations

from repro import obs
from repro.chain.block import Block
from repro.chain.consensus import ProofOfWork
from repro.chain.node import FullNode
from repro.chain.state import StateStore
from repro.chain.vm import VM
from repro.errors import QueryError
from repro.query.api import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    QueryRequest,
    ValueRangeQuery,
)
from repro.query.indexes import (
    AggregateHistoryIndex,
    ValueRangeIndex,
    AuthenticatedIndexSpec,
    MaintainedKeywordIndex,
    TwoLevelHistoryIndex,
)
from repro.query.lineagechain import LineageChainIndex


class QueryServiceProvider:
    """Maintains authenticated indexes and processes verifiable queries."""

    def __init__(
        self,
        genesis: Block,
        genesis_state: StateStore,
        vm: VM,
        pow_engine: ProofOfWork,
        index_specs: list[AuthenticatedIndexSpec],
        *,
        with_lineagechain_baseline: bool = False,
    ) -> None:
        from repro.core.issuer import make_maintained_index

        self.node = FullNode(genesis, genesis_state, vm, pow_engine)
        self.indexes = {
            spec.name: make_maintained_index(spec) for spec in index_specs
        }
        #: Total typed queries actually processed.  The sim's shed
        #: invariant compares this against the serving tier's handler
        #: invocations to prove shed requests did zero provider work.
        self.executes = 0
        self.baselines: dict[str, LineageChainIndex] = {}
        if with_lineagechain_baseline:
            for spec in index_specs:
                if isinstance(self.indexes[spec.name], TwoLevelHistoryIndex):
                    self.baselines[spec.name] = LineageChainIndex(spec)

    def ingest_block(self, block: Block) -> None:
        """Validate ``block``, update every index, and commit it."""
        result = self.node.validate_block(block)
        for index in self.indexes.values():
            index.ingest_block(block, result.write_set)
        for baseline in self.baselines.values():
            baseline.ingest_block(block, result.write_set)
        self.node.state.apply_writes(result.write_set)
        self.node.blocks.append(block)

    def index_root(self, name: str) -> bytes:
        return self._index(name).root

    # -- query processing (unified typed API) ------------------------------

    def execute(self, request: QueryRequest) -> QueryAnswer:
        """Process one typed query; the single dispatch point.

        Raises :class:`QueryError` for an unknown index, an index of
        the wrong family, or an unrecognized request type.
        """
        self.executes += 1
        with obs.trace_span("query.execute"):
            answer = self._execute(request)
        if obs.enabled():
            obs.inc(f"query.requests.{type(request).__name__}")
            obs.observe(
                "query.proof_bytes",
                answer.proof_size_bytes(),
                boundaries=obs.SIZE_BYTES_BUCKETS,
            )
        return answer

    def _execute(self, request: QueryRequest) -> QueryAnswer:
        index = self._index(request.index)
        if isinstance(request, HistoryQuery):
            if not isinstance(index, TwoLevelHistoryIndex):
                raise QueryError(
                    f"index {request.index!r} does not support history queries"
                )
            payload = index.query_history(
                request.account, request.t_from, request.t_to
            )
        elif isinstance(request, AggregateQuery):
            if not isinstance(index, AggregateHistoryIndex):
                raise QueryError(
                    f"index {request.index!r} does not support aggregate queries"
                )
            payload = index.query_aggregate(
                request.account, request.t_from, request.t_to
            )
        elif isinstance(request, ValueRangeQuery):
            if not isinstance(index, ValueRangeIndex):
                raise QueryError(
                    f"index {request.index!r} does not support value-range queries"
                )
            payload = index.query_range(request.lo, request.hi)
        elif isinstance(request, KeywordQuery):
            if not isinstance(index, MaintainedKeywordIndex):
                raise QueryError(
                    f"index {request.index!r} does not support keyword queries"
                )
            payload = index.query_conjunctive(list(request.keywords))
        else:
            raise QueryError(
                f"unrecognized query request type {type(request).__name__}"
            )
        return QueryAnswer(request=request, payload=payload)

    # -- baseline (not part of the typed API) ------------------------------

    def query_history_baseline(
        self, name: str, account: str, t_from: int, t_to: int
    ):
        """The same query over the LineageChain skip-list baseline."""
        baseline = self.baselines.get(name)
        if baseline is None:
            raise QueryError(f"no LineageChain baseline for index {name!r}")
        return baseline.query_history(account, t_from, t_to)

    # -- internals -----------------------------------------------------------

    def _index(self, name: str):
        index = self.indexes.get(name)
        if index is None:
            raise QueryError(f"unknown index {name!r}")
        return index


class QueryService:
    """The SP's networked face: serves :meth:`execute` over RPC.

    Register under a service name on the bus; superlight clients reach
    it through :class:`repro.core.superlight.RemoteSuperlightClient`,
    either directly or via a :class:`repro.net.gateway.QueryGateway`
    fronting a fleet of these.  ``service_time_ms`` charges the
    ``execute`` path through the :class:`~repro.net.rpc.RpcServer`
    busy-worker model so replica count shows up in fleet throughput
    (root lookups stay free); the ``query.execute.*``
    crashpoints let the chaos harness kill a replica mid-query (a
    :class:`~repro.net.supervisor.ServiceSupervisor` restarts it).
    """

    def __init__(
        self,
        bus,
        name: str,
        provider: QueryServiceProvider,
        *,
        service_time_ms: float = 0.0,
        admission=None,
    ) -> None:
        from repro.net.rpc import RpcServer

        self.provider = provider
        # ``admission`` (an AdmissionPolicy) arms CoDel-style load
        # shedding on the busy worker: excess queries are refused with
        # OVERLOADED + retry_after before they ever reach the provider.
        self.server = RpcServer(bus, name, admission=admission)
        # Only query execution occupies the modeled worker; root
        # lookups (used by gateway switch verification) are answered
        # immediately, like any metadata read.
        self.server.register(
            "execute", self._execute, service_time_ms=service_time_ms
        )
        self.server.register("index_root", self._index_root)

    def _execute(self, request: object) -> QueryAnswer:
        from repro.fault.crashpoints import crashpoint

        if not isinstance(request, QueryRequest):
            raise QueryError(
                f"malformed query request of type {type(request).__name__}"
            )
        crashpoint("query.execute.pre")
        answer = self.provider.execute(request)
        crashpoint("query.execute.post")
        return answer

    def _index_root(self, name: object) -> bytes:
        if not isinstance(name, str):
            raise QueryError("index_root takes the index name")
        return self.provider.index_root(name)
