"""The unified, typed verifiable-query API.

One request type per query family, one answer envelope, one dispatch
point (:meth:`repro.query.provider.QueryServiceProvider.execute`) and
one verification entry point (:func:`repro.query.verifier.verify`).
The request/answer dataclasses here are exactly what the RPC layer
serializes (:mod:`repro.net.wire`), so the in-process API and the wire
protocol cannot drift apart.

The answer envelope *echoes the request*: the verifier checks the echo
and the payload's own claim (account, window, keywords…) against what
the client asked, so an SP — or a tampering network — cannot satisfy a
query by replaying the correct proof for a different one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.query.indexes import (
    AggregateAnswer,
    HistoryAnswer,
    KeywordAnswer,
    ValueRangeAnswer,
)

AnswerPayload = HistoryAnswer | AggregateAnswer | ValueRangeAnswer | KeywordAnswer


@dataclass(frozen=True, slots=True)
class QueryRequest:
    """Base class: every query names the authenticated index it targets."""

    index: str


@dataclass(frozen=True, slots=True)
class HistoryQuery(QueryRequest):
    """All versions of ``account`` in the block window [t_from, t_to]."""

    account: str
    t_from: int
    t_to: int


@dataclass(frozen=True, slots=True)
class AggregateQuery(QueryRequest):
    """SUM/COUNT/MIN/MAX of ``account``'s values over [t_from, t_to]."""

    account: str
    t_from: int
    t_to: int


@dataclass(frozen=True, slots=True)
class ValueRangeQuery(QueryRequest):
    """Accounts whose *current* value lies in [lo, hi]."""

    lo: int
    hi: int


@dataclass(frozen=True, slots=True)
class KeywordQuery(QueryRequest):
    """Transactions carrying *all* of ``keywords`` (conjunctive)."""

    keywords: tuple[str, ...]

    def __post_init__(self) -> None:
        # Tolerate list input (common at call sites); store canonically.
        object.__setattr__(self, "keywords", tuple(self.keywords))


@dataclass(frozen=True, slots=True)
class QueryAnswer:
    """The SP's reply: the request it claims to answer, plus the
    family-specific payload carrying results and integrity proofs."""

    request: QueryRequest
    payload: AnswerPayload

    def proof_size_bytes(self) -> int:
        return self.payload.proof_size_bytes()
