"""The LineageChain baseline index (Ruan et al., PVLDB'19).

Same two-level shape as DCert's index — an MPT mapping accounts to a
per-account version structure — but the lower level is LineageChain's
authenticated deterministic *skip list* anchored at the latest version.
A historical query therefore traverses backwards from the newest
version into the queried window, so its latency and proof size grow
with the window's distance from the chain tip; DCert's MB-tree, by
contrast, searches from the root in O(log n) regardless of distance.
This asymmetry is exactly what Fig. 11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import Block
from repro.crypto.hashing import Digest, tagged_hash
from repro.merkle import mpt, skiplist
from repro.merkle.mpt import MerklePatriciaTrie, MPTProof
from repro.merkle.skiplist import AuthenticatedSkipList, SkipRangeProof
from repro.query.indexes import AccountHistoryIndexSpec


def _account_trie_key(account: str) -> bytes:
    return tagged_hash("idx-account", account.encode("utf-8"))[:8]


@dataclass(frozen=True, slots=True)
class LineageAnswer:
    """Baseline answer to a historical account query, with proofs."""

    account: str
    t_from: int
    t_to: int
    versions: tuple[tuple[int, bytes], ...]
    lower_root: Digest | None
    upper_proof: MPTProof
    window_proof: SkipRangeProof | None

    def proof_size_bytes(self) -> int:
        total = self.upper_proof.size_bytes()
        if self.window_proof is not None:
            total += self.window_proof.size_bytes()
        return total


class LineageChainIndex:
    """SP-side materialized LineageChain-style index."""

    def __init__(self, spec: AccountHistoryIndexSpec) -> None:
        self.spec = spec
        self._upper = MerklePatriciaTrie()
        self._lower: dict[str, AuthenticatedSkipList] = {}

    @property
    def root(self) -> Digest:
        return self._upper.root

    def ingest_block(self, block: Block, write_set: dict[bytes, bytes | None]) -> None:
        for write in self.spec.write_data(block, write_set):
            lower = self._lower.get(write.account)
            if lower is None:
                lower = AuthenticatedSkipList()
                self._lower[write.account] = lower
            lower.append(write.timestamp, write.value)
            self._upper.insert(_account_trie_key(write.account), lower.root)

    def query_history(self, account: str, t_from: int, t_to: int) -> LineageAnswer:
        trie_key = _account_trie_key(account)
        upper_proof = self._upper.prove(trie_key)
        lower = self._lower.get(account)
        if lower is None:
            return LineageAnswer(
                account=account,
                t_from=t_from,
                t_to=t_to,
                versions=(),
                lower_root=None,
                upper_proof=upper_proof,
                window_proof=None,
            )
        versions, window_proof = lower.window_query(t_from, t_to)
        return LineageAnswer(
            account=account,
            t_from=t_from,
            t_to=t_to,
            versions=tuple(versions),
            lower_root=lower.root,
            upper_proof=upper_proof,
            window_proof=window_proof,
        )


def verify_lineage_answer(index_root: Digest, answer: LineageAnswer) -> bool:
    """Client check of a baseline answer against the index root."""
    trie_key = _account_trie_key(answer.account)
    if not mpt.verify_mpt(index_root, trie_key, answer.lower_root, answer.upper_proof):
        return False
    if answer.lower_root is None:
        return not answer.versions and answer.window_proof is None
    if answer.window_proof is None:
        return False
    if (answer.window_proof.lo, answer.window_proof.hi) != (answer.t_from, answer.t_to):
        return False
    return skiplist.verify_window(
        answer.lower_root, list(answer.versions), answer.window_proof
    )
