"""Verifiable-query layer (§5 of the paper).

The **Service Provider** (SP) maintains authenticated indexes over
blockchain data and answers queries with integrity proofs; the CI's
enclave certifies each index's root against the block that produced it
(augmented / hierarchical certificates); superlight clients verify
query answers against those certified roots.

* :mod:`indexes` — index *specs*: the deterministic write-data
  derivation and the pure proof-based root-update function the enclave
  runs, for both the two-level historical index and the keyword index.
* :mod:`api` — the typed query API: one request type per family, one
  answer envelope; exactly what the RPC layer serializes.
* :mod:`provider` — the SP: index maintenance and the single
  ``execute(request)`` dispatch (plus the networked ``QueryService``).
* :mod:`verifier` — client-side result verification; the unified
  ``verify(request, answer, certified_roots)`` entry point.
* :mod:`lineagechain` — the LineageChain baseline (skip-list lower
  level), used by the Fig. 11 comparison.
* :mod:`answercache` — the client-side LRU cache of *verified* answers,
  keyed by canonical request + certified root.
"""

from repro.query.answercache import StaleAnswer, VerifiedAnswerCache
from repro.query.api import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    QueryRequest,
    ValueRangeQuery,
)
from repro.query.indexes import (
    AccountHistoryIndexSpec,
    AggregateHistoryIndex,
    AuthenticatedIndexSpec,
    BalanceAggregateIndexSpec,
    KeywordIndexSpec,
    MaintainedKeywordIndex,
    TwoLevelHistoryIndex,
    TwoLevelUpdateProof,
    ValueRangeIndex,
    ValueRangeIndexSpec,
)
from repro.query.lineagechain import LineageChainIndex
from repro.query.provider import QueryService, QueryServiceProvider
from repro.query.verifier import (
    verify,
    verify_aggregate_answer,
    verify_baseline_history_answer,
    verify_history_answer,
    verify_keyword_answer,
)
from repro.query.indexes import verify_value_range_answer

__all__ = [
    "AccountHistoryIndexSpec",
    "AggregateHistoryIndex",
    "AggregateQuery",
    "AuthenticatedIndexSpec",
    "HistoryQuery",
    "KeywordQuery",
    "QueryAnswer",
    "QueryRequest",
    "QueryService",
    "StaleAnswer",
    "ValueRangeQuery",
    "verify",
    "BalanceAggregateIndexSpec",
    "KeywordIndexSpec",
    "LineageChainIndex",
    "MaintainedKeywordIndex",
    "QueryServiceProvider",
    "TwoLevelHistoryIndex",
    "TwoLevelUpdateProof",
    "ValueRangeIndex",
    "ValueRangeIndexSpec",
    "VerifiedAnswerCache",
    "verify_aggregate_answer",
    "verify_baseline_history_answer",
    "verify_history_answer",
    "verify_keyword_answer",
    "verify_value_range_answer",
]
