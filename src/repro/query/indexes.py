"""Authenticated index specs and SP-side maintained indexes.

A *spec* is the part of an index that must be trusted code: it lives
inside the CI's enclave (its source is folded into the enclave
measurement) and provides

* ``write_data(block, write_set)`` — the deterministic derivation of
  index updates from a certified block (Alg. 4 line 8's
  ``get_index_write_data``), and
* ``apply_writes(old_root, writes, proof)`` — the pure, proof-based
  recomputation of the index root after those updates (Alg. 4 lines
  9-10), built on the MB-tree insert proofs and MPT update proofs.

The *maintained* index is the SP's materialized copy: it ingests blocks,
produces the update proofs the CI ships into the enclave, and serves
queries (see :mod:`repro.query.provider`).

Two index families are implemented, matching the paper's case study
(Fig. 5): the two-level historical account index (MPT upper level,
MB-tree lower level) and the keyword inverted index.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.chain.block import Block
from repro.chain.state import state_key
from repro.crypto.hashing import Digest, sha256, tagged_hash
from repro.errors import ProofError, QueryError
from repro.merkle import aggtree, mbtree, mpt
from repro.merkle.mbtree import MBInsertProof, MerkleBTree
from repro.merkle.mpt import MerklePatriciaTrie, MPTProof

#: Upper bound for MB-tree keys used by full-range queries.
MAX_KEY = (1 << 63) - 1


def _account_trie_key(account: str) -> bytes:
    """MPT key for an account: fixed-width hash (balances trie shape)."""
    return tagged_hash("idx-account", account.encode("utf-8"))[:8]


@dataclass(frozen=True, slots=True)
class HistoryWrite:
    """One versioned value: ``account`` had ``value`` as of ``timestamp``."""

    account: str
    timestamp: int
    value: bytes


@dataclass(frozen=True, slots=True)
class TwoLevelUpdateProof:
    """Per-write openings, sequential against the evolving index."""

    steps: tuple[tuple[MBInsertProof, MPTProof], ...]

    def size_bytes(self) -> int:
        return sum(
            mb_proof.size_bytes() + mpt_proof.size_bytes()
            for mb_proof, mpt_proof in self.steps
        )


class AuthenticatedIndexSpec(ABC):
    """Trusted index logic (runs inside the enclave)."""

    #: Registry name; certificates are tracked per spec name.
    name: str = ""

    @abstractmethod
    def genesis_root(self) -> Digest:
        """The index root at chain genesis (hard-coded in the enclave)."""

    @abstractmethod
    def write_data(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple:
        """Deterministically derive this block's index writes."""

    @abstractmethod
    def apply_writes(self, old_root: Digest, writes: tuple, proof) -> Digest:
        """Pure function: the index root after applying ``writes``.

        Verifies ``proof`` against ``old_root`` along the way; raises
        :class:`ProofError` on any inconsistency.
        """


class AccountHistoryIndexSpec(AuthenticatedIndexSpec):
    """Two-level historical account index (Fig. 5, left).

    Tracks, for each account of one contract, the full timestamped
    history of a state field.  ``contract``/``field_prefix`` select
    which state cells count as account values; the block height is the
    version timestamp.
    """

    def __init__(
        self,
        name: str = "history",
        contract: str = "kvstore",
        field_prefix: str = "kv:",
        fanout: int = 16,
    ) -> None:
        self.name = name
        self.contract = contract
        self.field_prefix = field_prefix
        self.fanout = fanout

    def genesis_root(self) -> Digest:
        return mpt.EMPTY_DIGEST

    def accounts_touched(self, block: Block) -> list[str]:
        """Accounts whose value this block may have changed."""
        accounts: list[str] = []
        seen = set()
        for tx in block.transactions:
            if tx.contract != self.contract or not tx.args:
                continue
            account = tx.args[0]
            if account not in seen:
                seen.add(account)
                accounts.append(account)
        return accounts

    def write_data(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[HistoryWrite, ...]:
        writes: list[HistoryWrite] = []
        for account in self.accounts_touched(block):
            cell = state_key(self.contract, f"{self.field_prefix}{account}")
            if cell in write_set:
                value = write_set[cell]
                writes.append(
                    HistoryWrite(
                        account=account,
                        timestamp=block.header.height,
                        value=value if value is not None else b"",
                    )
                )
        return tuple(writes)

    def apply_writes(
        self, old_root: Digest, writes: tuple[HistoryWrite, ...], proof: TwoLevelUpdateProof
    ) -> Digest:
        if len(proof.steps) != len(writes):
            raise ProofError("index update proof does not cover every write")
        root = old_root
        for write, (mb_proof, mpt_proof) in zip(writes, proof.steps):
            trie_key = _account_trie_key(write.account)
            if mpt_proof.key != trie_key:
                raise ProofError("index proof bound to the wrong account")
            claimed = mpt.claimed_value(trie_key, mpt_proof)
            lower_root = claimed if claimed is not None else mbtree.EMPTY_ROOT
            if mb_proof.fanout != self.fanout:
                raise ProofError("lower-tree proof uses the wrong fanout")
            new_lower = mbtree.apply_insert(
                lower_root, write.timestamp, write.value, mb_proof
            )
            # apply_update re-verifies mpt_proof (and thus ``claimed``)
            # against the current root before producing the new one.
            root = mpt.apply_update(root, trie_key, new_lower, mpt_proof)
        return root


class TwoLevelHistoryIndex:
    """SP-side materialized two-level index for one history spec."""

    def __init__(self, spec: AccountHistoryIndexSpec) -> None:
        self.spec = spec
        self._upper = MerklePatriciaTrie()
        self._lower: dict[str, MerkleBTree] = {}

    @property
    def root(self) -> Digest:
        return self._upper.root

    def ingest_block(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[tuple[HistoryWrite, ...], TwoLevelUpdateProof]:
        """Apply the block's writes; return them plus the update proof.

        Proof steps are generated sequentially against the evolving
        structures, matching how the enclave replays them.
        """
        writes = self.spec.write_data(block, write_set)
        steps: list[tuple[MBInsertProof, MPTProof]] = []
        for write in writes:
            trie_key = _account_trie_key(write.account)
            lower = self._lower.get(write.account)
            if lower is None:
                lower = MerkleBTree(fanout=self.spec.fanout)
                self._lower[write.account] = lower
            mb_proof = lower.prove_insert(write.timestamp)
            mpt_proof = self._upper.prove(trie_key)
            lower.insert(write.timestamp, write.value)
            self._upper.insert(trie_key, lower.root)
            steps.append((mb_proof, mpt_proof))
        return writes, TwoLevelUpdateProof(steps=tuple(steps))

    def query_history(
        self, account: str, t_from: int, t_to: int
    ) -> "HistoryAnswer":
        """Versions of ``account`` in the window, with proofs."""
        trie_key = _account_trie_key(account)
        upper_proof = self._upper.prove(trie_key)
        lower = self._lower.get(account)
        if lower is None:
            return HistoryAnswer(
                account=account,
                t_from=t_from,
                t_to=t_to,
                versions=(),
                lower_root=None,
                upper_proof=upper_proof,
                range_proof=None,
            )
        versions, range_proof = lower.range_query(t_from, t_to)
        return HistoryAnswer(
            account=account,
            t_from=t_from,
            t_to=t_to,
            versions=tuple(versions),
            lower_root=lower.root,
            upper_proof=upper_proof,
            range_proof=range_proof,
        )


@dataclass(frozen=True, slots=True)
class HistoryAnswer:
    """SP's answer to a historical account query, with proofs."""

    account: str
    t_from: int
    t_to: int
    versions: tuple[tuple[int, bytes], ...]
    lower_root: Digest | None  # None: account has no history
    upper_proof: MPTProof
    range_proof: "mbtree.MBRangeProof | None"

    def proof_size_bytes(self) -> int:
        total = self.upper_proof.size_bytes()
        if self.range_proof is not None:
            total += self.range_proof.size_bytes()
        return total


@dataclass(frozen=True, slots=True)
class KeywordWrite:
    """One document: transaction ``seq`` carries ``keywords``."""

    seq: int
    keywords: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class KeywordUpdateProof:
    """Per (write, keyword) openings, sequential."""

    steps: tuple[tuple[str, MBInsertProof, MPTProof], ...]

    def size_bytes(self) -> int:
        return sum(
            len(keyword) + mb_proof.size_bytes() + mpt_proof.size_bytes()
            for keyword, mb_proof, mpt_proof in self.steps
        )


class KeywordIndexSpec(AuthenticatedIndexSpec):
    """Inverted keyword index over transactions (Fig. 5, right)."""

    def __init__(self, name: str = "keyword", fanout: int = 16) -> None:
        self.name = name
        self.fanout = fanout

    def genesis_root(self) -> Digest:
        return mpt.EMPTY_DIGEST

    def tx_seq(self, height: int, position: int) -> int:
        """Global transaction id: block height and in-block position."""
        if position >= 1 << 20:
            raise QueryError("block position exceeds the seq encoding")
        return (height << 20) | position

    def extract_keywords(self, tx) -> tuple[str, ...]:
        """Keywords of one transaction: whitespace tokens of its args."""
        tokens: list[str] = []
        seen = set()
        for arg in tx.args:
            for token in str(arg).lower().split():
                if token and token not in seen:
                    seen.add(token)
                    tokens.append(token)
        return tuple(tokens)

    def write_data(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[KeywordWrite, ...]:
        writes = []
        for position, tx in enumerate(block.transactions):
            keywords = self.extract_keywords(tx)
            if keywords:
                writes.append(
                    KeywordWrite(
                        seq=self.tx_seq(block.header.height, position),
                        keywords=keywords,
                    )
                )
        return tuple(writes)

    def apply_writes(
        self, old_root: Digest, writes: tuple[KeywordWrite, ...], proof: KeywordUpdateProof
    ) -> Digest:
        expected = [
            (write.seq, keyword) for write in writes for keyword in write.keywords
        ]
        if len(proof.steps) != len(expected):
            raise ProofError("keyword update proof does not cover every posting")
        root = old_root
        for (seq, keyword), (proof_keyword, mb_proof, mpt_proof) in zip(
            expected, proof.steps
        ):
            if proof_keyword != keyword:
                raise ProofError("keyword proof out of order")
            dict_key = keyword.encode("utf-8")
            if mpt_proof.key != dict_key:
                raise ProofError("dictionary proof bound to the wrong keyword")
            claimed = mpt.claimed_value(dict_key, mpt_proof)
            posting_root = claimed if claimed is not None else mbtree.EMPTY_ROOT
            if mb_proof.fanout != self.fanout:
                raise ProofError("posting-tree proof uses the wrong fanout")
            new_posting = mbtree.apply_insert(
                posting_root, seq, seq.to_bytes(8, "big"), mb_proof
            )
            root = mpt.apply_update(root, dict_key, new_posting, mpt_proof)
        return root


class MaintainedKeywordIndex:
    """SP-side materialized keyword index for one keyword spec.

    Query processing itself reuses :class:`repro.merkle.inverted`'s
    conjunctive scheme; this class keeps the two structures (dictionary
    MPT + per-keyword posting MB-trees) in the certified shape and
    produces enclave update proofs.
    """

    def __init__(self, spec: KeywordIndexSpec) -> None:
        self.spec = spec
        self._dictionary = MerklePatriciaTrie()
        self._postings: dict[str, MerkleBTree] = {}

    @property
    def root(self) -> Digest:
        return self._dictionary.root

    def posting_sizes(self) -> dict[str, int]:
        return {keyword: len(tree) for keyword, tree in self._postings.items()}

    def ingest_block(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[tuple[KeywordWrite, ...], KeywordUpdateProof]:
        writes = self.spec.write_data(block, write_set)
        steps: list[tuple[str, MBInsertProof, MPTProof]] = []
        for write in writes:
            for keyword in write.keywords:
                tree = self._postings.get(keyword)
                if tree is None:
                    tree = MerkleBTree(fanout=self.spec.fanout)
                    self._postings[keyword] = tree
                mb_proof = tree.prove_insert(write.seq)
                mpt_proof = self._dictionary.prove(keyword.encode("utf-8"))
                tree.insert(write.seq, write.seq.to_bytes(8, "big"))
                self._dictionary.insert(keyword.encode("utf-8"), tree.root)
                steps.append((keyword, mb_proof, mpt_proof))
        return writes, KeywordUpdateProof(steps=tuple(steps))

    def query_conjunctive(self, keywords: list[str]) -> "KeywordAnswer":
        """All tx seqs containing every keyword, with proofs."""
        if not keywords:
            raise QueryError("conjunctive query needs at least one keyword")
        unique = sorted(set(keywords))
        dictionary_proofs = []
        roots: dict[str, Digest | None] = {}
        for keyword in unique:
            tree = self._postings.get(keyword)
            roots[keyword] = tree.root if tree is not None else None
            dictionary_proofs.append(
                (keyword, roots[keyword], self._dictionary.prove(keyword.encode("utf-8")))
            )
        pivot = min(unique, key=lambda k: len(self._postings.get(k, ())))
        if roots[pivot] is None:
            return KeywordAnswer(
                keywords=tuple(unique),
                pivot=pivot,
                results=(),
                dictionary_proofs=tuple(dictionary_proofs),
                pivot_proof=None,
                point_proofs=(),
            )
        pivot_entries, pivot_proof = self._postings[pivot].range_query(0, MAX_KEY)
        point_proofs = []
        results = []
        for seq, _ in pivot_entries:
            in_all = True
            for keyword in unique:
                if keyword == pivot:
                    continue
                entries, point = self._postings[keyword].range_query(seq, seq)
                present = bool(entries)
                point_proofs.append((seq, keyword, present, point))
                in_all = in_all and present
            if in_all:
                results.append(seq)
        return KeywordAnswer(
            keywords=tuple(unique),
            pivot=pivot,
            results=tuple(results),
            dictionary_proofs=tuple(dictionary_proofs),
            pivot_proof=(tuple(seq for seq, _ in pivot_entries), pivot_proof),
            point_proofs=tuple(point_proofs),
        )


@dataclass(frozen=True, slots=True)
class KeywordAnswer:
    """SP's answer to a conjunctive keyword query, with proofs."""

    keywords: tuple[str, ...]
    pivot: str
    results: tuple[int, ...]
    dictionary_proofs: tuple[tuple[str, Digest | None, MPTProof], ...]
    pivot_proof: tuple[tuple[int, ...], "mbtree.MBRangeProof"] | None
    point_proofs: tuple[tuple[int, str, bool, "mbtree.MBRangeProof"], ...]

    def proof_size_bytes(self) -> int:
        total = sum(
            len(k) + 32 + proof.size_bytes() for k, _, proof in self.dictionary_proofs
        )
        if self.pivot_proof is not None:
            postings, proof = self.pivot_proof
            total += 8 * len(postings) + proof.size_bytes()
        for _, keyword, _, proof in self.point_proofs:
            total += 8 + len(keyword) + 1 + proof.size_bytes()
        return total


def verify_history_versions(
    index_root: Digest, answer: HistoryAnswer, expected_fanout: int = 16
) -> bool:
    """Client check of a :class:`HistoryAnswer` against a certified root."""
    trie_key = _account_trie_key(answer.account)
    if not mpt.verify_mpt(index_root, trie_key, answer.lower_root, answer.upper_proof):
        return False
    if answer.lower_root is None:
        return not answer.versions and answer.range_proof is None
    if answer.range_proof is None:
        return False
    if (answer.range_proof.lo, answer.range_proof.hi) != (answer.t_from, answer.t_to):
        return False
    return mbtree.verify_range(
        answer.lower_root, list(answer.versions), answer.range_proof
    )


def verify_keyword_results(index_root: Digest, answer: KeywordAnswer) -> bool:
    """Client check of a :class:`KeywordAnswer` against a certified root."""
    roots: dict[str, Digest | None] = {}
    for keyword, posting_root, proof in answer.dictionary_proofs:
        if not mpt.verify_mpt(index_root, keyword.encode("utf-8"), posting_root, proof):
            return False
        roots[keyword] = posting_root
    if set(roots) != set(answer.keywords) or answer.pivot not in roots:
        return False
    pivot_root = roots[answer.pivot]
    if pivot_root is None:
        return not answer.results and answer.pivot_proof is None
    if answer.pivot_proof is None:
        return False
    postings, pivot_proof = answer.pivot_proof
    entries = [(seq, seq.to_bytes(8, "big")) for seq in postings]
    if (pivot_proof.lo, pivot_proof.hi) != (0, MAX_KEY):
        return False
    if not mbtree.verify_range(pivot_root, entries, pivot_proof):
        return False
    point: dict[tuple[int, str], tuple[bool, object]] = {}
    for seq, keyword, present, proof in answer.point_proofs:
        if (seq, keyword) in point:
            return False
        point[(seq, keyword)] = (present, proof)
    others = [k for k in answer.keywords if k != answer.pivot]
    expected = []
    for seq in postings:
        in_all = True
        for keyword in others:
            if (seq, keyword) not in point:
                return False
            present, proof = point[(seq, keyword)]
            posting_root = roots[keyword]
            if posting_root is None:
                return False
            if (proof.lo, proof.hi) != (seq, seq):
                return False
            claimed = [(seq, seq.to_bytes(8, "big"))] if present else []
            if not mbtree.verify_range(posting_root, claimed, proof):
                return False
            in_all = in_all and present
        if in_all:
            expected.append(seq)
    if len(point) != len(postings) * len(others):
        return False
    return tuple(expected) == answer.results


# -- aggregate queries (the §5.1 "aggregations" extension) --------------------


@dataclass(frozen=True, slots=True)
class AggregateWrite:
    """One numeric observation: ``account`` was worth ``value`` at ``timestamp``."""

    account: str
    timestamp: int
    value: int


@dataclass(frozen=True, slots=True)
class AggregateUpdateProof:
    """Per-write openings, sequential against the evolving index."""

    steps: tuple[tuple["aggtree.AggInsertProof", MPTProof], ...]

    def size_bytes(self) -> int:
        return sum(
            agg_proof.size_bytes() + mpt_proof.size_bytes()
            for agg_proof, mpt_proof in self.steps
        )


class BalanceAggregateIndexSpec(AuthenticatedIndexSpec):
    """Two-level aggregate index over a numeric state field.

    Upper level: MPT mapping accounts to the root of their series tree.
    Lower level: an aggregate-authenticated MB-tree keyed by block
    height whose values are the field's integer value at that height —
    so clients can run verifiable SUM/COUNT/MIN/MAX/AVG over any time
    window of any account (e.g. SmallBank checking balances).
    """

    def __init__(
        self,
        name: str = "aggregate",
        contract: str = "smallbank",
        field_prefix: str = "checking:",
        fanout: int = 16,
    ) -> None:
        self.name = name
        self.contract = contract
        self.field_prefix = field_prefix
        self.fanout = fanout

    def genesis_root(self) -> Digest:
        return mpt.EMPTY_DIGEST

    def _decode_value(self, raw: bytes) -> int:
        return int.from_bytes(raw, "big", signed=True)

    def accounts_touched(self, block: Block) -> list[str]:
        accounts: list[str] = []
        seen = set()
        for tx in block.transactions:
            if tx.contract != self.contract:
                continue
            for arg in tx.args:
                if arg not in seen:
                    seen.add(arg)
                    accounts.append(arg)
        return accounts

    def write_data(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[AggregateWrite, ...]:
        writes: list[AggregateWrite] = []
        for account in self.accounts_touched(block):
            cell = state_key(self.contract, f"{self.field_prefix}{account}")
            raw = write_set.get(cell)
            if raw is not None:
                writes.append(
                    AggregateWrite(
                        account=account,
                        timestamp=block.header.height,
                        value=self._decode_value(raw),
                    )
                )
        return tuple(writes)

    def apply_writes(
        self,
        old_root: Digest,
        writes: tuple[AggregateWrite, ...],
        proof: AggregateUpdateProof,
    ) -> Digest:
        if len(proof.steps) != len(writes):
            raise ProofError("aggregate update proof does not cover every write")
        root = old_root
        for write, (agg_proof, mpt_proof) in zip(writes, proof.steps):
            trie_key = _account_trie_key(write.account)
            if mpt_proof.key != trie_key:
                raise ProofError("aggregate proof bound to the wrong account")
            claimed = mpt.claimed_value(trie_key, mpt_proof)
            lower_root = claimed if claimed is not None else aggtree.EMPTY_ROOT
            if agg_proof.fanout != self.fanout:
                raise ProofError("aggregate-tree proof uses the wrong fanout")
            new_lower = aggtree.apply_insert(
                lower_root, write.timestamp, write.value, agg_proof
            )
            root = mpt.apply_update(root, trie_key, new_lower, mpt_proof)
        return root


class AggregateHistoryIndex:
    """SP-side materialized aggregate index for one aggregate spec."""

    def __init__(self, spec: BalanceAggregateIndexSpec) -> None:
        self.spec = spec
        self._upper = MerklePatriciaTrie()
        self._lower: dict[str, "aggtree.AggregateMBTree"] = {}

    @property
    def root(self) -> Digest:
        return self._upper.root

    def ingest_block(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[tuple[AggregateWrite, ...], AggregateUpdateProof]:
        writes = self.spec.write_data(block, write_set)
        steps = []
        for write in writes:
            trie_key = _account_trie_key(write.account)
            lower = self._lower.get(write.account)
            if lower is None:
                lower = aggtree.AggregateMBTree(fanout=self.spec.fanout)
                self._lower[write.account] = lower
            agg_proof = lower.prove_insert(write.timestamp)
            mpt_proof = self._upper.prove(trie_key)
            lower.insert(write.timestamp, write.value)
            self._upper.insert(trie_key, lower.root)
            steps.append((agg_proof, mpt_proof))
        return writes, AggregateUpdateProof(steps=tuple(steps))

    def query_aggregate(
        self, account: str, t_from: int, t_to: int
    ) -> "AggregateAnswer":
        """The (count, sum, min, max) of an account's values in a window."""
        trie_key = _account_trie_key(account)
        upper_proof = self._upper.prove(trie_key)
        lower = self._lower.get(account)
        if lower is None:
            return AggregateAnswer(
                account=account, t_from=t_from, t_to=t_to,
                aggregate=None, lower_root=None,
                upper_proof=upper_proof, range_proof=None,
            )
        aggregate, range_proof = lower.aggregate_query(t_from, t_to)
        return AggregateAnswer(
            account=account, t_from=t_from, t_to=t_to,
            aggregate=aggregate, lower_root=lower.root,
            upper_proof=upper_proof, range_proof=range_proof,
        )


@dataclass(frozen=True, slots=True)
class AggregateAnswer:
    """SP's answer to an aggregate query, with proofs."""

    account: str
    t_from: int
    t_to: int
    aggregate: "aggtree.Aggregate | None"
    lower_root: Digest | None
    upper_proof: MPTProof
    range_proof: "aggtree.AggRangeProof | None"

    @property
    def average(self) -> float | None:
        if self.aggregate is None or self.aggregate.count == 0:
            return None
        return self.aggregate.total / self.aggregate.count

    def proof_size_bytes(self) -> int:
        total = self.upper_proof.size_bytes()
        if self.range_proof is not None:
            total += self.range_proof.size_bytes()
        return total


def verify_aggregate_answer(index_root: Digest, answer: AggregateAnswer) -> bool:
    """Client check of an :class:`AggregateAnswer` against a certified root."""
    trie_key = _account_trie_key(answer.account)
    if not mpt.verify_mpt(index_root, trie_key, answer.lower_root, answer.upper_proof):
        return False
    if answer.lower_root is None:
        return answer.aggregate is None and answer.range_proof is None
    if answer.range_proof is None:
        return False
    if (answer.range_proof.lo, answer.range_proof.hi) != (answer.t_from, answer.t_to):
        return False
    return aggtree.verify_aggregate(
        answer.lower_root, answer.aggregate, answer.range_proof
    )


# -- value-range queries (the on-demand "new query type" §5.4 promises) -------
#
# "Which accounts currently hold a balance in [lo, hi]?"  A vChain-style
# boolean range query over *current* state, served by yet another
# certified index — demonstrating the on-demand extensibility DCert
# claims over built-in designs.
#
# Structure: an MB-tree keyed by enc(value, slot) mapping to the account
# name (overwritten with a tombstone once the value changes), plus an
# MPT *directory* mapping each account to its (slot, live key) and a
# reserved counter cell minting slots first-seen.  The certified root is
# H(directory_root || tree_root).  Value changes never delete — the old
# entry becomes a tombstone — so every update is expressible as the
# proof-based inserts/updates the enclave can replay.

_VALUE_OFFSET = 1 << 40  # supports values in (-2^40, 2^40)
_SLOT_BITS = 20  # up to ~1M accounts
_TOMBSTONE = b"\x00"
_SLOT_COUNTER_KEY = b"\x00slots"


def _range_key(value: int, slot: int) -> int:
    if not -_VALUE_OFFSET < value < _VALUE_OFFSET:
        raise QueryError("value outside the indexable range")
    return ((value + _VALUE_OFFSET) << _SLOT_BITS) | slot


def _decode_range_key(key: int) -> tuple[int, int]:
    return (key >> _SLOT_BITS) - _VALUE_OFFSET, key & ((1 << _SLOT_BITS) - 1)


def _directory_entry(slot: int, live_key: int) -> bytes:
    return slot.to_bytes(4, "big") + live_key.to_bytes(8, "big")


def _parse_directory_entry(raw: bytes) -> tuple[int, int]:
    return int.from_bytes(raw[:4], "big"), int.from_bytes(raw[4:], "big")


def combined_range_root(directory_root: Digest, tree_root: Digest) -> Digest:
    """The certified commitment over the two component structures."""
    return sha256(b"value-range-root" + directory_root + tree_root)


@dataclass(frozen=True, slots=True)
class ValueRangeWrite:
    """One balance change: ``account`` moved to ``value`` at this block."""

    account: str
    value: int


@dataclass(frozen=True, slots=True)
class ValueRangeUpdateProof:
    """Sequential openings for one block's value-range index updates.

    Carries the claimed pre-state component roots (checked against the
    old combined root first).  Per write, in enclave replay order: the
    slot-counter proof, the tombstone insert proof (None for new
    accounts), the live-entry insert proof, and the account directory
    proof — the latter generated *after* any counter update, since MPT
    paths share nodes.
    """

    pre_directory_root: Digest
    pre_tree_root: Digest
    steps: tuple[
        tuple[MPTProof, "mbtree.MBInsertProof | None", "mbtree.MBInsertProof", MPTProof],
        ...,
    ]

    def size_bytes(self) -> int:
        total = 64
        for counter, tombstone, live, directory in self.steps:
            total += counter.size_bytes() + directory.size_bytes()
            total += tombstone.size_bytes() if tombstone is not None else 0
            total += live.size_bytes()
        return total


class ValueRangeIndexSpec(AuthenticatedIndexSpec):
    """Certified current-value range index over a numeric state field."""

    def __init__(
        self,
        name: str = "value-range",
        contract: str = "smallbank",
        field_prefix: str = "checking:",
        fanout: int = 16,
    ) -> None:
        self.name = name
        self.contract = contract
        self.field_prefix = field_prefix
        self.fanout = fanout

    def genesis_root(self) -> Digest:
        return combined_range_root(mpt.EMPTY_DIGEST, mbtree.EMPTY_ROOT)

    def _decode_value(self, raw: bytes) -> int:
        return int.from_bytes(raw, "big", signed=True)

    def write_data(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[ValueRangeWrite, ...]:
        accounts: list[str] = []
        seen = set()
        for tx in block.transactions:
            if tx.contract != self.contract:
                continue
            for arg in tx.args:
                if arg not in seen:
                    seen.add(arg)
                    accounts.append(arg)
        writes = []
        for account in accounts:
            cell = state_key(self.contract, f"{self.field_prefix}{account}")
            raw = write_set.get(cell)
            if raw is not None:
                writes.append(
                    ValueRangeWrite(account=account, value=self._decode_value(raw))
                )
        return tuple(writes)

    def apply_writes(
        self,
        old_root: Digest,
        writes: tuple[ValueRangeWrite, ...],
        proof: ValueRangeUpdateProof,
    ) -> Digest:
        if combined_range_root(proof.pre_directory_root, proof.pre_tree_root) != old_root:
            raise ProofError("claimed component roots do not match the index root")
        if len(proof.steps) != len(writes):
            raise ProofError("value-range proof does not cover every write")
        directory_root = proof.pre_directory_root
        tree_root = proof.pre_tree_root
        for write, (counter_proof, tomb_proof, live_proof, dir_proof) in zip(
            writes, proof.steps
        ):
            account_key = write.account.encode("utf-8")
            if dir_proof.key != account_key:
                raise ProofError("directory proof bound to the wrong account")
            if counter_proof.key != _SLOT_COUNTER_KEY:
                raise ProofError("slot counter proof bound to the wrong key")
            if live_proof.fanout != self.fanout or (
                tomb_proof is not None and tomb_proof.fanout != self.fanout
            ):
                raise ProofError("range-tree proof uses the wrong fanout")
            counter_raw = mpt.claimed_value(_SLOT_COUNTER_KEY, counter_proof)
            slot_count = (
                int.from_bytes(counter_raw, "big") if counter_raw is not None else 0
            )
            # Unverified peek to pick the branch; each branch's proof
            # verification then holds the SP to that claim.
            existing = mpt.claimed_value(account_key, dir_proof)
            if existing is None:
                # New account: mint the next slot (counter proof is
                # verified by apply_update against the current root).
                slot = slot_count
                directory_root = mpt.apply_update(
                    directory_root,
                    _SLOT_COUNTER_KEY,
                    (slot_count + 1).to_bytes(8, "big"),
                    counter_proof,
                )
                if tomb_proof is not None:
                    raise ProofError("new account cannot have a tombstone step")
            else:
                if not mpt.verify_mpt(
                    directory_root, _SLOT_COUNTER_KEY, counter_raw, counter_proof
                ):
                    raise ProofError("slot counter proof invalid")
                slot, old_live_key = _parse_directory_entry(existing)
                if slot >= slot_count:
                    raise ProofError("directory slot exceeds the minted range")
                if tomb_proof is None:
                    raise ProofError("existing account update needs a tombstone")
                if tomb_proof.key != old_live_key:
                    raise ProofError("tombstone bound to the wrong entry")
                tree_root = mbtree.apply_insert(
                    tree_root, old_live_key, _TOMBSTONE, tomb_proof
                )
            new_key = _range_key(write.value, slot)
            if live_proof.key != new_key:
                raise ProofError("live entry bound to the wrong key")
            tree_root = mbtree.apply_insert(
                tree_root, new_key, write.account.encode("utf-8"), live_proof
            )
            # apply_update verifies dir_proof (with its claimed existing
            # value) against the post-counter directory root, closing the
            # unverified peek above.
            directory_root = mpt.apply_update(
                directory_root,
                account_key,
                _directory_entry(slot, new_key),
                dir_proof,
            )
        return combined_range_root(directory_root, tree_root)


class ValueRangeIndex:
    """SP-side materialized value-range index."""

    def __init__(self, spec: ValueRangeIndexSpec) -> None:
        self.spec = spec
        self._directory = MerklePatriciaTrie()
        self._tree = MerkleBTree(fanout=spec.fanout)

    @property
    def root(self) -> Digest:
        return combined_range_root(self._directory.root, self._tree.root)

    @property
    def component_roots(self) -> tuple[Digest, Digest]:
        return self._directory.root, self._tree.root

    def ingest_block(
        self, block: Block, write_set: dict[bytes, bytes | None]
    ) -> tuple[tuple[ValueRangeWrite, ...], ValueRangeUpdateProof]:
        writes = self.spec.write_data(block, write_set)
        pre_directory_root = self._directory.root
        pre_tree_root = self._tree.root
        steps = []
        for write in writes:
            account_key = write.account.encode("utf-8")
            counter_proof = self._directory.prove(_SLOT_COUNTER_KEY)
            existing = self._directory.get(account_key)
            tomb_proof = None
            if existing is None:
                counter_raw = self._directory.get(_SLOT_COUNTER_KEY)
                slot = int.from_bytes(counter_raw, "big") if counter_raw else 0
                self._directory.insert(
                    _SLOT_COUNTER_KEY, (slot + 1).to_bytes(8, "big")
                )
            else:
                slot, old_live_key = _parse_directory_entry(existing)
                tomb_proof = self._tree.prove_insert(old_live_key)
                self._tree.insert(old_live_key, _TOMBSTONE)
            new_key = _range_key(write.value, slot)
            live_proof = self._tree.prove_insert(new_key)
            self._tree.insert(new_key, account_key)
            dir_proof = self._directory.prove(account_key)
            self._directory.insert(account_key, _directory_entry(slot, new_key))
            steps.append((counter_proof, tomb_proof, live_proof, dir_proof))
        return writes, ValueRangeUpdateProof(
            pre_directory_root=pre_directory_root,
            pre_tree_root=pre_tree_root,
            steps=tuple(steps),
        )

    def query_range(self, lo: int, hi: int) -> "ValueRangeAnswer":
        """All accounts whose *current* value lies in ``[lo, hi]``."""
        lo_key = _range_key(lo, 0)
        hi_key = _range_key(hi, (1 << _SLOT_BITS) - 1)
        entries, proof = self._tree.range_query(lo_key, hi_key)
        matches = tuple(
            (_decode_range_key(key)[0], value.decode("utf-8"))
            for key, value in entries
            if value != _TOMBSTONE
        )
        return ValueRangeAnswer(
            lo=lo,
            hi=hi,
            matches=matches,
            entries=tuple(entries),
            directory_root=self._directory.root,
            tree_root=self._tree.root,
            range_proof=proof,
        )


@dataclass(frozen=True, slots=True)
class ValueRangeAnswer:
    """SP's answer to a current-value range query, with proofs."""

    lo: int
    hi: int
    matches: tuple[tuple[int, str], ...]  # (value, account), live only
    entries: tuple[tuple[int, bytes], ...]  # raw tree entries incl. tombstones
    directory_root: Digest
    tree_root: Digest
    range_proof: "mbtree.MBRangeProof"

    def proof_size_bytes(self) -> int:
        return 64 + self.range_proof.size_bytes()


def verify_value_range_answer(index_root: Digest, answer: ValueRangeAnswer) -> bool:
    """Client check of a :class:`ValueRangeAnswer` against a certified root."""
    if combined_range_root(answer.directory_root, answer.tree_root) != index_root:
        return False
    lo_key = _range_key(answer.lo, 0)
    hi_key = _range_key(answer.hi, (1 << _SLOT_BITS) - 1)
    if (answer.range_proof.lo, answer.range_proof.hi) != (lo_key, hi_key):
        return False
    if not mbtree.verify_range(
        answer.tree_root, list(answer.entries), answer.range_proof
    ):
        return False
    expected = tuple(
        (_decode_range_key(key)[0], value.decode("utf-8"))
        for key, value in answer.entries
        if value != _TOMBSTONE
    )
    return expected == answer.matches
