"""Client-side cache of verified query answers.

Certificates change what a cache has to fear.  An ordinary response
cache must trust whoever filled it; here an entry is admitted only
*after* :meth:`~repro.core.superlight.SuperlightClient.verify_answer`
succeeded, and it is keyed by the canonical wire encoding of the typed
request **plus the certified index root the verification ran against**.
That second key component is the invalidation story: when the client
adopts a new certified tip the roots move, lookups start using the new
root, and every old entry silently stops matching — a cached answer can
never be served against a root it was not verified under.  Entries
stranded under superseded roots are garbage, not a hazard;
:meth:`VerifiedAnswerCache.retain_roots` sweeps them out (and counts
them) whenever the client syncs.

Capacity is LRU-bounded, and hits/misses/invalidations/evictions are
exported through :mod:`repro.obs` so the fleet benchmark can show the
warm-hit path doing zero RPC round trips.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable

from repro import obs
from repro.net import wire
from repro.query.api import QueryAnswer, QueryRequest

#: (canonical request bytes, certified root) -> verified answer.
CacheKey = tuple[bytes, bytes]


class VerifiedAnswerCache:
    """LRU cache of answers that passed verification at a known root."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, QueryAnswer] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @staticmethod
    def key(request: QueryRequest, root: bytes) -> CacheKey:
        """Canonical cache key: wire-encoded request + certified root."""
        return (wire.encode(request), bytes(root))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, request: QueryRequest, root: bytes) -> QueryAnswer | None:
        """The cached verified answer for ``request`` at ``root``, if any."""
        entry = self._entries.get(self.key(request, root))
        if entry is None:
            self.misses += 1
            obs.inc("cache.answer.misses")
            return None
        self._entries.move_to_end(self.key(request, root))
        self.hits += 1
        obs.inc("cache.answer.hits")
        return entry

    def put(self, request: QueryRequest, root: bytes, answer: QueryAnswer) -> None:
        """Admit a **verified** answer.  Callers must only put answers
        that passed ``verify_answer`` against exactly ``root``."""
        key = self.key(request, root)
        self._entries[key] = answer
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.inc("cache.answer.evictions")
        obs.set_gauge("cache.answer.entries", len(self._entries))

    def retain_roots(self, roots: Iterable[bytes]) -> int:
        """Drop entries verified under roots no longer certified.

        Call after a tip advance; returns how many entries were swept.
        (Correctness never depends on this — a stale entry can no
        longer be *looked up* once the root moved — it only bounds
        memory and feeds the invalidation counter.)
        """
        keep = {bytes(root) for root in roots}
        stale = [key for key in self._entries if key[1] not in keep]
        for key in stale:
            del self._entries[key]
        if stale:
            self.invalidations += len(stale)
            obs.inc("cache.answer.invalidations", len(stale))
            obs.set_gauge("cache.answer.entries", len(self._entries))
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        obs.set_gauge("cache.answer.entries", 0)
