"""Client-side cache of verified query answers.

Certificates change what a cache has to fear.  An ordinary response
cache must trust whoever filled it; here an entry is admitted only
*after* :meth:`~repro.core.superlight.SuperlightClient.verify_answer`
succeeded, and it is keyed by the canonical wire encoding of the typed
request **plus the certified index root the verification ran against**.
That second key component is the invalidation story: when the client
adopts a new certified tip the roots move, lookups start using the new
root, and every old entry silently stops matching — a cached answer can
never be served against a root it was not verified under.  Entries
stranded under superseded roots are garbage, not a hazard;
:meth:`VerifiedAnswerCache.retain_roots` sweeps them out (and counts
them) whenever the client syncs.

Capacity is LRU-bounded, and hits/misses/invalidations/evictions are
exported through :mod:`repro.obs` so the fleet benchmark can show the
warm-hit path doing zero RPC round trips.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro import obs
from repro.net import wire
from repro.query.api import QueryAnswer, QueryRequest

#: (canonical request bytes, certified root) -> verified answer.
CacheKey = tuple[bytes, bytes]


@dataclass(frozen=True, slots=True)
class StaleAnswer:
    """A previously-verified answer served while the tier is shedding.

    The graceful-degradation contract: the answer **did** pass
    ``verify_answer`` — just against ``root`` (certified at ``height``),
    not necessarily the current tip.  ``stale=True`` is the caller's
    signal that freshness, not correctness, was sacrificed; a client
    that cannot tolerate staleness simply does not opt in.
    """

    answer: QueryAnswer
    #: The certified index root the answer verified against.
    root: bytes
    #: The chain height that root was certified at (-1 when unknown).
    height: int = -1
    stale: bool = True


class VerifiedAnswerCache:
    """LRU cache of answers that passed verification at a known root."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, QueryAnswer] = OrderedDict()
        #: Sidecar for graceful degradation, keyed by request bytes
        #: alone: the most recent verified answer for each request,
        #: *kept* when roots advance (that is its whole point) and
        #: served only as an explicitly-flagged :class:`StaleAnswer`.
        #: Strictly separate from ``_entries`` so the fresh path can
        #: never accidentally serve under a superseded root.
        self._stale: OrderedDict[bytes, StaleAnswer] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.stale_hits = 0
        self.stale_misses = 0

    @staticmethod
    def key(request: QueryRequest, root: bytes) -> CacheKey:
        """Canonical cache key: wire-encoded request + certified root."""
        return (wire.encode(request), bytes(root))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, request: QueryRequest, root: bytes) -> QueryAnswer | None:
        """The cached verified answer for ``request`` at ``root``, if any."""
        entry = self._entries.get(self.key(request, root))
        if entry is None:
            self.misses += 1
            obs.inc("cache.answer.misses")
            return None
        self._entries.move_to_end(self.key(request, root))
        self.hits += 1
        obs.inc("cache.answer.hits")
        return entry

    def put(
        self,
        request: QueryRequest,
        root: bytes,
        answer: QueryAnswer,
        *,
        height: int = -1,
    ) -> None:
        """Admit a **verified** answer.  Callers must only put answers
        that passed ``verify_answer`` against exactly ``root``;
        ``height`` records what chain height that root was certified
        at, so a degraded (stale) serve can report its age."""
        key = self.key(request, root)
        self._entries[key] = answer
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            obs.inc("cache.answer.evictions")
        stale_key = key[0]
        self._stale[stale_key] = StaleAnswer(
            answer=answer, root=bytes(root), height=height
        )
        self._stale.move_to_end(stale_key)
        while len(self._stale) > self.capacity:
            self._stale.popitem(last=False)
        obs.set_gauge("cache.answer.entries", len(self._entries))

    def get_stale(self, request: QueryRequest) -> StaleAnswer | None:
        """The last verified answer for ``request`` under *any* root.

        The degraded path: only consulted when the serving tier is
        shedding and the caller opted into stale answers.  Never
        consulted by :meth:`get`, which remains root-exact.
        """
        entry = self._stale.get(wire.encode(request))
        if entry is None:
            self.stale_misses += 1
            obs.inc("cache.answer.stale_misses")
            return None
        self._stale.move_to_end(wire.encode(request))
        self.stale_hits += 1
        obs.inc("cache.answer.stale_hits")
        return entry

    def retain_roots(self, roots: Iterable[bytes]) -> int:
        """Drop entries verified under roots no longer certified.

        Call after a tip advance; returns how many entries were swept.
        (Correctness never depends on this — a stale entry can no
        longer be *looked up* once the root moved — it only bounds
        memory and feeds the invalidation counter.)  The stale sidecar
        is deliberately **not** swept: keeping the last verified answer
        across root advances is what graceful degradation serves from.
        """
        keep = {bytes(root) for root in roots}
        stale = [key for key in self._entries if key[1] not in keep]
        for key in stale:
            del self._entries[key]
        if stale:
            self.invalidations += len(stale)
            obs.inc("cache.answer.invalidations", len(stale))
            obs.set_gauge("cache.answer.entries", len(self._entries))
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self._stale.clear()
        obs.set_gauge("cache.answer.entries", 0)
