"""Client-side query verification entry points.

The unified path is :func:`verify`: one call checks any
:class:`repro.query.api.QueryAnswer` against the request the client
actually issued and the certified index roots — the mirror image of
:meth:`repro.query.provider.QueryServiceProvider.execute`.  It rejects

* an answer echoing a different request than the one asked,
* a payload of the wrong family or claiming different query bounds, and
* any payload whose proofs fail against the certified root,

so a response corrupted in flight (or forged by an untrusted SP) can
never be accepted, only detected.

The per-family ``verify_*_answer`` helpers remain as thin, documented
aliases over the structure-specific verifiers.  The roots these
functions take must come from validated DCert index certificates — see
:meth:`repro.core.superlight.SuperlightClient.certified_index_root`.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.crypto.hashing import Digest
from repro.errors import QueryError
from repro.query.api import (
    AggregateQuery,
    HistoryQuery,
    KeywordQuery,
    QueryAnswer,
    QueryRequest,
    ValueRangeQuery,
)
from repro.query.indexes import (
    AggregateAnswer,
    HistoryAnswer,
    KeywordAnswer,
    ValueRangeAnswer,
    verify_aggregate_answer as _verify_aggregate_answer,
    verify_history_versions,
    verify_keyword_results,
    verify_value_range_answer,
)
from repro.query.lineagechain import LineageAnswer, verify_lineage_answer

#: How certified roots are supplied: a name->root mapping or a lookup
#: callable (e.g. ``SuperlightClient.certified_index_root``).
RootSource = Mapping[str, Digest] | Callable[[str], Digest]


def _certified_root(roots: RootSource, index: str) -> Digest:
    if callable(roots):
        return roots(index)
    try:
        return roots[index]
    except KeyError:
        raise QueryError(f"no certified root for index {index!r}") from None


def verify(
    request: QueryRequest, answer: QueryAnswer, certified_roots: RootSource
) -> bool:
    """Check ``answer`` really answers ``request`` under certified roots.

    Returns False on any mismatch or proof failure; raises
    :class:`QueryError` only when no certified root is known for the
    requested index (that is a client-state problem, not a bad answer).
    """
    if not isinstance(answer, QueryAnswer) or answer.request != request:
        return False
    root = _certified_root(certified_roots, request.index)
    payload = answer.payload
    if isinstance(request, HistoryQuery):
        return (
            isinstance(payload, HistoryAnswer)
            and (payload.account, payload.t_from, payload.t_to)
            == (request.account, request.t_from, request.t_to)
            and verify_history_versions(root, payload)
        )
    if isinstance(request, AggregateQuery):
        return (
            isinstance(payload, AggregateAnswer)
            and (payload.account, payload.t_from, payload.t_to)
            == (request.account, request.t_from, request.t_to)
            and _verify_aggregate_answer(root, payload)
        )
    if isinstance(request, ValueRangeQuery):
        return (
            isinstance(payload, ValueRangeAnswer)
            and (payload.lo, payload.hi) == (request.lo, request.hi)
            and verify_value_range_answer(root, payload)
        )
    if isinstance(request, KeywordQuery):
        # The SP canonicalizes keywords to sorted-unique; compare the
        # request's keywords under the same canonical form.
        return (
            isinstance(payload, KeywordAnswer)
            and payload.keywords == tuple(sorted(set(request.keywords)))
            and verify_keyword_results(root, payload)
        )
    return False


# -- per-family aliases -----------------------------------------------------


def verify_history_answer(certified_root: Digest, answer: HistoryAnswer) -> bool:
    """Verify a historical account query answer (DCert two-level index)."""
    return verify_history_versions(certified_root, answer)


def verify_keyword_answer(certified_root: Digest, answer: KeywordAnswer) -> bool:
    """Verify a conjunctive keyword query answer."""
    return verify_keyword_results(certified_root, answer)


def verify_aggregate_answer(certified_root: Digest, answer: AggregateAnswer) -> bool:
    """Verify a SUM/COUNT/MIN/MAX aggregate answer (aggregate MB-tree)."""
    return _verify_aggregate_answer(certified_root, answer)


def verify_baseline_history_answer(
    index_root: Digest, answer: LineageAnswer
) -> bool:
    """Verify a LineageChain-baseline historical query answer."""
    return verify_lineage_answer(index_root, answer)
