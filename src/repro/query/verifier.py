"""Client-side query verification entry points.

Thin, documented aliases over the structure-specific verifiers so that
application code (and the examples) can import everything it needs to
check an SP's answers from one place.  The roots these functions take
must come from validated DCert index certificates — see
:meth:`repro.core.superlight.SuperlightClient.certified_index_root`.
"""

from __future__ import annotations

from repro.crypto.hashing import Digest
from repro.query.indexes import (
    AggregateAnswer,
    HistoryAnswer,
    KeywordAnswer,
    verify_aggregate_answer as _verify_aggregate_answer,
    verify_history_versions,
    verify_keyword_results,
)
from repro.query.lineagechain import LineageAnswer, verify_lineage_answer


def verify_history_answer(certified_root: Digest, answer: HistoryAnswer) -> bool:
    """Verify a historical account query answer (DCert two-level index)."""
    return verify_history_versions(certified_root, answer)


def verify_keyword_answer(certified_root: Digest, answer: KeywordAnswer) -> bool:
    """Verify a conjunctive keyword query answer."""
    return verify_keyword_results(certified_root, answer)


def verify_aggregate_answer(certified_root: Digest, answer: AggregateAnswer) -> bool:
    """Verify a SUM/COUNT/MIN/MAX aggregate answer (aggregate MB-tree)."""
    return _verify_aggregate_answer(certified_root, answer)


def verify_baseline_history_answer(
    index_root: Digest, answer: LineageAnswer
) -> bool:
    """Verify a LineageChain-baseline historical query answer."""
    return verify_lineage_answer(index_root, answer)
