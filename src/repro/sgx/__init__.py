"""Simulated Intel SGX: enclaves, attestation, and a calibrated cost model.

The paper's prototype runs its certificate-signing program inside a real
SGX enclave (Teaclave SDK).  This package reproduces the *interface and
economics* of SGX in software, which is what DCert's design and all of
its measured effects depend on:

* **Isolation & code identity** — :class:`EnclaveHost` instantiates an
  enclave program behind an Ecall boundary; the program's *measurement*
  is the hash of its source code, so a modified program yields a
  different measurement and fails attestation, exactly like MRENCLAVE.
* **Hardware-protected keys** — key material generated inside the
  enclave never crosses the boundary; the host only sees public keys.
* **Remote attestation** — a per-platform hardware key signs quotes;
  the simulated Intel Attestation Service verifies them and issues
  IAS-signed reports that clients check against the well-known IAS key.
* **Performance model** — Ecall/Ocall transitions carry a fixed cost,
  in-enclave execution pays a calibrated slowdown factor, and exceeding
  the 93 MB usable EPC triggers per-MB paging charges.  The defaults
  reproduce the paper's observation that the enclave costs at most
  ~1.8x (Fig. 8) and that shipping larger read/write sets into the
  enclave hurts (Fig. 9).

Substitution note (see DESIGN.md §2): none of DCert's algorithms depend
on x86 microarchitecture — only on this interface — so the simulation
preserves every behaviour the evaluation measures.
"""

from repro.sgx.attestation import (
    AttestationReport,
    AttestationService,
    Quote,
    WELL_KNOWN_IAS,
)
from repro.sgx.costs import CostLedger, SGXCostModel, cost_model_disabled
from repro.sgx.enclave import EnclaveHost, EnclaveProgram, measure_program
from repro.sgx.platform import SGXPlatform

__all__ = [
    "AttestationReport",
    "AttestationService",
    "CostLedger",
    "EnclaveHost",
    "EnclaveProgram",
    "Quote",
    "SGXCostModel",
    "SGXPlatform",
    "WELL_KNOWN_IAS",
    "cost_model_disabled",
    "measure_program",
]
