"""The enclave runtime: measured programs behind an Ecall boundary.

:class:`EnclaveHost` loads an :class:`EnclaveProgram` the way SGX loads
an enclave image: the program's *measurement* is a hash of its source
code, fixed at load time, and every interaction goes through
:meth:`EnclaveHost.ecall`, which

* charges the transition cost,
* tracks the call's EPC footprint (callers pass the payload size of
  what they marshal in — DCert's update proofs know their own sizes)
  and charges paging beyond the usable EPC,
* measures the in-enclave execution time and charges the calibrated
  slowdown on top.

State that the program keeps on ``self`` lives "inside" the enclave;
by simulation convention the host only touches it through ecalls.  A
program can expose data (e.g. its public key) by returning it.
"""

from __future__ import annotations

import inspect
from typing import Any

from repro import obs
from repro.crypto.hashing import Digest, tagged_hash
from repro.errors import EnclaveError
from repro.fault.crashpoints import crashpoint
from repro.obs.wallclock import elapsed_s, now_s
from repro.sgx.attestation import AttestationReport, AttestationService, sign_quote
from repro.sgx.costs import CostLedger, SGXCostModel, model_enabled, spend
from repro.sgx.platform import SGXPlatform


def measure_program(program_class: type, config: bytes = b"") -> Digest:
    """MRENCLAVE analogue: hash of the program's source code and config.

    Any edit to the program class (or its subclass chain) changes the
    measurement, so a tampered program cannot attest as the original.
    Build-time configuration (DCert hard-codes the genesis digest, the
    IAS key, and the contract/index code identities into its enclave)
    is folded in via ``config`` so a reconfigured program is a
    *different* enclave.
    """
    chunks = []
    for klass in program_class.__mro__:
        if klass in (object, EnclaveProgram):
            continue
        try:
            chunks.append(inspect.getsource(klass))
        except (OSError, TypeError) as exc:  # dynamically built classes
            raise EnclaveError(
                f"cannot measure {klass.__qualname__}: source unavailable"
            ) from exc
    return tagged_hash(
        "enclave-measurement", "".join(chunks).encode("utf-8") + b"\x00" + config
    )


class EnclaveProgram:
    """Base class for code intended to run inside an enclave.

    Subclasses define ``ECALLS``, a tuple of method names the host may
    invoke, and may implement ``on_init`` to generate keys/state at
    load time (before any untrusted input arrives).
    """

    ECALLS: tuple[str, ...] = ()

    def config_bytes(self) -> bytes:
        """Build-time configuration folded into the measurement."""
        return b""

    def on_init(self) -> bytes:
        """Runs at enclave load; returns report data to embed in quotes
        (DCert programs return their freshly generated public key)."""
        return b""

    # Set by the host after loading (EREPORT self-inspection analogue).
    self_measurement: Digest = b""
    # Set by the host before on_init (EGETKEY analogue for sealing).
    _platform: "SGXPlatform | None" = None
    # Installed by EnclaveHost.register_ocall.
    _ocall_dispatch: Any = None

    def ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Exit the enclave to call an untrusted host function.

        Anything returned is *untrusted input* — the program must verify
        it (e.g. check Merkle proofs) exactly like ecall arguments.
        """
        if self._ocall_dispatch is None:
            raise EnclaveError("no ocalls registered for this enclave")
        return self._ocall_dispatch(name, *args, **kwargs)


class EnclaveHost:
    """Loads one enclave program on one platform and brokers ecalls."""

    def __init__(
        self,
        program: EnclaveProgram,
        platform: SGXPlatform,
        *,
        cost_model: SGXCostModel | None = None,
    ) -> None:
        self.program = program
        self.platform = platform
        self.cost_model = cost_model if cost_model is not None else SGXCostModel()
        self.ledger = CostLedger()
        self.measurement = measure_program(type(program), program.config_bytes())
        program.self_measurement = self.measurement
        # Sealing-capable programs need the platform identity (EGETKEY
        # analogue); set before on_init so sealed state can be restored.
        program._platform = platform
        self._report_data = program.on_init()

    @property
    def report_data(self) -> bytes:
        """Public data the enclave pinned at init (e.g. ``pk_enc``)."""
        return self._report_data

    def attest(self, service: AttestationService) -> AttestationReport:
        """Run remote attestation against an IAS; one-time per enclave."""
        quote = sign_quote(self.platform, self.measurement, self._report_data)
        return service.attest(quote)

    def register_ocall(self, name: str, handler: Any) -> None:
        """Expose an untrusted host function to the enclave program.

        The program invokes it via :meth:`EnclaveProgram.ocall`; every
        invocation pays the Ocall transition cost.  DCert's main design
        avoids Ocalls entirely (§2.2), but the interface exists so the
        lazy-proof-fetching alternative can be measured against it.
        """
        self._ocalls = getattr(self, "_ocalls", {})
        self._ocalls[name] = handler
        program = self.program

        def dispatch(ocall_name: str, *args: Any, **kwargs: Any) -> Any:
            target = self._ocalls.get(ocall_name)
            if target is None:
                raise EnclaveError(f"undefined ocall {ocall_name!r}")
            self.ledger.ocalls += 1
            obs.inc("sgx.ocalls")
            if model_enabled():
                self.ledger.transition_s += self.cost_model.ocall_transition_s
                obs.inc("sgx.transition_s", self.cost_model.ocall_transition_s)
                if self.cost_model.spend_time:
                    spend(self.cost_model.ocall_transition_s)
            return target(*args, **kwargs)

        program._ocall_dispatch = dispatch

    def ecall(self, name: str, *args: Any, payload_bytes: int = 0, **kwargs: Any) -> Any:
        """Enter the enclave: dispatch ``name(*args, **kwargs)``.

        ``payload_bytes`` is the marshalled size of the inputs, used for
        EPC accounting; DCert passes its update-proof sizes here.
        """
        if name not in type(self.program).ECALLS:
            raise EnclaveError(f"undefined ecall {name!r}")
        crashpoint("enclave.ecall.pre")
        handler = getattr(self.program, name)
        # Bookkeeping always happens; the *charges* (and the busy-wait
        # that spends them) only apply while the cost model is enabled.
        charging = model_enabled()
        self.ledger.ecalls += 1
        self.ledger.peak_epc_bytes = max(self.ledger.peak_epc_bytes, payload_bytes)
        paging = self.cost_model.paging_charge(payload_bytes)
        if charging:
            self.ledger.transition_s += self.cost_model.ecall_transition_s
            self.ledger.paging_s += paging
        if obs.enabled():
            obs.inc("sgx.ecalls")
            obs.observe(
                "sgx.ecall_payload_bytes",
                payload_bytes,
                boundaries=obs.SIZE_BYTES_BUCKETS,
            )
            obs.set_gauge("sgx.peak_epc_bytes", self.ledger.peak_epc_bytes)
            if charging:
                obs.inc("sgx.transition_s", self.cost_model.ecall_transition_s)
            if paging > 0:
                obs.inc("sgx.epc_paging_events")
                obs.inc("sgx.epc_paging_s", paging)
        started = now_s()
        try:
            result = handler(*args, **kwargs)
        finally:
            elapsed = elapsed_s(started)
            self.ledger.in_enclave_s += elapsed
            obs.observe(f"sgx.ecall_ms.{name}", elapsed * 1000.0)
            if charging:
                slowdown = elapsed * self.cost_model.enclave_slowdown_extra
                self.ledger.slowdown_s += slowdown
                if self.cost_model.spend_time:
                    spend(
                        self.cost_model.ecall_transition_s + slowdown + paging
                    )
        # The host 'dies' after the enclave returned but before it acted
        # on the result — the result is lost with the host's memory.
        crashpoint("enclave.ecall.post")
        return result
