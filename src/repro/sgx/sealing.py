"""Sealed storage: enclave data that survives restarts.

Real SGX lets an enclave *seal* data to its identity: the sealing key is
derived from the hardware fuse key and MRENCLAVE, so only the same
program on the same machine can unseal.  DCert needs this for the
enclave signing key ``sk_enc`` — without sealing, every CI restart
would mint a new key and force clients to re-check a fresh attestation
report (§4.3 allows that, but sealing avoids it).

The simulation derives the sealing key from (platform hardware key,
measurement) and authenticates ciphertexts with HMAC; a different
program or platform computes a different key and fails the MAC.  The
"encryption" is an HMAC-SHA256 keystream — standard-library only, and
the secrecy property it models is keyed isolation, not IND-CCA against
a cryptanalyst.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.hashing import Digest
from repro.errors import EnclaveError
from repro.sgx.platform import SGXPlatform

_MAC_SIZE = 32


def _sealing_key(platform: SGXPlatform, measurement: Digest) -> bytes:
    secret = platform._hardware_private_key.secret.to_bytes(32, "big")
    return hmac.new(secret, b"seal" + measurement, hashlib.sha256).digest()


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(block) for block in blocks) < length:
        blocks.append(
            hmac.new(key, nonce + counter.to_bytes(8, "big"), hashlib.sha256).digest()
        )
        counter += 1
    return b"".join(blocks)[:length]


def seal(platform: SGXPlatform, measurement: Digest, plaintext: bytes) -> bytes:
    """Seal ``plaintext`` to (platform, measurement)."""
    key = _sealing_key(platform, measurement)
    nonce = hashlib.sha256(b"nonce" + key + plaintext).digest()[:16]
    ciphertext = bytes(
        a ^ b for a, b in zip(plaintext, _keystream(key, nonce, len(plaintext)))
    )
    mac = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + mac


def unseal(platform: SGXPlatform, measurement: Digest, sealed: bytes) -> bytes:
    """Unseal data; raises :class:`EnclaveError` unless the same program
    on the same platform sealed it."""
    if len(sealed) < 16 + _MAC_SIZE:
        raise EnclaveError("sealed blob too short")
    key = _sealing_key(platform, measurement)
    nonce, body, mac = sealed[:16], sealed[16:-_MAC_SIZE], sealed[-_MAC_SIZE:]
    expected = hmac.new(key, nonce + body, hashlib.sha256).digest()
    if not hmac.compare_digest(mac, expected):
        raise EnclaveError("sealed data does not belong to this enclave identity")
    return bytes(a ^ b for a, b in zip(body, _keystream(key, nonce, len(body))))
