"""Remote attestation: quotes and the simulated Intel Attestation Service.

The flow matches §2.2 of the paper:

1. an enclave produces a *quote* — its measurement plus caller-supplied
   report data (DCert puts ``pk_enc`` there) — signed by the platform's
   hardware key;
2. the IAS verifies the hardware signature against its registry of
   known platforms and issues an *attestation report*, signed with the
   IAS key;
3. anyone holding the well-known IAS public key can later verify the
   report offline — which is what makes DCert certificates cheap to
   check: the expensive IAS round-trip happens once per enclave, not
   per block (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import PublicKey, Signature, sign, verify
from repro.crypto.hashing import Digest, hash_concat
from repro.crypto.keys import generate_keypair
from repro.errors import AttestationError
from repro.sgx.platform import SGXPlatform

_QUOTE_DOMAIN = "sgx-quote"
_REPORT_DOMAIN = "ias-report"


@dataclass(frozen=True, slots=True)
class Quote:
    """Hardware-signed evidence of an enclave's identity and user data."""

    measurement: Digest
    report_data: bytes
    platform_key: PublicKey
    signature: Signature

    def signed_payload(self) -> bytes:
        return hash_concat(self.measurement, self.report_data)

    def verify_hardware_signature(self) -> bool:
        return verify(
            self.platform_key, self.signed_payload(), self.signature, _QUOTE_DOMAIN
        )


def sign_quote(platform: SGXPlatform, measurement: Digest, report_data: bytes) -> Quote:
    """Produce a quote on ``platform`` (simulates EREPORT + quoting enclave)."""
    payload = hash_concat(measurement, report_data)
    signature = sign(platform._hardware_private_key, payload, _QUOTE_DOMAIN)
    return Quote(
        measurement=measurement,
        report_data=report_data,
        platform_key=platform.hardware_public_key,
        signature=signature,
    )


@dataclass(frozen=True, slots=True)
class AttestationReport:
    """IAS-signed verdict: this measurement ran with this report data."""

    measurement: Digest
    report_data: bytes
    ias_key: PublicKey
    signature: Signature

    def signed_payload(self) -> bytes:
        return hash_concat(b"ias-ok", self.measurement, self.report_data)

    def verify(self, expected_ias_key: PublicKey) -> bool:
        """Check the report is signed by the expected IAS key."""
        if self.ias_key != expected_ias_key:
            return False
        return verify(
            self.ias_key, self.signed_payload(), self.signature, _REPORT_DOMAIN
        )

    def size_bytes(self) -> int:
        """Serialized report size (counted in client storage, Fig. 7a)."""
        return 32 + len(self.report_data) + 33 + 64


class AttestationService:
    """The simulated IAS: verifies quotes, issues signed reports."""

    def __init__(self, seed: bytes | None = None) -> None:
        self._key = generate_keypair(
            b"ias:" + seed if seed is not None else None
        )
        self._known_platforms: set[bytes] = set()

    @property
    def public_key(self) -> PublicKey:
        return self._key.public

    def register_platform(self, platform: SGXPlatform) -> None:
        """Enroll a platform (EPID group join)."""
        self._known_platforms.add(platform.hardware_public_key.to_bytes())

    def attest(self, quote: Quote) -> AttestationReport:
        """Verify a quote and issue the signed attestation report."""
        if quote.platform_key.to_bytes() not in self._known_platforms:
            raise AttestationError("quote from an unknown platform")
        if not quote.verify_hardware_signature():
            raise AttestationError("quote hardware signature invalid")
        report_payload = hash_concat(b"ias-ok", quote.measurement, quote.report_data)
        return AttestationReport(
            measurement=quote.measurement,
            report_data=quote.report_data,
            ias_key=self._key.public,
            signature=sign(self._key.private, report_payload, _REPORT_DOMAIN),
        )


#: The default, globally trusted IAS instance (deterministic key so that
#: clients across processes agree on it, like Intel's published certs).
WELL_KNOWN_IAS = AttestationService(seed=b"well-known")
