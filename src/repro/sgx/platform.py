"""A simulated SGX-capable platform (one physical machine).

Each platform owns a hardware-fused attestation key.  Quotes produced
by enclaves on this platform are signed with it; the (simulated) Intel
Attestation Service holds the corresponding public keys — standing in
for EPID group membership — and will only attest quotes from platforms
it knows.
"""

from __future__ import annotations

from repro.crypto import KeyPair, generate_keypair


class SGXPlatform:
    """One machine's SGX identity: the hardware attestation key."""

    def __init__(self, seed: bytes | None = None) -> None:
        self._hardware_key: KeyPair = generate_keypair(
            b"sgx-platform:" + seed if seed is not None else None
        )

    @property
    def hardware_public_key(self):
        return self._hardware_key.public

    @property
    def _hardware_private_key(self):
        """Simulation-internal: only quote generation may touch this."""
        return self._hardware_key.private
