"""SGX performance model: transitions, in-enclave slowdown, EPC paging.

Numbers are calibrated from the literature the paper cites ([20, 25,
26, 28, 29]) and from the paper's own observations:

* an Ecall/Ocall transition costs ~8 microseconds (HotCalls measure
  8,000-14,000 cycles);
* in-enclave execution of the DCert workload is at most ~1.8x the
  plain-CPU time (Fig. 8), so the default slowdown factor is 0.8
  *extra* seconds per second of work;
* usable EPC is 93 MB (§2.2); exceeding it pages at a charge derived
  from SGX paging benchmarks (~40K cycles/page ≈ 3 ms/MB at 3.5 GHz).

Charges are *spent* by default (busy-wait), so wall-clock benchmarks
show the modeled shapes; they are also *recorded* in a
:class:`CostLedger` so harnesses can report breakdowns, and the whole
model can be disabled for unit tests via :func:`cost_model_disabled`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.wallclock import busy_wait_s


@dataclass(slots=True)
class SGXCostModel:
    """Tunable cost parameters for the simulated enclave."""

    ecall_transition_s: float = 8e-6
    ocall_transition_s: float = 8e-6
    enclave_slowdown_extra: float = 0.8  # extra seconds per second of work
    epc_usable_bytes: int = 93 * 1024 * 1024
    paging_s_per_mb: float = 3e-3
    spend_time: bool = True  # busy-wait the charges into wall clock

    def paging_charge(self, peak_bytes: int) -> float:
        """Seconds of paging cost for an ecall peaking at ``peak_bytes``."""
        overflow = peak_bytes - self.epc_usable_bytes
        if overflow <= 0:
            return 0.0
        return (overflow / (1024 * 1024)) * self.paging_s_per_mb


@dataclass(slots=True)
class CostLedger:
    """Accumulated modeled costs, for benchmark breakdowns."""

    ecalls: int = 0
    ocalls: int = 0
    transition_s: float = 0.0
    slowdown_s: float = 0.0
    paging_s: float = 0.0
    in_enclave_s: float = 0.0  # raw measured work inside the enclave
    peak_epc_bytes: int = 0

    def total_overhead_s(self) -> float:
        return self.transition_s + self.slowdown_s + self.paging_s

    def reset(self) -> None:
        self.ecalls = 0
        self.ocalls = 0
        self.transition_s = 0.0
        self.slowdown_s = 0.0
        self.paging_s = 0.0
        self.in_enclave_s = 0.0
        self.peak_epc_bytes = 0

    def snapshot(self) -> "CostLedger":
        return CostLedger(
            ecalls=self.ecalls,
            ocalls=self.ocalls,
            transition_s=self.transition_s,
            slowdown_s=self.slowdown_s,
            paging_s=self.paging_s,
            in_enclave_s=self.in_enclave_s,
            peak_epc_bytes=self.peak_epc_bytes,
        )

    def delta(self, before: "CostLedger") -> "CostLedger":
        """Charges accumulated since ``before`` (an earlier snapshot).

        ``peak_epc_bytes`` is a high-water mark, not a sum, so the delta
        carries the current peak unchanged.
        """
        return CostLedger(
            ecalls=self.ecalls - before.ecalls,
            ocalls=self.ocalls - before.ocalls,
            transition_s=self.transition_s - before.transition_s,
            slowdown_s=self.slowdown_s - before.slowdown_s,
            paging_s=self.paging_s - before.paging_s,
            in_enclave_s=self.in_enclave_s - before.in_enclave_s,
            peak_epc_bytes=self.peak_epc_bytes,
        )


# Depth counter, not a saved boolean: nested ``cost_model_disabled()``
# contexts can exit out of LIFO order (pytest fixtures and generators
# interleave teardown freely).  A save/restore boolean then either
# re-enables charging while an inner context is still active, or leaves
# the model disabled forever — after which every ecall records *zeroed*
# charges into ledgers that callers believe are live ("leaked" zero
# charges that silently dilute snapshot deltas).  With a depth counter,
# the model is enabled exactly when no context is active, whatever the
# exit order.
_DISABLED_DEPTH = 0


def model_enabled() -> bool:
    return _DISABLED_DEPTH == 0


@contextmanager
def cost_model_disabled() -> Iterator[None]:
    """Turn off all charging (unit tests that only care about logic)."""
    global _DISABLED_DEPTH
    _DISABLED_DEPTH += 1
    try:
        yield
    finally:
        _DISABLED_DEPTH -= 1


def spend(seconds: float) -> None:
    """Busy-wait ``seconds`` so modeled cost appears in wall clock."""
    busy_wait_s(seconds)
