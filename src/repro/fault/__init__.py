"""Deterministic fault injection for crash-safety testing.

:mod:`repro.fault.crashpoints` plants named crashpoints at the durable
boundaries of the library; :mod:`repro.fault.chaos` sweeps them and
checks the recovery invariants.  See ``docs/recovery.md``.
"""

from repro.fault.crashpoints import (
    CATALOG,
    CrashSchedule,
    SimulatedCrash,
    active_schedule,
    crash_armed,
    crash_now,
    crashpoint,
    torn_prefix,
)

__all__ = [
    "CATALOG",
    "CrashSchedule",
    "SimulatedCrash",
    "active_schedule",
    "crash_armed",
    "crash_now",
    "crashpoint",
    "torn_prefix",
]
