"""Deterministic fault injection for crash-safety testing.

:mod:`repro.fault.crashpoints` plants named crashpoints at the durable
boundaries of the library; :mod:`repro.fault.chaos` sweeps them and
checks the recovery invariants; :mod:`repro.sim` draws from the same
catalog to interleave crashes with live traffic in whole-system
simulation runs.  See ``docs/recovery.md`` and ``docs/testing.md``.
"""

from repro.fault.crashpoints import (
    CATALOG,
    CrashSchedule,
    SimulatedCrash,
    active_schedule,
    crash_armed,
    crash_now,
    crashpoint,
    torn_prefix,
)

def __getattr__(name: str):
    # Lazy: chaos pulls in the whole certification stack, and the
    # crashpoints it sweeps are themselves imported by that stack.
    if name == "certificate_bytes":
        from repro.fault.chaos import certificate_bytes

        return certificate_bytes
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CATALOG",
    "CrashSchedule",
    "SimulatedCrash",
    "active_schedule",
    "certificate_bytes",
    "crash_armed",
    "crash_now",
    "crashpoint",
    "torn_prefix",
]
