"""The chaos harness: sweep every crashpoint, assert recovery invariants.

For each cataloged crashpoint the harness runs a fixed mixed workload
(sequential certification, then pipelined batches) against a
:class:`~repro.core.recovery.DurableIssuer`, crashes it at the armed
point, recovers from the archive, finishes the workload, and checks —
against a no-crash baseline run under the same deterministic identity
(same platform seed, same enclave key seed, same IAS) — that:

* the recovered chain's certificates are **byte-identical** to the
  baseline's at every height (so no certificate was ever double-issued
  with diverging bytes);
* ``pk_enc`` is unchanged across the crash (sealed key survived);
* a superlight client bootstrapped from published sources accepts the
  final tip and an index certificate — it never sees an invalid answer
  because of the crash.

Determinism: a case is fully described by ``(point, hit, seed)``; the
pytest sweep (``tests/fault/test_chaos_sweep.py``) prints a replay
command for any failure, mirroring ``tests/proptest/framework.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.chain import ChainBuilder
from repro.chain.block import Block
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core.pipeline import CertificationPipeline
from repro.core.recovery import DurableIssuer, recover_issuer
from repro.core.superlight import SuperlightClient, compute_expected_measurement
from repro.crypto import generate_keypair
from repro.fault.crashpoints import SimulatedCrash, crash_armed
from repro.query.indexes import AccountHistoryIndexSpec
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform

#: Workload shape: this many blocks certified sequentially, the rest
#: through the pipeline in batches of _BATCH.
_SEQUENTIAL_PREFIX = 3
_BATCH = 3
_NETWORK = "chaos"
_CHECKPOINT_INTERVAL = 4


@dataclass(slots=True)
class ChaosWorld:
    """The deterministic fixtures every chaos case shares."""

    blocks: list[Block]
    vm: VM
    pow_engine: object
    ias: AttestationService
    spec: AccountHistoryIndexSpec


@dataclass(slots=True)
class ChaosOutcome:
    """What one chaos case observed (asserted on by the sweep test)."""

    point: str
    crashed: bool
    recovered_height: int
    replayed_blocks: int
    checkpoint_used: bool
    staged_resumed: int


def build_world(num_blocks: int = 10, block_size: int = 2) -> ChaosWorld:
    """Mine the deterministic chaos chain (PoW search is deterministic
    for fixed transactions, so every case sees identical blocks)."""
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    user = generate_keypair(b"chaos-user")
    builder = ChainBuilder(difficulty_bits=4, network=_NETWORK)
    nonce = 0
    for _ in range(num_blocks):
        txs = []
        for _ in range(block_size):
            txs.append(
                sign_transaction(
                    user.private, nonce, "kvstore", "put",
                    (f"acct{nonce % 3}", f"value-{nonce}"),
                )
            )
            nonce += 1
        builder.add_block(txs)
    return ChaosWorld(
        blocks=list(builder.blocks[1:]),
        vm=vm,
        pow_engine=builder.pow,
        ias=AttestationService(seed=b"chaos-ias"),
        spec=AccountHistoryIndexSpec(name="history"),
    )


def _fresh_durable(world: ChaosWorld, archive_path: Path) -> DurableIssuer:
    from repro.storage import ChainArchive

    genesis, state = make_genesis(network=_NETWORK)
    return DurableIssuer.create(
        ChainArchive(archive_path),
        genesis,
        state,
        world.vm,
        world.pow_engine,
        index_specs=[world.spec],
        platform=SGXPlatform(seed=b"chaos-platform"),
        ias=world.ias,
        key_seed=b"chaos-enclave",
        proof_cache_entries=64,
        checkpoint_interval=_CHECKPOINT_INTERVAL,
    )


def _recover(world: ChaosWorld, archive_path: Path) -> DurableIssuer:
    from repro.storage import ChainArchive

    genesis, state = make_genesis(network=_NETWORK)
    return recover_issuer(
        ChainArchive(archive_path),
        genesis,
        state,
        world.vm,
        world.pow_engine,
        index_specs=[world.spec],
        platform=SGXPlatform(seed=b"chaos-platform"),
        ias=world.ias,
        proof_cache_entries=64,
        checkpoint_interval=_CHECKPOINT_INTERVAL,
    )


def _run_workload(durable: DurableIssuer, blocks: list[Block]) -> None:
    """Sequential prefix, then pipelined batches — exercises every
    durable path (process_block, stage/certify, pipeline flush)."""
    remaining = [
        block
        for block in blocks
        if block.header.height > durable.issuer.node.height
    ]
    for block in remaining[:]:
        if block.header.height > _SEQUENTIAL_PREFIX:
            break
        durable.process_block(block)
        remaining.remove(block)
    if durable.issuer.staged_count:
        durable.certify_staged()
    pipeline = CertificationPipeline(durable, batch_size=_BATCH)
    for block in remaining:
        pipeline.submit(block)
    pipeline.close()


def certificate_bytes(issuer) -> dict[int, tuple[bytes, tuple[bytes, ...]]]:
    """Per-height (block cert bytes, sorted index cert bytes) — the
    byte-identity fingerprint the invariants compare."""
    fingerprint: dict[int, tuple[bytes, tuple[bytes, ...]]] = {}
    for certified in issuer.certified:
        fingerprint[certified.block.header.height] = (
            certified.certificate.encode()
            if certified.certificate is not None
            else b"",
            tuple(
                certified.index_certificates[name].encode()
                for name in sorted(certified.index_certificates)
            ),
        )
    return fingerprint


def run_baseline(world: ChaosWorld, tmp_path: Path):
    """The no-crash run: same workload, same identity, no schedule."""
    durable = _fresh_durable(world, tmp_path / "baseline.wal")
    _run_workload(durable, world.blocks)
    return durable


def _verify_with_superlight(world: ChaosWorld, issuer) -> None:
    genesis_digest = issuer.node.blocks[0].header.header_hash()
    measurement = compute_expected_measurement(
        genesis_digest,
        world.ias.public_key,
        world.vm,
        world.pow_engine.difficulty_bits,
        {world.spec.name: world.spec},
    )
    client = SuperlightClient(measurement, world.ias.public_key)
    tip = issuer.certified[-1]
    client.validate_chain(tip.block.header, tip.certificate)
    client.validate_index_certificate(
        world.spec.name,
        tip.block.header,
        tip.index_roots[world.spec.name],
        tip.index_certificates[world.spec.name],
    )


def run_case(
    world: ChaosWorld,
    tmp_path: Path,
    baseline: dict[int, tuple[bytes, tuple[bytes, ...]]],
    baseline_pk: bytes,
    point: str,
    *,
    hit: int = 1,
    seed: int = 0,
) -> ChaosOutcome:
    """One chaos case: crash at ``(point, hit, seed)``, recover, finish,
    and assert the recovery invariants against the baseline."""
    archive_path = tmp_path / f"case-{point.replace('.', '_')}-{hit}-{seed}.wal"
    # Provision before arming: crash-during-provisioning has no archive
    # head yet, so there is nothing to recover — out of scope.
    durable = _fresh_durable(world, archive_path)
    crashed = False
    with crash_armed(point, hit=hit, seed=seed) as schedule:
        try:
            _run_workload(durable, world.blocks)
        except SimulatedCrash:
            crashed = True
    assert crashed == schedule.fired

    # The 'process' is gone; recover from disk alone.
    recovered = _recover(world, archive_path)
    report = recovered.last_recovery
    recovered_height = recovered.issuer.node.height

    # Finish the workload: certify any resumed staged batch, then feed
    # every block the recovered tip does not cover yet.
    if recovered.issuer.staged_count:
        recovered.certify_staged()
    _run_workload(recovered, world.blocks)

    # Invariant: same pk_enc across the crash (sealed key survived).
    assert recovered.pk_enc.to_bytes() == baseline_pk, point
    # Invariant: every certificate byte-identical to the no-crash run —
    # in memory and in the durable archive (no diverging double-issue).
    assert certificate_bytes(recovered.issuer) == baseline, point
    reloaded = recovered.archive.load()
    for entry in reloaded.entries:
        base_cert, base_index = baseline[entry.block.header.height]
        archived_cert = (
            entry.certificate.encode() if entry.certificate is not None else b""
        )
        assert archived_cert == base_cert, point
        assert (
            tuple(
                entry.index_certificates[name].encode()
                for name in sorted(entry.index_certificates)
            )
            == base_index
        ), point
    # Invariant: a bootstrapping superlight client accepts the tip.
    _verify_with_superlight(world, recovered.issuer)

    return ChaosOutcome(
        point=point,
        crashed=crashed,
        recovered_height=recovered_height,
        replayed_blocks=report.replayed_blocks if report else 0,
        checkpoint_used=report.checkpoint_used if report else False,
        staged_resumed=report.staged_resumed if report else 0,
    )
