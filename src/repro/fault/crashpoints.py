"""Deterministic crash injection: failpoint-style crashpoints.

Crash safety cannot be tested by waiting for crashes — the interesting
failures live in windows a few instructions wide (after the enclave
signed but before the WAL record landed; after a torn partial write;
between a checkpoint's temp file and its rename).  This module plants
named **crashpoints** in those windows.  Each instrumented site calls
:func:`crashpoint` with a name from :data:`CATALOG`; normally that is a
no-op costing one global read, but when a :class:`CrashSchedule` is
armed (see :func:`crash_armed`) the scheduled arrival raises
:class:`SimulatedCrash`, modelling the process dying at exactly that
boundary.

Determinism: a schedule is ``(point, hit, seed)`` — crash on the
``hit``-th arrival at ``point``; ``seed`` drives any byte-level choices
(e.g. where a torn write cuts).  The chaos harness
(:mod:`repro.fault.chaos`) sweeps every cataloged point and replays any
failure from its printed ``(point, hit, seed)`` triple.

:class:`SimulatedCrash` deliberately subclasses :class:`BaseException`:
library code that catches ``Exception`` (or :class:`repro.errors
.ReproError`) to clean up or reply over RPC must *not* swallow a crash
— a dying process does not run except-blocks.
"""

from __future__ import annotations

import random
import zlib
from contextlib import contextmanager
from typing import Iterator

from repro import obs


class SimulatedCrash(BaseException):
    """The process 'died' at a crashpoint.

    A ``BaseException`` so that ordinary ``except Exception`` cleanup
    paths cannot observe it — everything in-memory past this point is
    lost, exactly like a real crash.  Only the test/chaos harness (or a
    supervisor modelling a separate process) may catch it.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"simulated crash at {point!r} (arrival {hit})")
        self.point = point
        self.hit = hit


#: Every crashpoint the library plants, by name.  The chaos harness
#: sweeps this catalog; :func:`crashpoint` rejects names outside it so
#: a typo at an instrumented site fails loudly instead of silently
#: never firing.
CATALOG: tuple[str, ...] = (
    # durable WAL (repro.storage): the fsync boundary.
    "wal.append.pre_write",      # record framed but no byte hit disk
    "wal.append.torn_write",     # a partial prefix of the record hit disk
    "wal.append.post_fsync",     # record fully durable; crash right after
    # checkpoint sidecar (repro.storage): the rename boundary.
    "archive.checkpoint.pre_rename",   # temp file written, not renamed
    "archive.checkpoint.post_rename",  # checkpoint durable; crash after
    # enclave boundary (repro.sgx.enclave).
    "enclave.ecall.pre",         # about to enter the enclave
    "enclave.ecall.post",        # enclave returned; host lost the result
    # issuer (repro.core.issuer).
    "issuer.process_block.pre",  # sequential certification about to start
    "issuer.process_block.post", # certified + committed in memory only
    "issuer.stage_block.post",   # staged + committed in memory only
    "issuer.certify_staged.pre", # batch assembled, ecall not yet entered
    "issuer.certify_staged.post",# batch ecall returned, results unrecorded
    # pipeline (repro.core.pipeline).
    "pipeline.flush.pre",        # auto-flush boundary
    # durable issuer (repro.core.recovery).
    "durable.append.pre_wal",    # certificate issued, WAL record not yet written
    "durable.checkpoint.pre_seal",  # checkpoint capture about to start
    # query service (repro.query.provider.QueryService).
    "query.execute.pre",         # request decoded, processing not started
    "query.execute.post",        # answer computed, reply not yet sent
    # subscription hub (repro.net.pubsub.SubscriptionHub).
    "pubsub.publish.pre",        # block certified, announcement not yet built
    "pubsub.deliver.pre",        # mid-fanout: some subscribers already sent to
    "pubsub.publish.post",       # fanout complete, caller not yet resumed
)

_KNOWN = frozenset(CATALOG)


class CrashSchedule:
    """Crash on the ``hit``-th arrival at ``point`` (1-based)."""

    def __init__(self, point: str, hit: int = 1, seed: int = 0) -> None:
        if point not in _KNOWN:
            raise ValueError(f"unknown crashpoint {point!r}")
        if hit < 1:
            raise ValueError("hit index is 1-based")
        self.point = point
        self.hit = hit
        self.seed = seed
        self.arrivals: dict[str, int] = {}
        self.fired = False

    def _arrive(self, name: str) -> bool:
        count = self.arrivals.get(name, 0) + 1
        self.arrivals[name] = count
        return (not self.fired) and name == self.point and count == self.hit

    def rng(self) -> random.Random:
        """Deterministic per-(point, seed) stream for byte-level choices."""
        return random.Random(
            (self.seed << 32) ^ zlib.crc32(self.point.encode("utf-8"))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CrashSchedule(point={self.point!r}, hit={self.hit}, "
            f"seed={self.seed})"
        )


_active: CrashSchedule | None = None


def active_schedule() -> CrashSchedule | None:
    """The currently armed schedule, if any."""
    return _active


def crashpoint(name: str) -> None:
    """Announce arrival at the crashpoint ``name``.

    No-op unless a schedule is armed and due here, in which case
    :class:`SimulatedCrash` is raised.
    """
    schedule = _active
    if schedule is None:
        if name not in _KNOWN:
            raise AssertionError(f"uncataloged crashpoint {name!r}")
        return
    if schedule._arrive(name):
        _fire(schedule, name)


def torn_prefix(name: str, size: int) -> int | None:
    """Arrival at a torn-write crashpoint that needs a cut position.

    Returns ``None`` when not due.  When due, returns how many bytes of
    the ``size``-byte payload the caller should write before invoking
    :func:`crash_now` — strictly inside the payload, so the record on
    disk is genuinely torn.
    """
    schedule = _active
    if schedule is None:
        if name not in _KNOWN:
            raise AssertionError(f"uncataloged crashpoint {name!r}")
        return None
    if not schedule._arrive(name):
        return None
    if size < 2:
        return None  # nothing to tear; treat as a lost write instead
    return 1 + schedule.rng().randrange(size - 1)


def crash_now(name: str) -> None:
    """Unconditionally crash at ``name`` (the :func:`torn_prefix` follow-up)."""
    schedule = _active
    hit = schedule.arrivals.get(name, 0) if schedule is not None else 0
    if schedule is not None:
        _fire(schedule, name)
    raise SimulatedCrash(name, hit)


def _fire(schedule: CrashSchedule, name: str) -> None:
    schedule.fired = True
    obs.inc("fault.crashpoints_fired")
    raise SimulatedCrash(name, schedule.arrivals.get(name, 0))


@contextmanager
def crash_armed(point: str, hit: int = 1, seed: int = 0) -> Iterator[CrashSchedule]:
    """Arm one :class:`CrashSchedule` for the duration of the block.

    Yields the schedule so callers can check ``schedule.fired`` (the
    workload may legitimately never reach the armed arrival).  Nested
    arming restores the outer schedule on exit.
    """
    global _active
    schedule = CrashSchedule(point, hit=hit, seed=seed)
    previous = _active
    _active = schedule
    try:
        yield schedule
    finally:
        _active = previous
