"""Related-work baseline clients beyond the traditional light client.

The paper's Fig. 7 compares DCert's superlight client against the
traditional header-syncing light client
(:class:`repro.chain.lightclient.LightClient`).  §8.1 additionally
discusses logarithmic clients — NIPoPoW and FlyClient; this package
implements a FlyClient-style probabilistic sampling client over a
Merkle Mountain Range and a NIPoPoW-style superblock sampling client,
so the bootstrap benchmarks can show every regime (linear light client,
two logarithmic clients, DCert's constant superlight client).
"""

from repro.baselines.flyclient import FlyClientProver, FlyClientVerifier
from repro.baselines.nipopow import NipopowProver, NipopowVerifier

__all__ = [
    "FlyClientProver",
    "FlyClientVerifier",
    "NipopowProver",
    "NipopowVerifier",
]
