"""A NIPoPoW-style superblock sampling client (Kiayias et al., FC'20).

§8.1 of the paper positions NIPoPoW as the other sublinear light
client: blocks whose PoW hash undershoots the target by ``2^mu`` are
*mu-level superblocks*, and because roughly half the blocks of level mu
reach level mu+1, a logarithmic "superchain" spanning the whole chain
exists at some high level.  The prover ships that superchain, denser
tails at lower levels, and a k-block suffix; the verifier checks each
included block's PoW and the selection's density — superblock levels
are self-certifying, being a property of the hash itself.

Honest deviations, documented per DESIGN.md's substitution rule:

* Real NIPoPoW requires every block to commit an *interlink* vector
  (pointers to the latest superblock of each level) — a chain
  modification of exactly the kind DCert avoids.  Our unmodified chain
  cannot carry it, so ancestry between selected superblocks is taken
  from the prover's ordering and is **not** independently verified;
  proof *size* and verification *cost* (what the Fig. 7 comparison
  uses) are faithful, the interlink security argument is not simulated.
* Difficulty is fixed in our simulation, which is the setting plain
  NIPoPoW handles (variable difficulty is FlyClient's contribution).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain.block import BlockHeader
from repro.chain.consensus import ProofOfWork
from repro.errors import BlockValidationError


def superblock_level(header: BlockHeader, pow_engine: ProofOfWork) -> int:
    """How many doublings below the target this block's hash lies.

    Level 0 = any valid block; level mu means ``hash < target / 2^mu``.
    """
    value = int.from_bytes(header.header_hash(), "big")
    if value == 0:
        return 256
    if value >= pow_engine.target:
        return 0
    level = 0
    threshold = pow_engine.target >> 1
    while threshold and value < threshold:
        level += 1
        threshold >>= 1
    return level


@dataclass(frozen=True, slots=True)
class NipopowProof:
    """Bootstrap proof: superchain prefix ``pi`` plus suffix ``chi``."""

    prefix: tuple[BlockHeader, ...]
    suffix: tuple[BlockHeader, ...]
    m: int
    k: int

    @property
    def tip(self) -> BlockHeader:
        return self.suffix[-1] if self.suffix else self.prefix[-1]

    def size_bytes(self) -> int:
        return 8 + sum(
            header.size_bytes() for header in self.prefix + self.suffix
        )


class NipopowProver:
    """Full-node side: selects the superchain sample."""

    def __init__(self, headers: list[BlockHeader], pow_engine: ProofOfWork) -> None:
        if not headers:
            raise BlockValidationError("cannot prove an empty chain")
        self.headers = list(headers)
        self.pow = pow_engine

    def append(self, header: BlockHeader) -> None:
        self.headers.append(header)

    def bootstrap_proof(self, m: int = 3, k: int = 3) -> NipopowProof:
        """The goodness construction: from the top level downwards take
        every qualifying block; once a level holds >= m blocks, lower
        levels only contribute blocks from its m-th-from-last onwards."""
        split = max(1, len(self.headers) - k)
        suffix = tuple(self.headers[split:])
        body = self.headers[:split]
        levels = {
            header.height: (
                256 if header.height == 0 else superblock_level(header, self.pow)
            )
            for header in body
        }
        max_level = max(levels.values())
        selected_heights: set[int] = set()
        boundary = 0
        for mu in range(min(max_level, 64), -1, -1):
            alpha = [
                header
                for header in body
                if levels[header.height] >= mu and header.height >= boundary
            ]
            selected_heights.update(header.height for header in alpha)
            if len(alpha) >= m:
                boundary = alpha[-m].height
        prefix = tuple(
            header for header in body if header.height in selected_heights
        )
        return NipopowProof(prefix=prefix, suffix=suffix, m=m, k=k)


class NipopowVerifier:
    """Client side: checks a superchain bootstrap proof."""

    def __init__(self, pow_engine: ProofOfWork) -> None:
        self.pow = pow_engine
        self.accepted_tip: BlockHeader | None = None

    def verify(self, proof: NipopowProof) -> bool:
        """Check PoW of every sampled block, genesis anchoring, height
        ordering, and full linkage of the k-suffix."""
        if not proof.prefix or proof.prefix[0].height != 0:
            return False  # must anchor at genesis
        previous_height = -1
        for header in proof.prefix:
            if header.height <= previous_height:
                return False
            previous_height = header.height
            if header.height and not self.pow.check(header):
                return False
        previous: BlockHeader | None = None
        for header in proof.suffix:
            if previous is not None:
                if header.prev_hash != previous.header_hash():
                    return False
                if header.height != previous.height + 1:
                    return False
            if not self.pow.check(header):
                return False
            previous = header
        if proof.suffix and proof.suffix[0].height <= proof.prefix[-1].height:
            return False
        self.accepted_tip = proof.tip
        return True
