"""A FlyClient-style sampling light client (Bünz et al., S&P'20).

FlyClient commits the whole header chain into a Merkle Mountain Range
and has the verifier check only O(log^2 n) *randomly sampled* headers:
each sample must be a valid header whose MMR membership proof verifies
against the tip's MMR root.

Two honest deviations from the real protocol, documented per DESIGN.md:

* Real FlyClient requires each header to commit the MMR root of its
  ancestors (a chain modification — exactly the kind DCert avoids).
  Our chain substrate is unmodified, so the prover supplies the tip MMR
  root alongside the proof and the simulation's threat model assumes it
  is bound to the tip out of band.  Costs (proof size, verification
  time) are unaffected by where the root lives.
* Sampling uses the optimal-in-expectation ``c * log2(n)`` uniform
  scheme rather than the variable-difficulty distribution, since our
  simulated difficulty is constant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.chain.block import BlockHeader
from repro.chain.consensus import ProofOfWork
from repro.crypto.hashing import Digest
from repro.errors import BlockValidationError
from repro.merkle.mmr import MerkleMountainRange, MMRProof, verify_mmr


@dataclass(frozen=True, slots=True)
class FlyClientProof:
    """Bootstrap proof: the tip plus sampled headers with MMR proofs."""

    tip: BlockHeader
    mmr_root: Digest
    samples: tuple[tuple[BlockHeader, MMRProof], ...]

    def size_bytes(self) -> int:
        total = self.tip.size_bytes() + 32
        for header, proof in self.samples:
            total += header.size_bytes() + proof.size_bytes()
        return total


class FlyClientProver:
    """Full-node side: maintains the MMR and serves bootstrap proofs."""

    def __init__(self, headers: list[BlockHeader]) -> None:
        if not headers:
            raise BlockValidationError("cannot prove an empty chain")
        self.headers = list(headers)
        self.mmr = MerkleMountainRange()
        for header in self.headers:
            self.mmr.append(header.encode())

    def append(self, header: BlockHeader) -> None:
        self.headers.append(header)
        self.mmr.append(header.encode())

    def bootstrap_proof(self, samples_per_log: int = 5, seed: int = 0) -> FlyClientProof:
        """Sample ``c * log2(n)`` headers and prove their membership."""
        count = len(self.headers)
        sample_count = min(
            count, max(1, samples_per_log * max(1, count.bit_length() - 1))
        )
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(count), sample_count))
        samples = tuple(
            (self.headers[index], self.mmr.prove(index)) for index in indices
        )
        return FlyClientProof(
            tip=self.headers[-1], mmr_root=self.mmr.root, samples=samples
        )


class FlyClientVerifier:
    """Client side: checks a sampled bootstrap proof."""

    def __init__(self, pow_engine: ProofOfWork) -> None:
        self.pow = pow_engine
        self.accepted_tip: BlockHeader | None = None

    def verify(self, proof: FlyClientProof) -> bool:
        """Check every sampled header's PoW and MMR membership."""
        for header, mmr_proof in proof.samples:
            if header.height > 0 and not self.pow.check(header):
                return False
            if not verify_mmr(proof.mmr_root, header.encode(), mmr_proof):
                return False
        self.accepted_tip = proof.tip
        return True
