"""Request/response RPC over the deterministic message bus.

The paper's Fig. 2 deployment has constant-state clients *asking*
untrusted Service Providers and Certificate Issuers for data, which is
a request/response contract — not the fire-and-forget broadcast the
bus gives us natively.  This module layers that contract on top:

* :class:`RpcServer` — joins the bus under a service name, decodes
  :class:`RpcRequest` envelopes, dispatches to registered handlers,
  and replies with :class:`RpcResponse` envelopes.  A request whose
  payload fails to decode is *dropped* (like a checksum-failed packet):
  the caller's timeout-and-retry path handles it.
* :class:`RpcClient` — sends a request, drains the bus up to a
  virtual-clock deadline, and retries with bounded exponential backoff
  (:class:`RetryPolicy`).  Exhausted retries raise
  :class:`repro.errors.RpcTimeoutError`; a response that cannot be
  decoded raises :class:`repro.errors.ResponseIntegrityError`.

Payloads cross the wire as bytes (:mod:`repro.net.wire`), so a
:class:`repro.net.faults.FaultInjector` can corrupt them exactly as a
real network would.  Delivery is at-least-once: retries and duplicated
packets may re-execute a handler, so handlers must be read-only or
idempotent (every service in this library serves reads).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable

from repro import obs
from repro.errors import (
    RemoteCallError,
    ReproError,
    ResponseIntegrityError,
    RpcTimeoutError,
)
from repro.net import wire
from repro.net.bus import MessageBus, NetworkNode
from repro.net.faults import flip_hex_digit


def rpc_topic(name: str) -> str:
    """The unicast topic an endpoint named ``name`` listens on."""
    return f"rpc:{name}"


@dataclass(frozen=True, slots=True)
class RpcRequest:
    """One call envelope: who asks, what method, encoded arguments."""

    request_id: int
    sender: str
    method: str
    payload: bytes

    def corrupted(self, rng: random.Random) -> "RpcRequest":
        return replace(self, payload=flip_hex_digit(self.payload, rng))


@dataclass(frozen=True, slots=True)
class RpcResponse:
    """The reply envelope; ``payload`` encodes the result or the error
    message.  A failure reply carries the *typed* error code from the
    :mod:`repro.errors` taxonomy in ``code`` (empty on success), so
    callers — retry loops, the query gateway — can classify the failure
    (retryable transport fault vs terminal verification error) without
    parsing strings out of the payload."""

    request_id: int
    sender: str
    ok: bool
    payload: bytes
    code: str = ""

    def corrupted(self, rng: random.Random) -> "RpcResponse":
        return replace(self, payload=flip_hex_digit(self.payload, rng))


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-call timeout and bounded exponential backoff schedule."""

    timeout_ms: float = 500.0
    max_attempts: int = 4
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 1_000.0

    def backoff_ms(self, attempt: int) -> float:
        """Backoff to wait after the ``attempt``-th failure (0-based)."""
        return min(
            self.backoff_base_ms * self.backoff_factor**attempt,
            self.backoff_max_ms,
        )


Handler = Callable[[object], object]


class DropRequest(Exception):
    """Raised by a handler (or a supervising wrapper) to drop the
    request silently — no reply at all, as if the host were dead.  The
    client's timeout-and-retry path takes over."""


class RpcServer:
    """A named service endpoint: method registry + envelope plumbing.

    ``service_time_ms`` models the endpoint as a single-threaded worker:
    each reply is emitted only after the server has *spent* that much
    virtual time on the request, and requests arriving while it is busy
    queue behind it.  That is what makes replica count matter on the
    virtual clock — N replicas drain a query burst N times faster — and
    it is what the fleet-scaling benchmark measures.  Zero (the
    default) keeps the original instant-reply behaviour.
    """

    def __init__(
        self, bus: MessageBus, name: str, *, service_time_ms: float = 0.0
    ) -> None:
        self.bus = bus
        self.name = name
        self.service_time_ms = service_time_ms
        #: Virtual time until which this endpoint's worker is occupied.
        self.busy_until_ms = 0.0
        self.node = bus.join(NetworkNode(name, record_limit=0))
        self.node.on(rpc_topic(name), self._handle)
        self._methods: dict[str, Handler] = {}
        self._service_times: dict[str, float] = {}
        self.requests_served = 0
        self.requests_dropped = 0
        #: While True the endpoint behaves like a dead host: every
        #: request is dropped without a reply.  A supervisor pauses the
        #: server while its backing service is being restored (the bus
        #: does not allow leaving and rejoining under the same name).
        self.paused = False

    def register(
        self,
        method: str,
        handler: Handler,
        *,
        service_time_ms: float | None = None,
    ) -> None:
        """Expose ``handler`` (decoded-payload -> result object).

        ``service_time_ms`` overrides the server-wide busy-worker cost
        for this method alone — e.g. a query service charges its
        ``execute`` path but answers cheap root lookups immediately.
        """
        self._methods[method] = handler
        if service_time_ms is not None:
            self._service_times[method] = service_time_ms

    def _handle(self, message: object) -> None:
        if self.paused:
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        if not isinstance(message, RpcRequest):
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        try:
            argument = wire.decode(message.payload)
        except ReproError:
            # A corrupted request is indistinguishable from line noise;
            # drop it and let the client's retry path recover.
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        obs.inc("rpc.server.bytes_received", len(message.payload))
        handler = self._methods.get(message.method)
        if handler is None:
            self._reply(
                message,
                error=RemoteCallError(f"unknown method {message.method!r}"),
            )
            return
        started = time.perf_counter()
        try:
            result = handler(argument)
        except DropRequest:
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        except ReproError as exc:
            obs.inc(f"rpc.server.errors.{message.method}")
            self._reply(message, error=exc)
            return
        if obs.enabled():
            obs.inc(f"rpc.server.requests.{message.method}")
            obs.observe(
                f"rpc.server.handle_ms.{message.method}",
                (time.perf_counter() - started) * 1000.0,
            )
        self.requests_served += 1
        self._reply(message, result=result)

    def _reply(
        self,
        request: RpcRequest,
        *,
        result: object = None,
        error: ReproError | None = None,
    ) -> None:
        from repro.errors import code_for

        ok = error is None
        payload = wire.encode(result if ok else str(error))
        obs.inc("rpc.server.bytes_sent", len(payload))
        response = RpcResponse(
            request_id=request.request_id,
            sender=self.name,
            ok=ok,
            payload=payload,
            code="" if ok else code_for(error),
        )

        def send() -> None:
            self.bus.send(
                self.name, request.sender, rpc_topic(request.sender), response
            )

        service_ms = self._service_times.get(
            request.method, self.service_time_ms
        )
        if service_ms <= 0.0:
            send()
            return
        # Single-threaded worker: this request starts when the previous
        # one finishes, and the reply leaves at completion time.
        start_ms = max(self.bus.clock_ms, self.busy_until_ms)
        self.busy_until_ms = start_ms + service_ms
        obs.observe(
            "rpc.server.queue_ms", start_ms - self.bus.clock_ms
        )
        self.bus.schedule(self.busy_until_ms - self.bus.clock_ms, send)


class RpcClient:
    """Blocking (virtual-time) calls with timeout, retry, and backoff."""

    def __init__(
        self, bus: MessageBus, name: str, policy: RetryPolicy | None = None
    ) -> None:
        self.bus = bus
        self.name = name
        self.policy = policy or RetryPolicy()
        self.node = bus.join(NetworkNode(name, record_limit=0))
        self.node.on(rpc_topic(name), self._on_response)
        self._next_id = 1
        self._pending: set[int] = set()
        self._responses: dict[int, RpcResponse] = {}
        #: Logical calls made (one per :meth:`call`, however many
        #: attempts it took) plus one per :meth:`begin`.  The verified
        #: answer cache's "zero round trips on a warm hit" claim is
        #: asserted against this counter.
        self.calls = 0
        self.timeouts = 0
        self.duplicates_ignored = 0

    def _on_response(self, message: object) -> None:
        if not isinstance(message, RpcResponse):
            return
        if message.request_id not in self._pending:
            self.duplicates_ignored += 1  # late or duplicated reply
            return
        self._pending.discard(message.request_id)
        self._responses[message.request_id] = message

    # -- non-blocking primitives (the gateway's pipelined dispatch) ----------

    def begin(self, target: str, method: str, argument: object = None) -> int:
        """Send one request without waiting; returns its request id.

        Pair with :meth:`take` (poll for the raw response while driving
        the bus yourself) and :meth:`resolve` (decode it or raise the
        mapped error).  The caller owns timeout and retry policy.
        """
        self.calls += 1
        obs.inc("rpc.client.calls")
        return self._send(target, method, wire.encode(argument))

    def _send(self, target: str, method: str, payload: bytes) -> int:
        obs.inc("rpc.client.bytes_sent", len(payload))
        request_id = self._next_id
        self._next_id += 1
        self._pending.add(request_id)
        self.bus.send(
            self.name,
            target,
            rpc_topic(target),
            RpcRequest(
                request_id=request_id,
                sender=self.name,
                method=method,
                payload=payload,
            ),
        )
        return request_id

    def has_response(self, request_id: int) -> bool:
        return request_id in self._responses

    def take(self, request_id: int) -> RpcResponse | None:
        """Pop the response to ``request_id`` if it has arrived."""
        return self._responses.pop(request_id, None)

    def abandon(self, request_id: int) -> None:
        """Stop waiting for ``request_id``; a late reply is ignored."""
        self._pending.discard(request_id)
        self._responses.pop(request_id, None)

    def resolve(
        self, response: RpcResponse, *, target: str, method: str
    ) -> object:
        """Decode a response into its result, or raise the mapped error."""
        obs.inc("rpc.client.bytes_received", len(response.payload))
        if not response.ok:
            raise self._remote_error(response)
        try:
            return wire.decode(response.payload)
        except ReproError as exc:
            raise ResponseIntegrityError(
                f"response to {method!r} from {target!r} corrupted in "
                f"flight: {exc}"
            ) from exc

    def call(
        self,
        target: str,
        method: str,
        argument: object = None,
        *,
        policy: RetryPolicy | None = None,
    ) -> object:
        """Call ``method`` on ``target``; returns the decoded result.

        Drives the bus (delivering everyone's traffic along the way)
        until the matching response arrives or the attempt's deadline
        passes, retrying per the policy.  Raises

        * :class:`RpcTimeoutError` — no response after every attempt;
        * :class:`ResponseIntegrityError` — a response arrived but its
          payload does not decode (corrupted in flight);
        * the mapped library error — the server reported a failure
          (e.g. a :class:`repro.errors.QueryError` re-raised locally).
        """
        policy = policy or self.policy
        payload = wire.encode(argument)
        self.calls += 1
        obs.inc("rpc.client.calls")
        virtual_started = self.bus.clock_ms
        last_remote: ReproError | None = None
        for attempt in range(policy.max_attempts):
            if attempt:
                obs.inc("rpc.client.retries")
            request_id = self._send(target, method, payload)
            deadline = self.bus.clock_ms + policy.timeout_ms
            while request_id not in self._responses and self.bus.step(deadline):
                pass
            response = self._responses.pop(request_id, None)
            if response is None:
                self._pending.discard(request_id)
                self.bus.wait_until(deadline)
                self.timeouts += 1
                obs.inc("rpc.client.timeouts")
                if attempt + 1 < policy.max_attempts:
                    self.bus.run_for(policy.backoff_ms(attempt))
                continue
            if obs.enabled():
                obs.inc("rpc.client.bytes_received", len(response.payload))
                obs.observe(
                    f"rpc.client.call_ms.{method}",
                    self.bus.clock_ms - virtual_started,
                )
            if not response.ok:
                error = self._remote_error(response)
                # The code tells us whether another attempt can help: a
                # transient transport-class failure (service restarting,
                # overloaded) is worth the backoff; a semantic failure
                # (bad query, failed verification) never is.
                if error.retryable and attempt + 1 < policy.max_attempts:
                    last_remote = error
                    obs.inc("rpc.client.remote_retries")
                    self.bus.run_for(policy.backoff_ms(attempt))
                    continue
                raise error
            try:
                return wire.decode(response.payload)
            except ReproError as exc:
                raise ResponseIntegrityError(
                    f"response to {method!r} from {target!r} corrupted in "
                    f"flight: {exc}"
                ) from exc
        if last_remote is not None:
            raise last_remote
        raise RpcTimeoutError(
            f"no response from {target!r} to {method!r} after "
            f"{policy.max_attempts} attempts ({policy.timeout_ms:.0f} ms each)"
        )

    def _remote_error(self, response: RpcResponse) -> ReproError:
        """Map a remote failure report back onto the local taxonomy.

        The response's ``code`` field selects the exception class (an
        unknown code degrades to :class:`RemoteCallError`); the payload
        carries only the human-readable message.
        """
        from repro.errors import error_for_code

        try:
            message = wire.decode(response.payload)
        except ReproError as exc:
            return ResponseIntegrityError(
                f"undecodable error report from {response.sender!r}: {exc}"
            )
        exc_type = error_for_code(response.code)
        return exc_type(f"{response.sender}: {message}")
