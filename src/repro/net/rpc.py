"""Request/response RPC over the deterministic message bus.

The paper's Fig. 2 deployment has constant-state clients *asking*
untrusted Service Providers and Certificate Issuers for data, which is
a request/response contract — not the fire-and-forget broadcast the
bus gives us natively.  This module layers that contract on top:

* :class:`RpcServer` — joins the bus under a service name, decodes
  :class:`RpcRequest` envelopes, dispatches to registered handlers,
  and replies with :class:`RpcResponse` envelopes.  A request whose
  payload fails to decode is *dropped* (like a checksum-failed packet):
  the caller's timeout-and-retry path handles it.
* :class:`RpcClient` — sends a request, drains the bus up to a
  virtual-clock deadline, and retries with bounded exponential backoff
  (:class:`RetryPolicy`).  Exhausted retries raise
  :class:`repro.errors.RpcTimeoutError`; a response that cannot be
  decoded raises :class:`repro.errors.ResponseIntegrityError`.

Payloads cross the wire as bytes (:mod:`repro.net.wire`), so a
:class:`repro.net.faults.FaultInjector` can corrupt them exactly as a
real network would.  Delivery is at-least-once: retries and duplicated
packets may re-execute a handler, so handlers must be read-only or
idempotent (every service in this library serves reads).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable

from repro import obs
from repro.errors import (
    RemoteCallError,
    ReproError,
    ResponseIntegrityError,
    RpcTimeoutError,
)
from repro.net import wire
from repro.net.bus import MessageBus, NetworkNode
from repro.net.faults import flip_hex_digit


def rpc_topic(name: str) -> str:
    """The unicast topic an endpoint named ``name`` listens on."""
    return f"rpc:{name}"


@dataclass(frozen=True, slots=True)
class RpcRequest:
    """One call envelope: who asks, what method, encoded arguments."""

    request_id: int
    sender: str
    method: str
    payload: bytes

    def corrupted(self, rng: random.Random) -> "RpcRequest":
        return replace(self, payload=flip_hex_digit(self.payload, rng))


@dataclass(frozen=True, slots=True)
class RpcResponse:
    """The reply envelope; ``payload`` encodes the result or the error."""

    request_id: int
    sender: str
    ok: bool
    payload: bytes

    def corrupted(self, rng: random.Random) -> "RpcResponse":
        return replace(self, payload=flip_hex_digit(self.payload, rng))


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-call timeout and bounded exponential backoff schedule."""

    timeout_ms: float = 500.0
    max_attempts: int = 4
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 1_000.0

    def backoff_ms(self, attempt: int) -> float:
        """Backoff to wait after the ``attempt``-th failure (0-based)."""
        return min(
            self.backoff_base_ms * self.backoff_factor**attempt,
            self.backoff_max_ms,
        )


Handler = Callable[[object], object]


class DropRequest(Exception):
    """Raised by a handler (or a supervising wrapper) to drop the
    request silently — no reply at all, as if the host were dead.  The
    client's timeout-and-retry path takes over."""


class RpcServer:
    """A named service endpoint: method registry + envelope plumbing."""

    def __init__(self, bus: MessageBus, name: str) -> None:
        self.bus = bus
        self.name = name
        self.node = bus.join(NetworkNode(name, record_limit=0))
        self.node.on(rpc_topic(name), self._handle)
        self._methods: dict[str, Handler] = {}
        self.requests_served = 0
        self.requests_dropped = 0
        #: While True the endpoint behaves like a dead host: every
        #: request is dropped without a reply.  A supervisor pauses the
        #: server while its backing service is being restored (the bus
        #: does not allow leaving and rejoining under the same name).
        self.paused = False

    def register(self, method: str, handler: Handler) -> None:
        """Expose ``handler`` (decoded-payload -> result object)."""
        self._methods[method] = handler

    def _handle(self, message: object) -> None:
        if self.paused:
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        if not isinstance(message, RpcRequest):
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        try:
            argument = wire.decode(message.payload)
        except ReproError:
            # A corrupted request is indistinguishable from line noise;
            # drop it and let the client's retry path recover.
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        obs.inc("rpc.server.bytes_received", len(message.payload))
        handler = self._methods.get(message.method)
        if handler is None:
            self._reply(
                message, ok=False,
                error=("RemoteCallError", f"unknown method {message.method!r}"),
            )
            return
        started = time.perf_counter()
        try:
            result = handler(argument)
        except DropRequest:
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        except ReproError as exc:
            obs.inc(f"rpc.server.errors.{message.method}")
            self._reply(
                message, ok=False, error=(type(exc).__name__, str(exc))
            )
            return
        if obs.enabled():
            obs.inc(f"rpc.server.requests.{message.method}")
            obs.observe(
                f"rpc.server.handle_ms.{message.method}",
                (time.perf_counter() - started) * 1000.0,
            )
        self.requests_served += 1
        self._reply(message, ok=True, result=result)

    def _reply(
        self,
        request: RpcRequest,
        *,
        ok: bool,
        result: object = None,
        error: tuple[str, str] | None = None,
    ) -> None:
        payload = wire.encode(result if ok else {"type": error[0], "message": error[1]})
        obs.inc("rpc.server.bytes_sent", len(payload))
        self.bus.send(
            self.name,
            request.sender,
            rpc_topic(request.sender),
            RpcResponse(
                request_id=request.request_id,
                sender=self.name,
                ok=ok,
                payload=payload,
            ),
        )


class RpcClient:
    """Blocking (virtual-time) calls with timeout, retry, and backoff."""

    def __init__(
        self, bus: MessageBus, name: str, policy: RetryPolicy | None = None
    ) -> None:
        self.bus = bus
        self.name = name
        self.policy = policy or RetryPolicy()
        self.node = bus.join(NetworkNode(name, record_limit=0))
        self.node.on(rpc_topic(name), self._on_response)
        self._next_id = 1
        self._pending: set[int] = set()
        self._responses: dict[int, RpcResponse] = {}
        self.timeouts = 0
        self.duplicates_ignored = 0

    def _on_response(self, message: object) -> None:
        if not isinstance(message, RpcResponse):
            return
        if message.request_id not in self._pending:
            self.duplicates_ignored += 1  # late or duplicated reply
            return
        self._pending.discard(message.request_id)
        self._responses[message.request_id] = message

    def call(
        self,
        target: str,
        method: str,
        argument: object = None,
        *,
        policy: RetryPolicy | None = None,
    ) -> object:
        """Call ``method`` on ``target``; returns the decoded result.

        Drives the bus (delivering everyone's traffic along the way)
        until the matching response arrives or the attempt's deadline
        passes, retrying per the policy.  Raises

        * :class:`RpcTimeoutError` — no response after every attempt;
        * :class:`ResponseIntegrityError` — a response arrived but its
          payload does not decode (corrupted in flight);
        * the mapped library error — the server reported a failure
          (e.g. a :class:`repro.errors.QueryError` re-raised locally).
        """
        policy = policy or self.policy
        payload = wire.encode(argument)
        obs.inc("rpc.client.calls")
        virtual_started = self.bus.clock_ms
        for attempt in range(policy.max_attempts):
            if attempt:
                obs.inc("rpc.client.retries")
            obs.inc("rpc.client.bytes_sent", len(payload))
            request_id = self._next_id
            self._next_id += 1
            self._pending.add(request_id)
            self.bus.send(
                self.name,
                target,
                rpc_topic(target),
                RpcRequest(
                    request_id=request_id,
                    sender=self.name,
                    method=method,
                    payload=payload,
                ),
            )
            deadline = self.bus.clock_ms + policy.timeout_ms
            while request_id not in self._responses and self.bus.step(deadline):
                pass
            response = self._responses.pop(request_id, None)
            if response is None:
                self._pending.discard(request_id)
                self.bus.wait_until(deadline)
                self.timeouts += 1
                obs.inc("rpc.client.timeouts")
                if attempt + 1 < policy.max_attempts:
                    self.bus.run_for(policy.backoff_ms(attempt))
                continue
            if obs.enabled():
                obs.inc("rpc.client.bytes_received", len(response.payload))
                obs.observe(
                    f"rpc.client.call_ms.{method}",
                    self.bus.clock_ms - virtual_started,
                )
            if not response.ok:
                raise self._remote_error(response)
            try:
                return wire.decode(response.payload)
            except ReproError as exc:
                raise ResponseIntegrityError(
                    f"response to {method!r} from {target!r} corrupted in "
                    f"flight: {exc}"
                ) from exc
        raise RpcTimeoutError(
            f"no response from {target!r} to {method!r} after "
            f"{policy.max_attempts} attempts ({policy.timeout_ms:.0f} ms each)"
        )

    def _remote_error(self, response: RpcResponse) -> ReproError:
        """Map a remote failure report back onto the local taxonomy."""
        import repro.errors as errors

        try:
            detail = wire.decode(response.payload)
            name, message = detail["type"], detail["message"]
        except (ReproError, KeyError, TypeError) as exc:
            return ResponseIntegrityError(
                f"undecodable error report from {response.sender!r}: {exc}"
            )
        exc_type = getattr(errors, str(name), RemoteCallError)
        if not (isinstance(exc_type, type) and issubclass(exc_type, ReproError)):
            exc_type = RemoteCallError
        return exc_type(f"{response.sender}: {message}")
