"""Request/response RPC over the deterministic message bus.

The paper's Fig. 2 deployment has constant-state clients *asking*
untrusted Service Providers and Certificate Issuers for data, which is
a request/response contract — not the fire-and-forget broadcast the
bus gives us natively.  This module layers that contract on top:

* :class:`RpcServer` — joins the bus under a service name, decodes
  :class:`RpcRequest` envelopes, dispatches to registered handlers,
  and replies with :class:`RpcResponse` envelopes.  A request whose
  payload fails to decode is *dropped* (like a checksum-failed packet):
  the caller's timeout-and-retry path handles it.
* :class:`RpcClient` — sends a request, drains the bus up to a
  virtual-clock deadline, and retries with bounded exponential backoff
  (:class:`RetryPolicy`).  Exhausted retries raise
  :class:`repro.errors.RpcTimeoutError`; a response that cannot be
  decoded raises :class:`repro.errors.ResponseIntegrityError`.

Payloads cross the wire as bytes (:mod:`repro.net.wire`), so a
:class:`repro.net.faults.FaultInjector` can corrupt them exactly as a
real network would.  Delivery is at-least-once: retries and duplicated
packets may re-execute a handler, so handlers must be read-only or
idempotent (every service in this library serves reads).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable

from repro import obs
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    RemoteCallError,
    ReproError,
    ResponseIntegrityError,
    RpcTimeoutError,
)
from repro.net import wire
from repro.net.bus import MessageBus, NetworkNode
from repro.net.faults import flip_hex_digit
from repro.obs.wallclock import elapsed_ms, now_s
from repro.net.resilience import (
    NO_DEADLINE,
    AdmissionPolicy,
    LatencyTracker,
    clamp_retry_after,
    sanitize_deadline,
)


def rpc_topic(name: str) -> str:
    """The unicast topic an endpoint named ``name`` listens on."""
    return f"rpc:{name}"


@dataclass(frozen=True, slots=True)
class RpcRequest:
    """One call envelope: who asks, what method, encoded arguments.

    ``deadline_ms`` is the caller's *absolute* virtual-clock deadline
    (0 = none): a server refuses to start — and never hands to its
    provider — work it cannot finish by then.  The field is advisory
    and attacker-controllable, so servers sanitize it and the safe
    degradation is "no deadline" (see
    :func:`repro.net.resilience.sanitize_deadline`); a forged deadline
    can only cause a refusal, never a wrong answer.
    """

    request_id: int
    sender: str
    method: str
    payload: bytes
    deadline_ms: float = NO_DEADLINE

    def corrupted(self, rng: random.Random) -> "RpcRequest":
        return replace(self, payload=flip_hex_digit(self.payload, rng))


@dataclass(frozen=True, slots=True)
class RpcResponse:
    """The reply envelope; ``payload`` encodes the result or the error
    message.  A failure reply carries the *typed* error code from the
    :mod:`repro.errors` taxonomy in ``code`` (empty on success), so
    callers — retry loops, the query gateway — can classify the failure
    (retryable transport fault vs terminal verification error) without
    parsing strings out of the payload.

    ``retry_after_ms`` rides along on an ``net.overloaded`` failure:
    the server's estimate of when its admission queue will have drained
    back under the shed threshold.  Advisory and untrusted — clients
    clamp it (:func:`repro.net.resilience.clamp_retry_after`), so a
    forged hint can delay one retry but never stall a caller."""

    request_id: int
    sender: str
    ok: bool
    payload: bytes
    code: str = ""
    retry_after_ms: float = 0.0

    def corrupted(self, rng: random.Random) -> "RpcResponse":
        return replace(self, payload=flip_hex_digit(self.payload, rng))


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Per-call timeout and bounded exponential backoff schedule.

    ``jitter`` spreads each backoff uniformly over ``±jitter`` of its
    nominal value (from the client's *seeded* stream, so runs stay
    deterministic).  A fleet whose clients share one pure-exponential
    schedule retries in lockstep — every wave of retries lands on the
    servers at the same virtual instant, which is how a load spike
    becomes a standing one; jitter desynchronizes the waves.  The
    default is 0 for bit-compatibility with existing schedules; fleet
    construction paths opt in.

    ``adaptive_timeout`` lets the client tighten the per-attempt
    timeout below ``timeout_ms`` using its observed per-endpoint
    latency (p90 × 3, floored) once enough samples exist; the static
    ``timeout_ms`` stays the ceiling.
    """

    timeout_ms: float = 500.0
    max_attempts: int = 4
    backoff_base_ms: float = 50.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 1_000.0
    jitter: float = 0.0
    adaptive_timeout: bool = False

    def backoff_ms(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff to wait after the ``attempt``-th failure (0-based)."""
        nominal = min(
            self.backoff_base_ms * self.backoff_factor**attempt,
            self.backoff_max_ms,
        )
        if self.jitter and rng is not None:
            nominal *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, nominal)


Handler = Callable[[object], object]


class DropRequest(Exception):
    """Raised by a handler (or a supervising wrapper) to drop the
    request silently — no reply at all, as if the host were dead.  The
    client's timeout-and-retry path takes over."""


class RpcServer:
    """A named service endpoint: method registry + envelope plumbing.

    ``service_time_ms`` models the endpoint as a single-threaded worker:
    each reply is emitted only after the server has *spent* that much
    virtual time on the request, and requests arriving while it is busy
    queue behind it.  That is what makes replica count matter on the
    virtual clock — N replicas drain a query burst N times faster — and
    it is what the fleet-scaling benchmark measures.  Zero (the
    default) keeps the original instant-reply behaviour.
    """

    def __init__(
        self,
        bus: MessageBus,
        name: str,
        *,
        service_time_ms: float = 0.0,
        admission: AdmissionPolicy | None = None,
    ) -> None:
        self.bus = bus
        self.name = name
        self.service_time_ms = service_time_ms
        #: Virtual time until which this endpoint's worker is occupied.
        self.busy_until_ms = 0.0
        self.node = bus.join(NetworkNode(name, record_limit=0))
        self.node.on(rpc_topic(name), self._handle)
        # repro: allow[BND01] method registry, one entry per register() at wiring
        self._methods: dict[str, Handler] = {}
        # repro: allow[BND01] per-method config, one entry per register() at wiring
        self._service_times: dict[str, float] = {}
        self.requests_served = 0
        self.requests_dropped = 0
        #: Load shedding for the busy worker (None = admit everything,
        #: the original unbounded-queue behaviour).
        self.admission = admission
        #: Admitted-but-unfinished busy-worker requests (the queue the
        #: admission policy bounds).
        self.queued = 0
        #: Requests refused with OVERLOADED / DEADLINE_EXCEEDED.  These
        #: never reach a handler — the sim invariant "shed requests do
        #: zero provider work" rests on that.
        self.requests_shed = 0
        self.deadline_refused = 0
        #: Admitted requests whose reply would nonetheless have missed
        #: their propagated deadline by more than one service quantum.
        #: With admission prediction on the virtual clock this must stay
        #: 0 — asserted as a sim invariant.
        self.deadline_violations = 0
        #: Handler invocations per method — the ground truth the sim
        #: uses to prove shed work never executed.
        # repro: allow[BND01] one counter per registered method
        self.invocations: dict[str, int] = {}
        #: Largest queue delay an admitted request experienced.
        self.max_queue_delay_ms = 0.0
        #: While True the endpoint behaves like a dead host: every
        #: request is dropped without a reply.  A supervisor pauses the
        #: server while its backing service is being restored (the bus
        #: does not allow leaving and rejoining under the same name).
        self.paused = False

    def register(
        self,
        method: str,
        handler: Handler,
        *,
        service_time_ms: float | None = None,
    ) -> None:
        """Expose ``handler`` (decoded-payload -> result object).

        ``service_time_ms`` overrides the server-wide busy-worker cost
        for this method alone — e.g. a query service charges its
        ``execute`` path but answers cheap root lookups immediately.
        """
        self._methods[method] = handler
        if service_time_ms is not None:
            self._service_times[method] = service_time_ms

    def _handle(self, message: object) -> None:
        if self.paused:
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        if not isinstance(message, RpcRequest):
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        try:
            argument = wire.decode(message.payload)
        except ReproError:
            # A corrupted request is indistinguishable from line noise;
            # drop it and let the client's retry path recover.
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        obs.inc("rpc.server.bytes_received", len(message.payload))
        handler = self._methods.get(message.method)
        if handler is None:
            self._reply(
                message,
                error=RemoteCallError(f"unknown method {message.method!r}"),
            )
            return
        if not self._admit(message):
            return
        self.invocations[message.method] = (
            self.invocations.get(message.method, 0) + 1
        )
        started = now_s()
        try:
            result = handler(argument)
        except DropRequest:
            self.requests_dropped += 1
            obs.inc("rpc.server.dropped")
            return
        except ReproError as exc:
            obs.inc(f"rpc.server.errors.{message.method}")
            self._reply(message, error=exc)
            return
        if obs.enabled():
            obs.inc(f"rpc.server.requests.{message.method}")
            obs.observe(
                f"rpc.server.handle_ms.{message.method}",
                elapsed_ms(started),
            )
        self.requests_served += 1
        self._reply(message, result=result)

    def _service_ms(self, method: str) -> float:
        return self._service_times.get(method, self.service_time_ms)

    def _admit(self, message: RpcRequest) -> bool:
        """Deadline + admission gate, *before* the handler runs.

        A refusal replies immediately (refusing is metadata-cheap; only
        admitted work occupies the busy worker) and never invokes the
        handler, so shed or expired requests cost zero provider work.
        On the virtual clock the worker's start time is exactly
        predictable, so "refuse what would miss its deadline" at
        arrival is the same act as "abandon queued work whose deadline
        expired" at dequeue — there is no window in which a doomed
        request can sit in the queue.
        """
        service_ms = self._service_ms(message.method)
        now_ms = self.bus.clock_ms
        start_ms = max(now_ms, self.busy_until_ms)
        deadline = sanitize_deadline(message.deadline_ms)
        if deadline and start_ms + service_ms > deadline:
            self.deadline_refused += 1
            obs.inc("resilience.server.deadline_refused")
            self._reply(
                message,
                error=DeadlineExceededError(
                    f"{message.method!r} would complete at "
                    f"{start_ms + service_ms:.1f} ms, past the caller's "
                    f"deadline of {deadline:.1f} ms"
                ),
                immediate=True,
            )
            return False
        if self.admission is not None and service_ms > 0.0:
            queue_delay_ms = start_ms - now_ms
            if (
                self.queued >= self.admission.queue_limit
                or queue_delay_ms > self.admission.shed_delay_ms
            ):
                hint = self.admission.retry_after_hint(
                    queue_delay_ms, service_ms
                )
                self.requests_shed += 1
                obs.inc("resilience.server.shed")
                self._reply(
                    message,
                    error=OverloadedError(
                        f"{self.name} shed {message.method!r}: predicted "
                        f"queue delay {queue_delay_ms:.1f} ms over the "
                        f"{self.admission.shed_delay_ms:.1f} ms target",
                        retry_after_ms=hint,
                    ),
                    immediate=True,
                    retry_after_ms=hint,
                )
                return False
        return True

    def _reply(
        self,
        request: RpcRequest,
        *,
        result: object = None,
        error: ReproError | None = None,
        immediate: bool = False,
        retry_after_ms: float = 0.0,
    ) -> None:
        from repro.errors import code_for

        ok = error is None
        payload = wire.encode(result if ok else str(error))
        obs.inc("rpc.server.bytes_sent", len(payload))
        response = RpcResponse(
            request_id=request.request_id,
            sender=self.name,
            ok=ok,
            payload=payload,
            code="" if ok else code_for(error),
            retry_after_ms=retry_after_ms,
        )

        def send() -> None:
            self.queued -= 1
            self.bus.send(
                self.name, request.sender, rpc_topic(request.sender), response
            )

        service_ms = self._service_ms(request.method)
        if immediate or service_ms <= 0.0:
            self.bus.send(
                self.name, request.sender, rpc_topic(request.sender), response
            )
            return
        # Single-threaded worker: this request starts when the previous
        # one finishes, and the reply leaves at completion time.
        start_ms = max(self.bus.clock_ms, self.busy_until_ms)
        self.busy_until_ms = start_ms + service_ms
        queue_delay_ms = start_ms - self.bus.clock_ms
        if queue_delay_ms > self.max_queue_delay_ms:
            self.max_queue_delay_ms = queue_delay_ms
        obs.observe("rpc.server.queue_ms", queue_delay_ms)
        deadline = sanitize_deadline(request.deadline_ms)
        if deadline and self.busy_until_ms > deadline + max(service_ms, 1.0):
            # Admission should have refused this request; if it ever
            # happens the sim's deadline invariant trips.
            self.deadline_violations += 1
            obs.inc("resilience.server.deadline_violations")
        self.queued += 1
        obs.set_gauge(f"resilience.queue_depth.{self.name}", self.queued)
        self.bus.schedule(self.busy_until_ms - self.bus.clock_ms, send)


class RpcClient:
    """Blocking (virtual-time) calls with timeout, retry, and backoff.

    The client also carries the caller-side half of the overload story:

    * a **seeded jitter stream** for :class:`RetryPolicy.jitter`, keyed
      by the client's name — deterministic, but distinct per client, so
      a fleet's backoffs desynchronize instead of stampeding;
    * **deadline propagation** — ``call``/``begin`` accept an absolute
      ``deadline_ms``; a call whose budget is spent raises
      :class:`~repro.errors.DeadlineExceededError` locally without
      sending anything (zero downstream work);
    * **retry-after honoring** — an ``OVERLOADED`` refusal's (clamped)
      ``retry_after_ms`` hint extends the backoff before the next
      attempt;
    * **per-endpoint latency tracking** (:attr:`latency`) feeding
      adaptive timeouts when the policy opts in;
    * **bounded response bookkeeping** — ``_responses`` is swept on
      abandon and capped, so late replies to abandoned requests can
      never grow memory (asserted as a sim invariant).
    """

    #: Caps on retained responses and remembered abandoned ids.
    RESPONSES_LIMIT = 256
    ABANDONED_LIMIT = 1024
    #: Cap on per-endpoint latency trackers.  A client talks to a
    #: handful of endpoints; the cap only bites when endpoint names
    #: churn without bound, and recently-used trackers survive.
    LATENCY_TRACKERS_LIMIT = 64

    def __init__(
        self,
        bus: MessageBus,
        name: str,
        policy: RetryPolicy | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.bus = bus
        self.name = name
        self.policy = policy or RetryPolicy()
        self.node = bus.join(NetworkNode(name, record_limit=0))
        self.node.on(rpc_topic(name), self._on_response)
        self._next_id = 1
        self._pending: set[int] = set()
        self._responses: "OrderedDict[int, RpcResponse]" = OrderedDict()
        #: Request ids abandoned while still pending: a late reply to
        #: one of these is dropped (and counted) instead of retained.
        self._abandoned: "OrderedDict[int, None]" = OrderedDict()
        #: Deterministic per-client stream for backoff jitter: seeded
        #: by name, so each client walks its own schedule and the same
        #: run replays bit-identically.
        self._rng = random.Random(f"rpc-client:{name}:{seed}")
        #: Observed per-endpoint latency (virtual ms, successful
        #: calls).  LRU-bounded: see LATENCY_TRACKERS_LIMIT.
        self.latency: "OrderedDict[str, LatencyTracker]" = OrderedDict()
        #: Logical calls made (one per :meth:`call`, however many
        #: attempts it took) plus one per :meth:`begin`.  The verified
        #: answer cache's "zero round trips on a warm hit" claim is
        #: asserted against this counter.
        self.calls = 0
        self.timeouts = 0
        self.duplicates_ignored = 0
        self.late_after_abandon = 0
        self.retry_after_waits = 0
        self.deadline_gaveups = 0

    def _on_response(self, message: object) -> None:
        if not isinstance(message, RpcResponse):
            return
        if message.request_id not in self._pending:
            if message.request_id in self._abandoned:
                del self._abandoned[message.request_id]
                self.late_after_abandon += 1
                obs.inc("rpc.client.late_after_abandon")
            self.duplicates_ignored += 1  # late or duplicated reply
            return
        self._pending.discard(message.request_id)
        self._responses[message.request_id] = message
        while len(self._responses) > self.RESPONSES_LIMIT:
            self._responses.popitem(last=False)

    def _track_latency(self, target: str, sample_ms: float) -> None:
        tracker = self.latency.get(target)
        if tracker is None:
            tracker = self.latency[target] = LatencyTracker()
            while len(self.latency) > self.LATENCY_TRACKERS_LIMIT:
                self.latency.popitem(last=False)
        else:
            self.latency.move_to_end(target)
        tracker.observe(sample_ms)

    def _attempt_timeout_ms(self, target: str, policy: RetryPolicy) -> float:
        if not policy.adaptive_timeout:
            return policy.timeout_ms
        tracker = self.latency.get(target)
        if tracker is None:
            return policy.timeout_ms
        return tracker.timeout_ms(policy.timeout_ms)

    # -- non-blocking primitives (the gateway's pipelined dispatch) ----------

    def begin(
        self,
        target: str,
        method: str,
        argument: object = None,
        *,
        deadline_ms: float = NO_DEADLINE,
    ) -> int:
        """Send one request without waiting; returns its request id.

        Pair with :meth:`take` (poll for the raw response while driving
        the bus yourself) and :meth:`resolve` (decode it or raise the
        mapped error).  The caller owns timeout and retry policy.
        """
        self.calls += 1
        obs.inc("rpc.client.calls")
        return self._send(
            target, method, wire.encode(argument), deadline_ms=deadline_ms
        )

    def _send(
        self,
        target: str,
        method: str,
        payload: bytes,
        *,
        deadline_ms: float = NO_DEADLINE,
    ) -> int:
        obs.inc("rpc.client.bytes_sent", len(payload))
        request_id = self._next_id
        self._next_id += 1
        self._pending.add(request_id)
        self.bus.send(
            self.name,
            target,
            rpc_topic(target),
            RpcRequest(
                request_id=request_id,
                sender=self.name,
                method=method,
                payload=payload,
                deadline_ms=deadline_ms,
            ),
        )
        return request_id

    def has_response(self, request_id: int) -> bool:
        return request_id in self._responses

    def take(self, request_id: int) -> RpcResponse | None:
        """Pop the response to ``request_id`` if it has arrived."""
        return self._responses.pop(request_id, None)

    def abandon(self, request_id: int) -> None:
        """Stop waiting for ``request_id``; a late reply is ignored.

        If the request is still pending its id is remembered (bounded)
        so the eventual reply is counted and dropped, not retained —
        the sweep that keeps ``_responses`` from growing forever under
        timeout/hedge churn.
        """
        if request_id in self._pending:
            self._pending.discard(request_id)
            self._abandoned[request_id] = None
            while len(self._abandoned) > self.ABANDONED_LIMIT:
                self._abandoned.popitem(last=False)
        self._responses.pop(request_id, None)

    def resolve(
        self, response: RpcResponse, *, target: str, method: str
    ) -> object:
        """Decode a response into its result, or raise the mapped error."""
        obs.inc("rpc.client.bytes_received", len(response.payload))
        if not response.ok:
            raise self._remote_error(response)
        try:
            return wire.decode(response.payload)
        except ReproError as exc:
            raise ResponseIntegrityError(
                f"response to {method!r} from {target!r} corrupted in "
                f"flight: {exc}"
            ) from exc

    def call(
        self,
        target: str,
        method: str,
        argument: object = None,
        *,
        policy: RetryPolicy | None = None,
        deadline_ms: float = NO_DEADLINE,
    ) -> object:
        """Call ``method`` on ``target``; returns the decoded result.

        Drives the bus (delivering everyone's traffic along the way)
        until the matching response arrives or the attempt's deadline
        passes, retrying per the policy.  ``deadline_ms`` is an
        absolute virtual-clock budget for the *whole* call: it rides in
        the request (so the server can refuse doomed work), bounds each
        attempt, and once spent no further attempt is even sent.
        Raises

        * :class:`RpcTimeoutError` — no response after every attempt;
        * :class:`DeadlineExceededError` — the deadline budget ran out
          (locally or refused by the server);
        * :class:`ResponseIntegrityError` — a response arrived but its
          payload does not decode (corrupted in flight);
        * the mapped library error — the server reported a failure
          (e.g. a :class:`repro.errors.QueryError` re-raised locally).
        """
        policy = policy or self.policy
        call_deadline = sanitize_deadline(deadline_ms)
        payload = wire.encode(argument)
        self.calls += 1
        obs.inc("rpc.client.calls")
        virtual_started = self.bus.clock_ms
        last_remote: ReproError | None = None
        for attempt in range(policy.max_attempts):
            if call_deadline and self.bus.clock_ms >= call_deadline:
                self.deadline_gaveups += 1
                obs.inc("resilience.client.deadline_gaveups")
                raise DeadlineExceededError(
                    f"deadline for {method!r} on {target!r} expired after "
                    f"{attempt} attempts"
                ) from last_remote
            if attempt:
                obs.inc("rpc.client.retries")
            attempt_started = self.bus.clock_ms
            request_id = self._send(
                target, method, payload, deadline_ms=call_deadline
            )
            deadline = attempt_started + self._attempt_timeout_ms(
                target, policy
            )
            if call_deadline:
                deadline = min(deadline, call_deadline)
            while request_id not in self._responses and self.bus.step(deadline):
                pass
            response = self._responses.pop(request_id, None)
            if response is None:
                self.abandon(request_id)
                self.bus.wait_until(deadline)
                self.timeouts += 1
                obs.inc("rpc.client.timeouts")
                if attempt + 1 < policy.max_attempts:
                    self.bus.run_for(policy.backoff_ms(attempt, self._rng))
                continue
            self._track_latency(target, self.bus.clock_ms - attempt_started)
            if obs.enabled():
                obs.inc("rpc.client.bytes_received", len(response.payload))
                obs.observe(
                    f"rpc.client.call_ms.{method}",
                    self.bus.clock_ms - virtual_started,
                )
            if not response.ok:
                error = self._remote_error(response)
                # The code tells us whether another attempt can help: a
                # transient transport-class failure (service restarting,
                # overloaded) is worth the backoff; a semantic failure
                # (bad query, failed verification) never is.
                if error.retryable and attempt + 1 < policy.max_attempts:
                    last_remote = error
                    obs.inc("rpc.client.remote_retries")
                    wait_ms = policy.backoff_ms(attempt, self._rng)
                    if isinstance(error, OverloadedError):
                        # Honor (clamped) server backpressure: never
                        # retry an overloaded endpoint sooner than it
                        # asked us to.
                        hint = clamp_retry_after(error.retry_after_ms)
                        if hint > wait_ms:
                            wait_ms = hint
                        if hint > 0.0:
                            self.retry_after_waits += 1
                            obs.inc("resilience.client.retry_after_waits")
                    self.bus.run_for(wait_ms)
                    continue
                raise error
            try:
                return wire.decode(response.payload)
            except ReproError as exc:
                raise ResponseIntegrityError(
                    f"response to {method!r} from {target!r} corrupted in "
                    f"flight: {exc}"
                ) from exc
        if call_deadline and self.bus.clock_ms >= call_deadline:
            self.deadline_gaveups += 1
            obs.inc("resilience.client.deadline_gaveups")
            raise DeadlineExceededError(
                f"deadline for {method!r} on {target!r} expired after "
                f"{policy.max_attempts} attempts"
            ) from last_remote
        if last_remote is not None:
            raise last_remote
        raise RpcTimeoutError(
            f"no response from {target!r} to {method!r} after "
            f"{policy.max_attempts} attempts ({policy.timeout_ms:.0f} ms each)"
        )

    def _remote_error(self, response: RpcResponse) -> ReproError:
        """Map a remote failure report back onto the local taxonomy.

        The response's ``code`` field selects the exception class (an
        unknown code degrades to :class:`RemoteCallError`); the payload
        carries only the human-readable message.
        """
        from repro.errors import error_for_code

        try:
            message = wire.decode(response.payload)
        except ReproError as exc:
            return ResponseIntegrityError(
                f"undecodable error report from {response.sender!r}: {exc}"
            )
        exc_type = error_for_code(response.code)
        error = exc_type(f"{response.sender}: {message}")
        if isinstance(error, OverloadedError):
            # The hint is untrusted wire data: clamp before anything
            # downstream (backoff, breakers) can honor it.
            error.retry_after_ms = clamp_retry_after(response.retry_after_ms)
        return error
