"""Supervised issuer restart: crash detection + archive restore.

A production CI is a process under a supervisor (systemd, k8s, ...): it
crashes, the supervisor restarts it, and — because the signing key is
sealed and the archive is durable — it comes back as the *same* CI, so
clients keep their verified attestation and simply retry in-flight
calls.  :class:`IssuerSupervisor` models that loop on the virtual-clock
bus:

* every RPC handler of the supervised :class:`IssuerService` is
  wrapped: a :class:`~repro.fault.crashpoints.SimulatedCrash` escaping
  a handler marks the issuer dead — the in-flight request is dropped
  with no reply (a dead host does not send error responses) and the
  endpoint is paused so subsequent requests vanish the same way;
* restart attempts are scheduled on the bus with bounded exponential
  backoff (:class:`RestartPolicy`); each attempt calls the supplied
  ``restore`` callable (typically
  :func:`repro.core.recovery.recover_issuer` over the CI's archive);
* on success the restored issuer is swapped into the service and the
  endpoint unpaused, mid-conversation — clients that were retrying
  against the dead endpoint complete against the restarted one.

The bus does not allow a name to be re-joined, which is exactly the
semantics we want anyway: the *endpoint* (address) survives, the
process behind it is replaced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.fault.crashpoints import SimulatedCrash
from repro.net.rpc import DropRequest


@dataclass(frozen=True, slots=True)
class RestartPolicy:
    """Bounded exponential backoff between restart attempts."""

    max_attempts: int = 5
    backoff_base_ms: float = 100.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 2_000.0

    def backoff_ms(self, attempt: int) -> float:
        """Delay before the ``attempt``-th restart try (0-based)."""
        return min(
            self.backoff_base_ms * self.backoff_factor**attempt,
            self.backoff_max_ms,
        )


class IssuerSupervisor:
    """Watches an :class:`~repro.core.issuer.IssuerService`; restores a
    crashed issuer from its archive and brings the endpoint back."""

    def __init__(
        self,
        service,
        restore: Callable[[], object],
        *,
        policy: RestartPolicy | None = None,
    ) -> None:
        self.service = service
        self.restore = restore
        self.policy = policy or RestartPolicy()
        self.crashes = 0
        self.restarts = 0
        self.failed_attempts = 0
        self.gave_up = False
        self.last_crash: SimulatedCrash | None = None
        server = service.server
        for method, handler in list(server._methods.items()):
            server._methods[method] = self._guard(handler)

    # -- crash detection -----------------------------------------------------

    def _guard(self, handler):
        def guarded(argument):
            try:
                return handler(argument)
            except SimulatedCrash as crash:
                self._on_crash(crash)
                # A dying process sends nothing; the client times out
                # and retries, by which time we may be back.
                raise DropRequest() from None

        return guarded

    def _on_crash(self, crash: SimulatedCrash) -> None:
        self.crashes += 1
        self.last_crash = crash
        self.service.server.paused = True
        obs.inc("supervisor.crashes")
        obs.set_gauge("supervisor.endpoint_up", 0)
        self._schedule_attempt(0)

    # -- restart loop --------------------------------------------------------

    def _schedule_attempt(self, attempt: int) -> None:
        self.service.server.bus.schedule(
            self.policy.backoff_ms(attempt), lambda: self._try_restart(attempt)
        )

    def _try_restart(self, attempt: int) -> None:
        if self.gave_up or not self.service.server.paused:
            return
        try:
            issuer = self.restore()
        except Exception:
            self.failed_attempts += 1
            obs.inc("supervisor.restart_failures")
            if attempt + 1 >= self.policy.max_attempts:
                self.gave_up = True
                obs.inc("supervisor.gave_up")
            else:
                self._schedule_attempt(attempt + 1)
            return
        self.service.issuer = issuer
        self.service.server.paused = False
        self.restarts += 1
        if obs.enabled():
            obs.inc("supervisor.restarts")
            obs.set_gauge("supervisor.endpoint_up", 1)
            obs.set_gauge("supervisor.restart_attempts_last", attempt + 1)
