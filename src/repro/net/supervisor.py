"""Supervised service restart: crash detection + state restore.

A production CI or SP is a process under a supervisor (systemd, k8s,
...): it crashes, the supervisor restarts it, and — because the signing
key is sealed and the archive is durable — it comes back as the *same*
endpoint, so clients keep their verified attestation and simply retry
in-flight calls.  :class:`ServiceSupervisor` models that loop on the
virtual-clock bus for any RPC-fronted service:

* every RPC handler of the supervised service is wrapped: a
  :class:`~repro.fault.crashpoints.SimulatedCrash` escaping a handler
  marks the process dead — the in-flight request is dropped with no
  reply (a dead host does not send error responses) and the endpoint is
  paused so subsequent requests vanish the same way;
* restart attempts are scheduled on the bus with bounded exponential
  backoff (:class:`RestartPolicy`); each attempt calls the supplied
  ``restore`` callable (typically
  :func:`repro.core.recovery.recover_issuer` over the CI's archive, or
  a provider re-sync for an SP replica);
* on success the restored backing object is swapped into the service
  and the endpoint unpaused, mid-conversation — clients that were
  retrying against the dead endpoint complete against the restarted
  one, and a :class:`~repro.net.gateway.QueryGateway` that health-routed
  around the dead replica probes it back into rotation.

The bus does not allow a name to be re-joined, which is exactly the
semantics we want anyway: the *endpoint* (address) survives, the
process behind it is replaced.  :class:`IssuerSupervisor` remains as
the issuer-specific name from PR 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro import obs
from repro.fault.crashpoints import SimulatedCrash
from repro.net.rpc import DropRequest


@dataclass(frozen=True, slots=True)
class RestartPolicy:
    """Bounded exponential backoff between restart attempts."""

    max_attempts: int = 5
    backoff_base_ms: float = 100.0
    backoff_factor: float = 2.0
    backoff_max_ms: float = 2_000.0

    def backoff_ms(self, attempt: int) -> float:
        """Delay before the ``attempt``-th restart try (0-based)."""
        return min(
            self.backoff_base_ms * self.backoff_factor**attempt,
            self.backoff_max_ms,
        )


class ServiceSupervisor:
    """Watches an RPC-fronted service; restores its crashed backing
    object (issuer, provider, ...) and brings the endpoint back.

    ``target_attr`` names the attribute on the service that holds the
    process-like object the ``restore`` callable rebuilds.  When
    omitted it is auto-detected: an ``issuer`` attribute wins (the
    :class:`~repro.core.issuer.IssuerService` shape), else ``provider``
    (the :class:`~repro.query.provider.QueryService` shape).
    """

    def __init__(
        self,
        service,
        restore: Callable[[], object],
        *,
        policy: RestartPolicy | None = None,
        target_attr: str | None = None,
    ) -> None:
        self.service = service
        self.restore = restore
        self.policy = policy or RestartPolicy()
        if target_attr is None:
            target_attr = "issuer" if hasattr(service, "issuer") else "provider"
        if not hasattr(service, target_attr):
            raise TypeError(
                f"service {type(service).__name__} has no attribute "
                f"{target_attr!r} to supervise"
            )
        self.target_attr = target_attr
        self.crashes = 0
        self.restarts = 0
        self.failed_attempts = 0
        self.gave_up = False
        self.last_crash: SimulatedCrash | None = None
        server = service.server
        for method, handler in list(server._methods.items()):
            server._methods[method] = self._guard(handler)

    # -- crash detection -----------------------------------------------------

    def _guard(self, handler):
        def guarded(argument):
            try:
                return handler(argument)
            except SimulatedCrash as crash:
                self._on_crash(crash)
                # A dying process sends nothing; the client times out
                # and retries, by which time we may be back.
                raise DropRequest() from None

        return guarded

    def _on_crash(self, crash: SimulatedCrash) -> None:
        self.crashes += 1
        self.last_crash = crash
        self.service.server.paused = True
        obs.inc("supervisor.crashes")
        obs.set_gauge("supervisor.endpoint_up", 0)
        self._schedule_attempt(0)

    # -- restart loop --------------------------------------------------------

    def _schedule_attempt(self, attempt: int) -> None:
        self.service.server.bus.schedule(
            self.policy.backoff_ms(attempt), lambda: self._try_restart(attempt)
        )

    def _try_restart(self, attempt: int) -> None:
        if self.gave_up or not self.service.server.paused:
            return
        try:
            restored = self.restore()
        except Exception:
            self.failed_attempts += 1
            obs.inc("supervisor.restart_failures")
            if attempt + 1 >= self.policy.max_attempts:
                self.gave_up = True
                obs.inc("supervisor.gave_up")
            else:
                self._schedule_attempt(attempt + 1)
            return
        setattr(self.service, self.target_attr, restored)
        self.service.server.paused = False
        self.restarts += 1
        if obs.enabled():
            obs.inc("supervisor.restarts")
            obs.set_gauge("supervisor.endpoint_up", 1)
            obs.set_gauge("supervisor.restart_attempts_last", attempt + 1)


class IssuerSupervisor(ServiceSupervisor):
    """The issuer-specific supervisor from PR 4; now a thin alias over
    :class:`ServiceSupervisor` with ``target_attr="issuer"``."""

    def __init__(
        self,
        service,
        restore: Callable[[], object],
        *,
        policy: RestartPolicy | None = None,
    ) -> None:
        super().__init__(
            service, restore, policy=policy, target_attr="issuer"
        )
