"""Push-based tip propagation: the certificate subscription hub.

Polling inverts DCert's economics: a superlight client needs O(1) work
per new block, but a fleet of pollers costs the serving tier
``clients x poll rate`` RPC round trips even when nothing changed.
This module turns tip discovery into a *push* stream — the shape
LightSync-style designs deliver sync data in — while keeping every
announcement self-verifying (header + certificate, canonically
wire-encoded), so the hub itself stays untrusted:

* :class:`SubscriptionHub` — an RPC-addressable service (standalone,
  or mounted on any existing :class:`~repro.net.rpc.RpcServer`, e.g.
  the issuer endpoint or a server co-located with a
  :class:`~repro.net.gateway.QueryGateway`) that issuers notify on
  each newly certified block and that fans sequence-numbered
  :class:`TipAnnouncement` s out to subscribers.
* **Backpressure** — per-subscriber delivery is windowed by cumulative
  acks (:class:`~repro.net.messages.StreamAck`); announcements beyond
  the window queue in a *bounded* outbox.  On overflow the oldest
  queued announcements are dropped (they are superseded anyway — a
  certificate makes the newest tip self-sufficient) and the subscriber
  gets a :class:`~repro.net.messages.LagNotice` marker instead of the
  hub growing without bound.
* **Gap detection and catch-up** — announcements carry a dense
  sequence number; a subscriber seeing ``seq > expected`` (drops, hub
  restart, its own downtime) pulls ``hub.sync_range`` to catch up from
  the hub's bounded announcement history, then resumes the stream.
* **Leases** — every ack/heartbeat renews a virtual-clock lease; a
  subscriber that goes silent past its lease is reaped, so dead
  clients cost nothing.
* **Heartbeats** — renew the lease, report the hub's latest sequence
  (stall detection when every in-window push was lost), and requeue
  unacked in-flight announcements for retransmission.

The hub never verifies certificates — subscribers do, with the same
check a polled sync uses, so a forged or replayed announcement is
discarded and counted on the client, never adopted.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro import obs
from repro.chain.block import BlockHeader
from repro.core.certificate import Certificate
from repro.crypto.hashing import Digest
from repro.errors import ConfigError, ReproError, ServiceUnavailableError
from repro.fault.crashpoints import crashpoint
from repro.net import wire
from repro.net.bus import MessageBus
from repro.net.messages import LagNotice, PushEnvelope, StreamAck
from repro.net.rpc import RpcServer


def push_topic(subscriber: str) -> str:
    """The unicast topic a subscriber receives pushes on."""
    return f"push:{subscriber}"


def ack_topic(hub: str) -> str:
    """The unicast topic a hub receives stream acks on."""
    return f"push-ack:{hub}"


@dataclass(frozen=True, slots=True)
class TipAnnouncement:
    """One certified tip on the push stream.

    Exactly what a polled ``latest_tip`` returns — header, block
    certificate, index certificates and roots — plus the stream
    position (``seq``, dense per hub) and the virtual-clock publish
    time (for the fanout-latency histogram).  Self-verifying: the
    subscriber runs the standard certificate checks before adopting.
    """

    seq: int
    published_at_ms: float
    header: BlockHeader
    certificate: Certificate
    index_certificates: dict[str, Certificate] = field(default_factory=dict)
    index_roots: dict[str, Digest] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class SubscribeReply:
    """What ``hub.subscribe`` returns: where the stream currently is."""

    latest_seq: int
    lease_ms: float


@dataclass(frozen=True, slots=True)
class HeartbeatReply:
    """What ``hub.heartbeat`` returns.  ``subscribed=False`` means the
    hub does not know this subscriber (hub restart, or the lease
    expired and it was reaped) — re-subscribe and resync."""

    latest_seq: int
    subscribed: bool
    lagged: bool


@dataclass(frozen=True, slots=True)
class SyncReply:
    """What ``hub.sync_range`` returns: every retained announcement at
    or after ``from_seq``, in order.  ``oldest_retained`` tells the
    caller whether the range was truncated by bounded retention —
    harmless for a superlight client, which only needs the newest
    announcement to be fully synced."""

    announcements: tuple[TipAnnouncement, ...]
    latest_seq: int
    oldest_retained: int


class SubscriberState:
    """Everything the hub tracks for one subscriber."""

    def __init__(
        self, name: str, acked_seq: int, lease_expires_ms: float
    ) -> None:
        self.name = name
        #: Highest cumulatively acked sequence number.
        self.acked_seq = acked_seq
        #: Sequence numbers pushed but not yet acked.
        self.inflight: set[int] = set()
        #: Sequence numbers waiting for window space (bounded).
        self.outbox: deque[int] = deque()
        self.lagged = False
        self.lease_expires_ms = lease_expires_ms
        self.delivered = 0
        self.dropped_oldest = 0
        self.skipped_while_lagged = 0
        self.retransmits = 0

    @property
    def outbox_depth(self) -> int:
        return len(self.outbox)


class SubscriptionHub:
    """Fan certified-tip announcements out to subscribed clients.

    Construct standalone (``SubscriptionHub(bus, "hub")``) or mounted
    on an existing endpoint (``SubscriptionHub(server=service.server)``
    — e.g. the :class:`~repro.core.issuer.IssuerService` endpoint, so
    one name serves both pulls and the stream); see :meth:`embedded`
    for the gateway-side convenience.

    Wire an issuer in with :meth:`attach`: every block it certifies is
    published automatically.  ``outbox_limit`` bounds each subscriber's
    queued backlog, ``window`` bounds unacked in-flight pushes, and
    ``history_limit`` bounds the announcement history ``sync_range``
    serves catch-ups from.
    """

    #: RPC method names (prefixed so the hub can share an RpcServer
    #: with another service without clobbering its methods).
    SUBSCRIBE = "hub.subscribe"
    UNSUBSCRIBE = "hub.unsubscribe"
    HEARTBEAT = "hub.heartbeat"
    SYNC_RANGE = "hub.sync_range"

    def __init__(
        self,
        bus: MessageBus | None = None,
        name: str = "hub",
        *,
        server: RpcServer | None = None,
        outbox_limit: int = 8,
        window: int = 4,
        history_limit: int = 64,
        lease_ms: float = 30_000.0,
    ) -> None:
        if (bus is None) == (server is None):
            raise ValueError("pass exactly one of bus (standalone) or server")
        if outbox_limit < 1 or window < 1 or history_limit < 1:
            raise ValueError("outbox_limit, window, history_limit must be >= 1")
        self.server = server if server is not None else RpcServer(bus, name)
        self.bus = self.server.bus
        self.name = self.server.name
        self.outbox_limit = outbox_limit
        self.window = window
        self.history_limit = history_limit
        self.lease_ms = lease_ms
        self.seq = 0
        self._history: OrderedDict[int, TipAnnouncement] = OrderedDict()
        self.subscribers: dict[str, SubscriberState] = {}
        self._attached: list[tuple[object, object]] = []
        self.published = 0
        self.reaped = 0
        self.resyncs = 0
        self.server.register(self.SUBSCRIBE, self._subscribe)
        self.server.register(self.UNSUBSCRIBE, self._unsubscribe)
        self.server.register(self.HEARTBEAT, self._heartbeat)
        self.server.register(self.SYNC_RANGE, self._sync_range)
        self.server.node.on(ack_topic(self.name), self._on_ack)

    @classmethod
    def embedded(cls, host: object, **kwargs: object) -> "SubscriptionHub":
        """Mount a hub beside an existing component.

        ``host`` may be anything with an ``.server`` RpcServer (an
        :class:`~repro.core.issuer.IssuerService` or
        :class:`~repro.query.provider.QueryService` — the hub shares
        that endpoint) or a :class:`~repro.net.gateway.QueryGateway`
        (which is a pure RPC client, so the hub gets a sibling endpoint
        named ``<gateway>.hub`` on the same bus).
        """
        server = getattr(host, "server", None)
        if isinstance(server, RpcServer):
            return cls(server=server, **kwargs)
        rpc = getattr(host, "rpc", None)
        if rpc is not None and getattr(host, "replicas", None) is not None:
            return cls(rpc.bus, f"{rpc.name}.hub", **kwargs)
        raise ValueError(
            f"cannot embed a hub in {type(host).__name__}: expected an "
            "object with an RpcServer or a QueryGateway"
        )

    # -- issuer wiring -------------------------------------------------------

    def attach(self, issuer: object, *, announce_existing: bool = False) -> None:
        """Publish every block ``issuer`` certifies from now on.

        ``issuer`` is a :class:`~repro.core.issuer.CertificateIssuer`
        (or a :class:`~repro.core.recovery.DurableIssuer` wrapping
        one).  The stream position resumes from the issuer's certified
        count, so a hub restarted against the same durable issuer
        continues the sequence instead of rewinding it.  With
        ``announce_existing`` the already-certified suffix is loaded
        into the catch-up history (nothing is pushed — subscribers pull
        it via ``sync_range``).
        """
        certified = list(getattr(issuer, "certified", ()))
        if len(certified) > self.seq:
            if announce_existing:
                for entry in certified[self.seq:]:
                    if entry.certificate is None:
                        self.seq += 1  # keep seq == certified count
                        continue
                    self.seq += 1
                    self._retain(self._announce(entry, self.seq))
            else:
                self.seq = len(certified)
        hooks = getattr(issuer, "on_certified", None)
        if hooks is None:
            raise ConfigError(
                f"{type(issuer).__name__} has no on_certified hook to attach to"
            )
        hooks.append(self.publish)
        self._attached.append((issuer, self.publish))

    def detach(self) -> None:
        """Stop publishing for every attached issuer."""
        for issuer, hook in self._attached:
            hooks = getattr(issuer, "on_certified", [])
            if hook in hooks:
                hooks.remove(hook)
        self._attached.clear()

    def _announce(self, certified: object, seq: int) -> TipAnnouncement:
        """Build the announcement for a CertifiedBlock or CertifiedTip."""
        header = getattr(certified, "header", None)
        if header is None:
            header = certified.block.header
        return TipAnnouncement(
            seq=seq,
            published_at_ms=self.bus.clock_ms,
            header=header,
            certificate=certified.certificate,
            index_certificates=dict(certified.index_certificates),
            index_roots=dict(certified.index_roots),
        )

    # -- publishing ----------------------------------------------------------

    def publish(self, certified: object) -> TipAnnouncement | None:
        """Announce one newly certified block to every live subscriber.

        Accepts a :class:`~repro.core.issuer.CertifiedBlock` or
        :class:`~repro.core.issuer.CertifiedTip`.  An augmented-only
        block (no hierarchical certificate) still consumes a sequence
        number — the stream position mirrors the issuer's certified
        count — but nothing is pushed for it.
        """
        crashpoint("pubsub.publish.pre")
        self.seq += 1
        if certified.certificate is None:
            return None
        announcement = self._announce(certified, self.seq)
        self._retain(announcement)
        self.published += 1
        self._reap_expired()
        for state in list(self.subscribers.values()):
            self._enqueue(state, announcement.seq)
        if obs.enabled():
            obs.inc("pubsub.published")
            obs.set_gauge("pubsub.subscribers", len(self.subscribers))
        crashpoint("pubsub.publish.post")
        return announcement

    def _retain(self, announcement: TipAnnouncement) -> None:
        self._history[announcement.seq] = announcement
        while len(self._history) > self.history_limit:
            self._history.popitem(last=False)

    def _oldest_retained(self) -> int:
        if not self._history:
            return self.seq + 1
        return next(iter(self._history))

    # -- per-subscriber delivery ---------------------------------------------

    def _enqueue(self, state: SubscriberState, seq: int) -> None:
        if state.lagged:
            state.skipped_while_lagged += 1
            return
        state.outbox.append(seq)
        if len(state.outbox) > self.outbox_limit:
            dropped = 0
            while len(state.outbox) > self.outbox_limit:
                state.outbox.popleft()
                dropped += 1
            state.dropped_oldest += dropped
            state.lagged = True
            obs.inc("pubsub.lags")
            obs.inc("pubsub.dropped_oldest", dropped)
            self._send(state.name, LagNotice(latest_seq=self.seq, dropped=dropped))
            return
        self._pump(state)
        obs.set_gauge(f"pubsub.outbox_depth.{state.name}", state.outbox_depth)

    def _pump(self, state: SubscriberState) -> None:
        """Push queued announcements while the ack window has room."""
        while (
            not state.lagged
            and state.outbox
            and len(state.inflight) < self.window
        ):
            seq = state.outbox.popleft()
            announcement = self._history.get(seq)
            if announcement is None:
                # Retention already trimmed it; the subscriber will see
                # the gap and resync.
                state.dropped_oldest += 1
                continue
            crashpoint("pubsub.deliver.pre")
            if not self._send(
                state.name, PushEnvelope(payload=wire.encode(announcement))
            ):
                return
            state.inflight.add(seq)
            state.delivered += 1
            obs.inc("pubsub.deliveries")

    def _send(self, subscriber: str, message: object) -> bool:
        try:
            self.bus.send(
                self.name, subscriber, push_topic(subscriber), message
            )
        except ReproError:
            # The subscriber never joined (or left) the bus: reap it.
            self.subscribers.pop(subscriber, None)
            self.reaped += 1
            obs.inc("pubsub.reaped")
            return False
        return True

    def _apply_ack(self, state: SubscriberState, seq: int) -> None:
        if seq > state.acked_seq:
            state.acked_seq = seq
        state.inflight = {s for s in state.inflight if s > seq}
        self._renew(state)
        self._pump(state)
        obs.set_gauge(f"pubsub.outbox_depth.{state.name}", state.outbox_depth)

    def _on_ack(self, message: object) -> None:
        if not isinstance(message, StreamAck):
            return
        state = self.subscribers.get(message.subscriber)
        if state is None:
            return  # reaped, or acked after unsubscribe — stale, ignore
        obs.inc("pubsub.acks")
        self._apply_ack(state, message.seq)

    # -- leases --------------------------------------------------------------

    def _renew(self, state: SubscriberState) -> None:
        state.lease_expires_ms = self.bus.clock_ms + self.lease_ms

    def _reap_expired(self) -> None:
        now = self.bus.clock_ms
        expired = [
            name
            for name, state in self.subscribers.items()
            if state.lease_expires_ms < now
        ]
        for name in expired:
            del self.subscribers[name]
            self.reaped += 1
            obs.inc("pubsub.reaped")

    # -- RPC handlers --------------------------------------------------------

    def _subscribe(self, subscriber: object) -> SubscribeReply:
        if not isinstance(subscriber, str) or not subscriber:
            raise ServiceUnavailableError("subscribe takes the subscriber name")
        state = SubscriberState(
            subscriber,
            acked_seq=self.seq,
            lease_expires_ms=self.bus.clock_ms + self.lease_ms,
        )
        self.subscribers[subscriber] = state
        obs.inc("pubsub.subscribes")
        obs.set_gauge("pubsub.subscribers", len(self.subscribers))
        return SubscribeReply(latest_seq=self.seq, lease_ms=self.lease_ms)

    def _unsubscribe(self, subscriber: object) -> bool:
        removed = self.subscribers.pop(subscriber, None) is not None
        obs.set_gauge("pubsub.subscribers", len(self.subscribers))
        return removed

    def _heartbeat(self, argument: object) -> HeartbeatReply:
        if (
            not isinstance(argument, tuple)
            or len(argument) != 2
            or not isinstance(argument[0], str)
            or not isinstance(argument[1], int)
        ):
            raise ServiceUnavailableError(
                "heartbeat takes (subscriber, acked_seq)"
            )
        name, acked_seq = argument
        state = self.subscribers.get(name)
        if state is None:
            return HeartbeatReply(
                latest_seq=self.seq, subscribed=False, lagged=False
            )
        # Unacked in-flight pushes were lost (the subscriber is telling
        # us where it really is): requeue them for retransmission.
        lost = sorted(s for s in state.inflight if s > acked_seq)
        if lost:
            state.retransmits += len(lost)
            obs.inc("pubsub.retransmits", len(lost))
            for seq in reversed(lost):
                state.outbox.appendleft(seq)
        state.inflight.clear()
        self._apply_ack(state, acked_seq)
        return HeartbeatReply(
            latest_seq=self.seq, subscribed=True, lagged=state.lagged
        )

    def _sync_range(self, argument: object) -> SyncReply:
        """Serve the catch-up pull; clears the caller's lag state.

        ``argument`` is ``(subscriber | None, from_seq)``; a bare int
        is accepted for anonymous pulls.
        """
        if isinstance(argument, int):
            name, from_seq = None, argument
        elif (
            isinstance(argument, tuple)
            and len(argument) == 2
            and isinstance(argument[1], int)
        ):
            name, from_seq = argument
        else:
            raise ServiceUnavailableError(
                "sync_range takes (subscriber, from_seq) or from_seq"
            )
        announcements = tuple(
            announcement
            for seq, announcement in self._history.items()
            if seq >= from_seq
        )
        if name is not None:
            state = self.subscribers.get(name)
            if state is not None:
                # The reply brings the caller to the hub's latest seq;
                # reset its stream state and resume pushing from here.
                state.outbox.clear()
                state.inflight.clear()
                state.lagged = False
                self._apply_ack(state, self.seq)
            self.resyncs += 1
            obs.inc("pubsub.resyncs")
        return SyncReply(
            announcements=announcements,
            latest_seq=self.seq,
            oldest_retained=self._oldest_retained(),
        )
