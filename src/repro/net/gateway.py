"""Load-balanced gateway over a fleet of QueryService replicas.

DCert's core economy — certificates make any answer self-certifying on
the client — means the serving side replicates freely: no replica needs
to be trusted, so the only questions a serving tier has to answer are
*which replica* (load balancing) and *is it alive* (health).  This
module supplies both on the deterministic virtual-clock bus:

* **Balancing policies** — :class:`RoundRobin`, :class:`LeastOutstanding`
  and :class:`SeededRandom`, behind one ``pick(candidates)`` interface
  (:func:`make_balancer` resolves a policy by name for CLI/config use).
* **Health tracking** — :class:`ReplicaState` counts consecutive
  failures; past :class:`HealthPolicy.failure_threshold` the replica
  leaves the rotation and is re-admitted only through bounded-backoff
  *probes*: a due probe routes one real request at the suspect, success
  restores it, failure pushes the next probe further out.  This is
  driven purely by observed RPC behaviour, so anything the fault layer
  does (drops, delays, a supervisor pausing a crashed endpoint) shows
  up as failures and anything a supervisor restores shows up as a probe
  success.
* **Failover with re-verification** — when a call lands on a different
  replica than the previous one, the gateway first invokes the caller's
  ``verify_switch`` hook (the superlight client re-checks the new
  replica's index roots against its certified ones).  A replica that
  fails verification is treated exactly like a dead one: marked
  unhealthy and routed around.

Per-replica bookkeeping is bounded: the in-flight map is capped at
``outstanding_limit`` entries (oldest evicted), the same discipline as
``NetworkNode.received``, so week-long chaos runs cannot grow memory.

:meth:`QueryGateway.call` is the sequential path (one request, bounded
failover).  :meth:`QueryGateway.call_many` is the pipelined path: it
keeps every eligible replica's pipe full and lets the fleet drain a
burst concurrently — with the :class:`~repro.net.rpc.RpcServer`
busy-worker model, M queries over N replicas complete in ~M/N service
times, which is the scaling curve ``benchmarks/test_fleet_scaling.py``
measures.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.errors import (
    ReproError,
    ResponseIntegrityError,
    RpcTimeoutError,
    ServiceUnavailableError,
)
from repro.net.bus import MessageBus
from repro.net.rpc import RetryPolicy, RpcClient


@dataclass(frozen=True, slots=True)
class HealthPolicy:
    """When a replica leaves the rotation and how probing re-admits it."""

    #: Consecutive failures that eject a replica from the rotation.
    failure_threshold: int = 2
    #: Backoff schedule between probes of an unhealthy replica.
    probe_base_ms: float = 200.0
    probe_factor: float = 2.0
    probe_max_ms: float = 5_000.0

    def probe_delay_ms(self, attempt: int) -> float:
        """Delay before the ``attempt``-th probe (0-based)."""
        return min(
            self.probe_base_ms * self.probe_factor**attempt,
            self.probe_max_ms,
        )


class ReplicaState:
    """Everything the gateway knows about one replica endpoint."""

    def __init__(self, name: str, *, outstanding_limit: int = 256) -> None:
        self.name = name
        self.healthy = True
        self.consecutive_failures = 0
        self.probe_attempt = 0
        self.next_probe_ms = 0.0
        #: request_id -> dispatch virtual time; bounded like
        #: ``NetworkNode.received`` so chaos runs cannot grow memory.
        self.inflight: OrderedDict[int, float] = OrderedDict()
        self.outstanding_limit = outstanding_limit
        self.dispatched = 0
        self.answered = 0
        self.failures = 0

    @property
    def outstanding(self) -> int:
        return len(self.inflight)

    def track(self, request_id: int, now_ms: float) -> None:
        self.dispatched += 1
        self.inflight[request_id] = now_ms
        while len(self.inflight) > self.outstanding_limit:
            self.inflight.popitem(last=False)

    def settle(self, request_id: int) -> None:
        self.inflight.pop(request_id, None)

    def eligible(self, now_ms: float) -> bool:
        """In rotation, or unhealthy with a probe due."""
        return self.healthy or now_ms >= self.next_probe_ms


# -- balancing policies -------------------------------------------------------


class RoundRobin:
    """Cycle through candidates in a stable order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def pick(self, candidates: Sequence[ReplicaState]) -> ReplicaState:
        choice = candidates[self._turn % len(candidates)]
        self._turn += 1
        return choice


class LeastOutstanding:
    """Prefer the replica with the fewest requests in flight."""

    name = "least-outstanding"

    def pick(self, candidates: Sequence[ReplicaState]) -> ReplicaState:
        return min(candidates, key=lambda state: state.outstanding)


class SeededRandom:
    """Uniform random choice from a deterministic seeded stream."""

    name = "seeded-random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, candidates: Sequence[ReplicaState]) -> ReplicaState:
        return self._rng.choice(list(candidates))


BALANCERS = {
    RoundRobin.name: RoundRobin,
    LeastOutstanding.name: LeastOutstanding,
    SeededRandom.name: SeededRandom,
}


def make_balancer(policy: str, *, seed: int = 0):
    """Resolve a balancing policy by name (CLI/config entry point)."""
    try:
        cls = BALANCERS[policy]
    except KeyError:
        known = ", ".join(sorted(BALANCERS))
        raise ValueError(
            f"unknown balancing policy {policy!r} (known: {known})"
        ) from None
    return cls(seed) if cls is SeededRandom else cls()


# -- the gateway --------------------------------------------------------------


class QueryGateway:
    """Routes calls across a replica fleet with health-aware failover.

    ``verify_switch(replica_name)`` — optional hook invoked before the
    first call to a replica the gateway was not previously using; it
    should raise (typically :class:`ResponseIntegrityError`) if the new
    replica cannot be verified, in which case the gateway marks it
    unhealthy and fails over again.  The superlight client uses this to
    re-check index roots against its certified ones on every switch.
    """

    def __init__(
        self,
        bus: MessageBus,
        name: str,
        replicas: Sequence[str],
        *,
        balancer: str | object = "round-robin",
        seed: int = 0,
        policy: RetryPolicy | None = None,
        health: HealthPolicy | None = None,
        verify_switch: Callable[[str], None] | None = None,
        outstanding_limit: int = 256,
    ) -> None:
        if not replicas:
            raise ValueError("a gateway needs at least one replica")
        self.bus = bus
        self.rpc = RpcClient(
            bus,
            name,
            policy
            or RetryPolicy(
                timeout_ms=250.0, max_attempts=1, backoff_base_ms=25.0
            ),
        )
        self.health = health or HealthPolicy()
        self.verify_switch = verify_switch
        self.replicas: dict[str, ReplicaState] = {
            replica: ReplicaState(
                replica, outstanding_limit=outstanding_limit
            )
            for replica in replicas
        }
        self.balancer = (
            make_balancer(balancer, seed=seed)
            if isinstance(balancer, str)
            else balancer
        )
        #: The replica the previous successful call used; a change
        #: triggers ``verify_switch``.
        self.current: str | None = None
        #: Replicas verified by ``verify_switch`` since the last
        #: :meth:`reset_verified` (certified roots advanced).
        self._verified: set[str] = set()
        self.failovers = 0
        self.switches = 0

    # -- health bookkeeping --------------------------------------------------

    def healthy_replicas(self) -> list[str]:
        return [s.name for s in self.replicas.values() if s.healthy]

    def _mark_success(self, state: ReplicaState) -> None:
        state.answered += 1
        state.consecutive_failures = 0
        if not state.healthy:
            state.healthy = True
            state.probe_attempt = 0
            obs.inc("gateway.replica_restored")
        obs.set_gauge("gateway.replicas_healthy", len(self.healthy_replicas()))

    def _mark_failure(self, state: ReplicaState) -> None:
        state.failures += 1
        state.consecutive_failures += 1
        if state.healthy:
            if state.consecutive_failures >= self.health.failure_threshold:
                state.healthy = False
                state.probe_attempt = 0
                state.next_probe_ms = (
                    self.bus.clock_ms + self.health.probe_delay_ms(0)
                )
                obs.inc("gateway.replica_ejected")
        else:
            # A failed probe: push the next one further out.
            state.probe_attempt += 1
            state.next_probe_ms = self.bus.clock_ms + self.health.probe_delay_ms(
                state.probe_attempt
            )
            obs.inc("gateway.probe_failures")
        obs.set_gauge("gateway.replicas_healthy", len(self.healthy_replicas()))

    def _candidates(self) -> list[ReplicaState]:
        now = self.bus.clock_ms
        return [s for s in self.replicas.values() if s.eligible(now)]

    def _wait_for_probe_window(self) -> bool:
        """No replica is eligible: advance time to the earliest probe.

        Returns False if there is nothing to wait for (cannot happen
        with a non-empty fleet, defensively handled anyway).
        """
        pending = [s.next_probe_ms for s in self.replicas.values() if not s.healthy]
        if not pending:
            return False
        # Deliver any in-flight traffic on the way to the probe window.
        self.bus.run_for(max(0.0, min(pending) - self.bus.clock_ms))
        return True

    # -- switch verification -------------------------------------------------

    def reset_verified(self) -> None:
        """Forget switch verifications (call when certified roots move)."""
        self._verified.clear()

    def _ensure_verified(self, state: ReplicaState) -> bool:
        """Run ``verify_switch`` if this replica needs (re-)verification.

        Returns True when the replica is safe to use.  A verification
        failure marks it unhealthy, exactly like a transport failure —
        an unverifiable replica and a dead one get the same treatment.
        """
        if self.verify_switch is None:
            return True
        if state.name == self.current or state.name in self._verified:
            return True
        try:
            self.verify_switch(state.name)
        except ReproError:
            obs.inc("gateway.switch_verify_failures")
            self._mark_failure(state)
            return False
        self._verified.add(state.name)
        self.switches += 1
        obs.inc("gateway.switches_verified")
        return True

    # -- the sequential path -------------------------------------------------

    def call_on(self, replica: str, method: str, argument: object = None):
        """One direct call to a named replica — no failover, no switch
        hook.  The switch-verification callback itself uses this."""
        return self.rpc.call(replica, method, argument)

    def call(
        self,
        method: str,
        argument: object = None,
        *,
        max_dispatches: int | None = None,
    ) -> object:
        """Call ``method`` on the fleet; fail over until a replica
        answers or the dispatch budget is spent.

        Raises the remote error unchanged when it is terminal (not
        retryable — a bad query is bad on every replica), and
        :class:`ServiceUnavailableError` when every candidate failed
        within the budget.
        """
        budget = max_dispatches or max(3, 2 * len(self.replicas))
        last_error: ReproError | None = None
        for _ in range(budget):
            candidates = self._candidates()
            if not candidates:
                if not self._wait_for_probe_window():
                    break
                candidates = self._candidates()
                if not candidates:
                    continue
            state = self.balancer.pick(candidates)
            if not self._ensure_verified(state):
                last_error = ResponseIntegrityError(
                    f"replica {state.name!r} failed switch verification"
                )
                continue
            probing = not state.healthy
            if probing:
                obs.inc("gateway.probes")
            try:
                result = self.rpc.call(state.name, method, argument)
            except (RpcTimeoutError, ResponseIntegrityError) as exc:
                last_error = exc
                self._mark_failure(state)
                self.failovers += 1
                obs.inc("gateway.failovers")
                continue
            except ReproError as exc:
                if exc.retryable:
                    last_error = exc
                    self._mark_failure(state)
                    self.failovers += 1
                    obs.inc("gateway.failovers")
                    continue
                # Terminal: retrying elsewhere cannot change the outcome.
                raise
            self._mark_success(state)
            self.current = state.name
            return result
        raise ServiceUnavailableError(
            f"no replica answered {method!r} within {budget} dispatches"
            + (f" (last: {last_error})" if last_error else "")
        )

    # -- the pipelined path --------------------------------------------------

    def call_many(
        self,
        method: str,
        arguments: Sequence[object],
        *,
        timeout_ms: float | None = None,
        max_dispatches_per_item: int = 4,
    ) -> list[object]:
        """Dispatch every argument concurrently across the fleet.

        Results come back in argument order.  Each item gets a bounded
        number of dispatches (failing over between replicas); a
        terminal remote error for any item is raised immediately.  With
        busy-worker replicas this is the path that turns N replicas
        into ~N× throughput.
        """
        timeout = timeout_ms or self.rpc.policy.timeout_ms
        results: list[object] = [None] * len(arguments)
        todo: list[tuple[int, int]] = [(i, 0) for i in range(len(arguments))]
        # request_id -> (item index, dispatch count, replica, deadline)
        pending: dict[int, tuple[int, int, ReplicaState, float]] = {}
        done = 0
        while done < len(arguments):
            # Keep the pipes full: dispatch everything dispatchable.
            still_waiting: list[tuple[int, int]] = []
            for item, dispatches in todo:
                if dispatches >= max_dispatches_per_item:
                    raise ServiceUnavailableError(
                        f"item {item} of {method!r} failed "
                        f"{max_dispatches_per_item} dispatches"
                    )
                candidates = self._candidates()
                if not candidates:
                    still_waiting.append((item, dispatches))
                    continue
                state = self.balancer.pick(candidates)
                if not self._ensure_verified(state):
                    still_waiting.append((item, dispatches + 1))
                    continue
                if not state.healthy:
                    obs.inc("gateway.probes")
                request_id = self.rpc.begin(
                    state.name, method, arguments[item]
                )
                state.track(request_id, self.bus.clock_ms)
                pending[request_id] = (
                    item,
                    dispatches + 1,
                    state,
                    self.bus.clock_ms + timeout,
                )
            todo = still_waiting
            if not pending:
                if todo and not self._wait_for_probe_window():
                    raise ServiceUnavailableError(
                        f"no replica available for {method!r}"
                    )
                continue
            # Drive the bus toward the earliest in-flight deadline, then
            # settle whatever arrived and expire whatever did not.
            horizon = min(entry[3] for entry in pending.values())
            progressed = False
            while self.bus.step(horizon):
                progressed = True
                if any(self.rpc.has_response(rid) for rid in pending):
                    break
            arrived = [
                rid for rid in pending if self.rpc.has_response(rid)
            ]
            for rid in arrived:
                item, dispatches, state, _ = pending.pop(rid)
                state.settle(rid)
                response = self.rpc.take(rid)
                try:
                    result = self.rpc.resolve(
                        response, target=state.name, method=method
                    )
                except (RpcTimeoutError, ResponseIntegrityError) as exc:
                    self._mark_failure(state)
                    self.failovers += 1
                    obs.inc("gateway.failovers")
                    todo.append((item, dispatches))
                    continue
                except ReproError as exc:
                    if exc.retryable:
                        self._mark_failure(state)
                        self.failovers += 1
                        obs.inc("gateway.failovers")
                        todo.append((item, dispatches))
                        continue
                    for other in pending:
                        self.rpc.abandon(other)
                    raise
                self._mark_success(state)
                self.current = state.name
                results[item] = result
                done += 1
            if arrived:
                continue
            if not progressed:
                self.bus.wait_until(horizon)
            expired = [
                rid
                for rid, entry in pending.items()
                if self.bus.clock_ms >= entry[3]
            ]
            for rid in expired:
                item, dispatches, state, _ = pending.pop(rid)
                state.settle(rid)
                self.rpc.abandon(rid)
                self.rpc.timeouts += 1
                obs.inc("rpc.client.timeouts")
                self._mark_failure(state)
                self.failovers += 1
                obs.inc("gateway.failovers")
                todo.append((item, dispatches))
        return results
