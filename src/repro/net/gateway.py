"""Load-balanced gateway over a fleet of QueryService replicas.

DCert's core economy — certificates make any answer self-certifying on
the client — means the serving side replicates freely: no replica needs
to be trusted, so the only questions a serving tier has to answer are
*which replica* (load balancing) and *is it alive* (health).  This
module supplies both on the deterministic virtual-clock bus:

* **Balancing policies** — :class:`RoundRobin`, :class:`LeastOutstanding`
  and :class:`SeededRandom`, behind one ``pick(candidates)`` interface
  (:func:`make_balancer` resolves a policy by name for CLI/config use).
* **Health tracking** — :class:`ReplicaState` counts consecutive
  failures; past :class:`HealthPolicy.failure_threshold` the replica
  leaves the rotation and is re-admitted only through bounded-backoff
  *probes*: a due probe routes one real request at the suspect, success
  restores it, failure pushes the next probe further out.  This is
  driven purely by observed RPC behaviour, so anything the fault layer
  does (drops, delays, a supervisor pausing a crashed endpoint) shows
  up as failures and anything a supervisor restores shows up as a probe
  success.
* **Failover with re-verification** — when a call lands on a different
  replica than the previous one, the gateway first invokes the caller's
  ``verify_switch`` hook (the superlight client re-checks the new
  replica's index roots against its certified ones).  A replica that
  fails verification is treated exactly like a dead one: marked
  unhealthy and routed around.

Per-replica bookkeeping is bounded: the in-flight map is capped at
``outstanding_limit`` entries (oldest evicted), the same discipline as
``NetworkNode.received``, so week-long chaos runs cannot grow memory.

:meth:`QueryGateway.call` is the sequential path (one request, bounded
failover).  :meth:`QueryGateway.call_many` is the pipelined path: it
keeps every eligible replica's pipe full and lets the fleet drain a
burst concurrently — with the :class:`~repro.net.rpc.RpcServer`
busy-worker model, M queries over N replicas complete in ~M/N service
times, which is the scaling curve ``benchmarks/test_fleet_scaling.py``
measures.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from repro import obs
from repro.errors import (
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ResponseIntegrityError,
    RpcTimeoutError,
    ServiceUnavailableError,
)
from repro.net.bus import MessageBus
from repro.net.resilience import (
    NO_DEADLINE,
    CircuitBreaker,
    CircuitBreakerPolicy,
    HedgePolicy,
    clamp_retry_after,
    sanitize_deadline,
    shrink_deadline,
)
from repro.net.rpc import RetryPolicy, RpcClient


@dataclass(frozen=True, slots=True)
class HealthPolicy:
    """When a replica leaves the rotation and how probing re-admits it."""

    #: Consecutive failures that eject a replica from the rotation.
    failure_threshold: int = 2
    #: Backoff schedule between probes of an unhealthy replica.
    probe_base_ms: float = 200.0
    probe_factor: float = 2.0
    probe_max_ms: float = 5_000.0

    def probe_delay_ms(self, attempt: int) -> float:
        """Delay before the ``attempt``-th probe (0-based)."""
        return min(
            self.probe_base_ms * self.probe_factor**attempt,
            self.probe_max_ms,
        )


class ReplicaState:
    """Everything the gateway knows about one replica endpoint."""

    def __init__(
        self,
        name: str,
        *,
        outstanding_limit: int = 256,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.name = name
        self.healthy = True
        self.consecutive_failures = 0
        self.probe_attempt = 0
        self.next_probe_ms = 0.0
        #: Optional per-endpoint circuit breaker.  Health answers "is
        #: it alive"; the breaker answers "should it get traffic now" —
        #: in particular it absorbs OVERLOADED backpressure, which is
        #: not a liveness failure and must not eject the replica.
        self.breaker = breaker
        #: request_id -> dispatch virtual time; bounded like
        #: ``NetworkNode.received`` so chaos runs cannot grow memory.
        self.inflight: OrderedDict[int, float] = OrderedDict()
        self.outstanding_limit = outstanding_limit
        self.dispatched = 0
        self.answered = 0
        self.failures = 0
        self.overloads = 0

    @property
    def outstanding(self) -> int:
        return len(self.inflight)

    def track(self, request_id: int, now_ms: float) -> None:
        self.dispatched += 1
        self.inflight[request_id] = now_ms
        while len(self.inflight) > self.outstanding_limit:
            self.inflight.popitem(last=False)

    def settle(self, request_id: int) -> None:
        self.inflight.pop(request_id, None)

    def eligible(self, now_ms: float) -> bool:
        """In rotation (or probing), and not breaker-blocked."""
        in_rotation = self.healthy or now_ms >= self.next_probe_ms
        if not in_rotation:
            return False
        return self.breaker is None or self.breaker.permits(now_ms)


# -- balancing policies -------------------------------------------------------


class RoundRobin:
    """Cycle through candidates in a stable order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._turn = 0

    def pick(self, candidates: Sequence[ReplicaState]) -> ReplicaState:
        choice = candidates[self._turn % len(candidates)]
        self._turn += 1
        return choice


class LeastOutstanding:
    """Prefer the replica with the fewest requests in flight."""

    name = "least-outstanding"

    def pick(self, candidates: Sequence[ReplicaState]) -> ReplicaState:
        return min(candidates, key=lambda state: state.outstanding)


class SeededRandom:
    """Uniform random choice from a deterministic seeded stream."""

    name = "seeded-random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, candidates: Sequence[ReplicaState]) -> ReplicaState:
        return self._rng.choice(list(candidates))


BALANCERS = {
    RoundRobin.name: RoundRobin,
    LeastOutstanding.name: LeastOutstanding,
    SeededRandom.name: SeededRandom,
}


def make_balancer(policy: str, *, seed: int = 0):
    """Resolve a balancing policy by name (CLI/config entry point)."""
    try:
        cls = BALANCERS[policy]
    except KeyError:
        known = ", ".join(sorted(BALANCERS))
        raise ValueError(
            f"unknown balancing policy {policy!r} (known: {known})"
        ) from None
    return cls(seed) if cls is SeededRandom else cls()


# -- the gateway --------------------------------------------------------------


class QueryGateway:
    """Routes calls across a replica fleet with health-aware failover.

    ``verify_switch(replica_name)`` — optional hook invoked before the
    first call to a replica the gateway was not previously using; it
    should raise (typically :class:`ResponseIntegrityError`) if the new
    replica cannot be verified, in which case the gateway marks it
    unhealthy and fails over again.  The superlight client uses this to
    re-check index roots against its certified ones on every switch.
    """

    def __init__(
        self,
        bus: MessageBus,
        name: str,
        replicas: Sequence[str],
        *,
        balancer: str | object = "round-robin",
        seed: int = 0,
        policy: RetryPolicy | None = None,
        health: HealthPolicy | None = None,
        verify_switch: Callable[[str], None] | None = None,
        outstanding_limit: int = 256,
        breaker: CircuitBreakerPolicy | None = None,
        hedge: HedgePolicy | None = None,
        hop_margin_ms: float = 10.0,
    ) -> None:
        if not replicas:
            raise ValueError("a gateway needs at least one replica")
        self.bus = bus
        self.rpc = RpcClient(
            bus,
            name,
            policy
            or RetryPolicy(
                timeout_ms=250.0, max_attempts=1, backoff_base_ms=25.0
            ),
            seed=seed,
        )
        self.health = health or HealthPolicy()
        self.verify_switch = verify_switch
        #: None disables per-replica breakers (the pre-resilience
        #: behaviour); a policy arms one breaker per replica, each with
        #: its own seeded jitter stream.
        self.breaker_policy = breaker
        self.hedge = hedge or HedgePolicy(enabled=False)
        #: Budget surrendered per hop when propagating a deadline, so
        #: the replica's reply can still travel back before *our*
        #: caller's deadline.
        self.hop_margin_ms = hop_margin_ms
        self.replicas: dict[str, ReplicaState] = {
            replica: ReplicaState(
                replica,
                outstanding_limit=outstanding_limit,
                breaker=(
                    CircuitBreaker(breaker, seed=f"{name}:{replica}")
                    if breaker is not None
                    else None
                ),
            )
            for replica in replicas
        }
        self.balancer = (
            make_balancer(balancer, seed=seed)
            if isinstance(balancer, str)
            else balancer
        )
        #: The replica the previous successful call used; a change
        #: triggers ``verify_switch``.
        self.current: str | None = None
        #: Replicas verified by ``verify_switch`` since the last
        #: :meth:`reset_verified` (certified roots advanced).
        self._verified: set[str] = set()
        self.failovers = 0
        self.switches = 0
        self.hedges = 0
        self.hedge_wins = 0

    # -- health bookkeeping --------------------------------------------------

    def healthy_replicas(self) -> list[str]:
        return [s.name for s in self.replicas.values() if s.healthy]

    def breaker_trips(self) -> int:
        """Total breaker open-transitions across the fleet (for the
        demo/metrics surface)."""
        return sum(
            s.breaker.trips for s in self.replicas.values() if s.breaker
        )

    def _mark_success(self, state: ReplicaState) -> None:
        state.answered += 1
        state.consecutive_failures = 0
        if state.breaker is not None:
            state.breaker.record_success()
        if not state.healthy:
            state.healthy = True
            state.probe_attempt = 0
            obs.inc("gateway.replica_restored")
        obs.set_gauge("gateway.replicas_healthy", len(self.healthy_replicas()))

    def _mark_failure(
        self, state: ReplicaState, *, overload: OverloadedError | None = None
    ) -> None:
        state.failures += 1
        if state.breaker is not None:
            was_open = state.breaker.state == CircuitBreaker.OPEN
            state.breaker.record_failure(
                self.bus.clock_ms,
                overload=overload is not None,
                retry_after_ms=(
                    clamp_retry_after(overload.retry_after_ms)
                    if overload is not None
                    else 0.0
                ),
            )
            if not was_open and state.breaker.state == CircuitBreaker.OPEN:
                obs.inc("resilience.breaker.trips")
            if overload is not None:
                # Saturation, not death: the breaker owns backpressure;
                # the liveness ejection counter is left alone so an
                # overloaded replica is not misdiagnosed as dead.
                state.overloads += 1
                obs.inc("resilience.gateway.overloads")
                return
        state.consecutive_failures += 1
        if state.healthy:
            if state.consecutive_failures >= self.health.failure_threshold:
                state.healthy = False
                state.probe_attempt = 0
                state.next_probe_ms = (
                    self.bus.clock_ms + self.health.probe_delay_ms(0)
                )
                obs.inc("gateway.replica_ejected")
        else:
            # A failed probe: push the next one further out.
            state.probe_attempt += 1
            state.next_probe_ms = self.bus.clock_ms + self.health.probe_delay_ms(
                state.probe_attempt
            )
            obs.inc("gateway.probe_failures")
        obs.set_gauge("gateway.replicas_healthy", len(self.healthy_replicas()))

    def _candidates(self) -> list[ReplicaState]:
        now = self.bus.clock_ms
        return [s for s in self.replicas.values() if s.eligible(now)]

    def _wait_for_probe_window(self) -> bool:
        """No replica is eligible: advance time to the earliest probe.

        Returns False if there is nothing to wait for (cannot happen
        with a non-empty fleet, defensively handled anyway).
        """
        pending = [s.next_probe_ms for s in self.replicas.values() if not s.healthy]
        pending += [
            s.breaker.reopen_at_ms
            for s in self.replicas.values()
            if s.healthy
            and s.breaker is not None
            and s.breaker.reopen_at_ms is not None
        ]
        if not pending:
            return False
        # Deliver any in-flight traffic on the way to the probe window.
        self.bus.run_for(max(0.0, min(pending) - self.bus.clock_ms))
        return True

    # -- switch verification -------------------------------------------------

    def reset_verified(self) -> None:
        """Forget switch verifications (call when certified roots move)."""
        self._verified.clear()

    def _ensure_verified(self, state: ReplicaState) -> bool:
        """Run ``verify_switch`` if this replica needs (re-)verification.

        Returns True when the replica is safe to use.  A verification
        failure marks it unhealthy, exactly like a transport failure —
        an unverifiable replica and a dead one get the same treatment.
        """
        if self.verify_switch is None:
            return True
        if state.name == self.current or state.name in self._verified:
            return True
        try:
            self.verify_switch(state.name)
        except ReproError:
            obs.inc("gateway.switch_verify_failures")
            self._mark_failure(state)
            return False
        self._verified.add(state.name)
        self.switches += 1
        obs.inc("gateway.switches_verified")
        return True

    # -- the sequential path -------------------------------------------------

    def call_on(self, replica: str, method: str, argument: object = None):
        """One direct call to a named replica — no failover, no switch
        hook.  The switch-verification callback itself uses this."""
        return self.rpc.call(replica, method, argument)

    def call(
        self,
        method: str,
        argument: object = None,
        *,
        max_dispatches: int | None = None,
        deadline_ms: float = NO_DEADLINE,
    ) -> object:
        """Call ``method`` on the fleet; fail over until a replica
        answers or the dispatch budget is spent.

        ``deadline_ms`` is the caller's absolute virtual-clock budget:
        it is propagated (shrunk by :attr:`hop_margin_ms`) to every
        replica dispatch, and once spent the call raises
        :class:`~repro.errors.DeadlineExceededError` instead of burning
        further dispatches.

        Raises the remote error unchanged when it is terminal (not
        retryable — a bad query is bad on every replica), and
        :class:`ServiceUnavailableError` when every candidate failed
        within the budget.
        """
        budget = max_dispatches or max(3, 2 * len(self.replicas))
        deadline = sanitize_deadline(deadline_ms)
        last_error: ReproError | None = None
        for _ in range(budget):
            if deadline and self.bus.clock_ms >= deadline:
                raise DeadlineExceededError(
                    f"deadline for {method!r} expired during failover"
                ) from last_error
            candidates = self._candidates()
            if not candidates:
                if not self._wait_for_probe_window():
                    break
                candidates = self._candidates()
                if not candidates:
                    continue
            state = self.balancer.pick(candidates)
            if not self._ensure_verified(state):
                last_error = ResponseIntegrityError(
                    f"replica {state.name!r} failed switch verification"
                )
                continue
            probing = not state.healthy
            if probing:
                obs.inc("gateway.probes")
            try:
                return self._dispatch(state, method, argument, deadline)
            except OverloadedError as exc:
                last_error = exc
                self.failovers += 1
                obs.inc("gateway.failovers")
                continue
            except (RpcTimeoutError, ResponseIntegrityError) as exc:
                last_error = exc
                self.failovers += 1
                obs.inc("gateway.failovers")
                continue
            except DeadlineExceededError:
                # The budget is a property of the call: no other
                # replica can answer faster than time allows.
                raise
            except ReproError as exc:
                if exc.retryable:
                    last_error = exc
                    self.failovers += 1
                    obs.inc("gateway.failovers")
                    continue
                # Terminal: retrying elsewhere cannot change the outcome.
                raise
        raise ServiceUnavailableError(
            f"no replica answered {method!r} within {budget} dispatches"
            + (f" (last: {last_error})" if last_error else "")
        )

    def _dispatch(
        self,
        state: ReplicaState,
        method: str,
        argument: object,
        deadline: float,
    ) -> object:
        """One (possibly hedged) dispatch to ``state``.

        Owns all health/breaker marking for the dispatch — including
        the hedge case, where the answering replica may not be the one
        originally picked — and sets :attr:`current` on success.
        """
        hedge_delay = self.hedge.delay_ms(
            self.rpc.latency.get(state.name)
        )
        if hedge_delay is not None and len(self.replicas) > 1:
            return self._hedged_dispatch(
                state, method, argument, deadline, hedge_delay
            )
        if state.breaker is not None:
            state.breaker.on_dispatch(self.bus.clock_ms)
        started = self.bus.clock_ms
        downstream = shrink_deadline(deadline, self.hop_margin_ms)
        try:
            result = self.rpc.call(
                state.name, method, argument, deadline_ms=downstream
            )
        except OverloadedError as exc:
            self._mark_failure(state, overload=exc)
            raise
        except (RpcTimeoutError, ResponseIntegrityError):
            self._mark_failure(state)
            raise
        except ReproError as exc:
            if exc.retryable:
                self._mark_failure(state)
            raise
        self.rpc._track_latency(state.name, self.bus.clock_ms - started)
        self._mark_success(state)
        # repro: allow[VER01] call() ran _ensure_verified(state) before dispatching here
        self.current = state.name
        return result

    def _hedged_dispatch(
        self,
        primary: ReplicaState,
        method: str,
        argument: object,
        deadline: float,
        hedge_delay_ms: float,
    ) -> object:
        """Primary dispatch plus one hedged attempt at the observed
        tail: if the primary has not answered within ``hedge_delay_ms``
        (its own p90), send the same request to a *different* replica
        and take whichever response lands first, abandoning the loser.

        The loser is merely slow, not failed — it is abandoned without
        a health or breaker strike, so hedging never poisons the
        rotation.  Both timing out marks both and raises
        :class:`~repro.errors.RpcTimeoutError` for the failover loop.
        """
        started = self.bus.clock_ms
        downstream = shrink_deadline(deadline, self.hop_margin_ms)
        timeout_at = started + self.rpc.policy.timeout_ms
        if deadline:
            timeout_at = min(timeout_at, deadline)
        hedge_at = started + hedge_delay_ms
        if primary.breaker is not None:
            primary.breaker.on_dispatch(started)
        owners: dict[int, ReplicaState] = {}
        rid = self.rpc.begin(
            primary.name, method, argument, deadline_ms=downstream
        )
        primary.track(rid, started)
        owners[rid] = primary
        hedged = False
        winner_rid: int | None = None
        while True:
            for rid in owners:
                if self.rpc.has_response(rid):
                    winner_rid = rid
                    break
            if winner_rid is not None or self.bus.clock_ms >= timeout_at:
                break
            if not hedged and self.bus.clock_ms >= hedge_at:
                hedged = True
                other = self._hedge_candidate(primary)
                if other is not None:
                    self.hedges += 1
                    obs.inc("resilience.hedges")
                    if other.breaker is not None:
                        other.breaker.on_dispatch(self.bus.clock_ms)
                    hedge_rid = self.rpc.begin(
                        other.name, method, argument, deadline_ms=downstream
                    )
                    other.track(hedge_rid, self.bus.clock_ms)
                    owners[hedge_rid] = other
            horizon = timeout_at if hedged else min(timeout_at, hedge_at)
            if not self.bus.step(horizon):
                self.bus.wait_until(horizon)
        if winner_rid is None:
            for rid, state in owners.items():
                state.settle(rid)
                self.rpc.abandon(rid)
                self._mark_failure(state)
            self.rpc.timeouts += 1
            obs.inc("rpc.client.timeouts")
            raise RpcTimeoutError(
                f"no replica answered hedged {method!r} within "
                f"{timeout_at - started:.0f} ms"
            )
        winner = owners.pop(winner_rid)
        winner.settle(winner_rid)
        for rid, state in owners.items():  # abandon the slow loser(s)
            state.settle(rid)
            self.rpc.abandon(rid)
        response = self.rpc.take(winner_rid)
        self.rpc._track_latency(winner.name, self.bus.clock_ms - started)
        if winner is not primary:
            self.hedge_wins += 1
            obs.inc("resilience.hedge_wins")
        try:
            result = self.rpc.resolve(
                response, target=winner.name, method=method
            )
        except OverloadedError as exc:
            self._mark_failure(winner, overload=exc)
            raise
        except (RpcTimeoutError, ResponseIntegrityError):
            self._mark_failure(winner)
            raise
        except ReproError as exc:
            if exc.retryable:
                self._mark_failure(winner)
            raise
        self._mark_success(winner)
        # repro: allow[VER01] call() verified every hedge candidate before dispatching here
        self.current = winner.name
        return result

    def _hedge_candidate(self, primary: ReplicaState) -> ReplicaState | None:
        """An eligible, verified replica other than ``primary``."""
        now = self.bus.clock_ms
        for state in self.replicas.values():
            if state is primary or not state.eligible(now):
                continue
            if not state.healthy:
                continue  # don't spend a probe on a hedge
            if self._ensure_verified(state):
                return state
        return None

    # -- the pipelined path --------------------------------------------------

    def call_many(
        self,
        method: str,
        arguments: Sequence[object],
        *,
        timeout_ms: float | None = None,
        max_dispatches_per_item: int = 4,
        deadline_ms: float = NO_DEADLINE,
    ) -> list[object]:
        """Dispatch every argument concurrently across the fleet.

        Results come back in argument order.  Each item gets a bounded
        number of dispatches (failing over between replicas); a
        terminal remote error for any item is raised immediately.  With
        busy-worker replicas this is the path that turns N replicas
        into ~N× throughput.  ``deadline_ms`` (absolute) is propagated,
        shrunk one hop, to every dispatch.
        """
        timeout = timeout_ms or self.rpc.policy.timeout_ms
        deadline = sanitize_deadline(deadline_ms)
        downstream = shrink_deadline(deadline, self.hop_margin_ms)
        results: list[object] = [None] * len(arguments)
        todo: list[tuple[int, int]] = [(i, 0) for i in range(len(arguments))]
        # request_id -> (item index, dispatch count, replica, deadline)
        pending: dict[int, tuple[int, int, ReplicaState, float]] = {}
        done = 0
        while done < len(arguments):
            # Keep the pipes full: dispatch everything dispatchable.
            still_waiting: list[tuple[int, int]] = []
            for item, dispatches in todo:
                if dispatches >= max_dispatches_per_item:
                    raise ServiceUnavailableError(
                        f"item {item} of {method!r} failed "
                        f"{max_dispatches_per_item} dispatches"
                    )
                candidates = self._candidates()
                if not candidates:
                    still_waiting.append((item, dispatches))
                    continue
                state = self.balancer.pick(candidates)
                if not self._ensure_verified(state):
                    still_waiting.append((item, dispatches + 1))
                    continue
                if not state.healthy:
                    obs.inc("gateway.probes")
                if state.breaker is not None:
                    state.breaker.on_dispatch(self.bus.clock_ms)
                request_id = self.rpc.begin(
                    state.name, method, arguments[item], deadline_ms=downstream
                )
                state.track(request_id, self.bus.clock_ms)
                item_deadline = self.bus.clock_ms + timeout
                if deadline:
                    item_deadline = min(item_deadline, deadline)
                pending[request_id] = (
                    item,
                    dispatches + 1,
                    state,
                    item_deadline,
                )
            todo = still_waiting
            if not pending:
                if todo and not self._wait_for_probe_window():
                    raise ServiceUnavailableError(
                        f"no replica available for {method!r}"
                    )
                continue
            # Drive the bus toward the earliest in-flight deadline, then
            # settle whatever arrived and expire whatever did not.
            horizon = min(entry[3] for entry in pending.values())
            progressed = False
            while self.bus.step(horizon):
                progressed = True
                if any(self.rpc.has_response(rid) for rid in pending):
                    break
            arrived = [
                rid for rid in pending if self.rpc.has_response(rid)
            ]
            for rid in arrived:
                item, dispatches, state, _ = pending.pop(rid)
                state.settle(rid)
                response = self.rpc.take(rid)
                try:
                    result = self.rpc.resolve(
                        response, target=state.name, method=method
                    )
                except OverloadedError as exc:
                    self._mark_failure(state, overload=exc)
                    self.failovers += 1
                    obs.inc("gateway.failovers")
                    todo.append((item, dispatches))
                    continue
                except (RpcTimeoutError, ResponseIntegrityError):
                    self._mark_failure(state)
                    self.failovers += 1
                    obs.inc("gateway.failovers")
                    todo.append((item, dispatches))
                    continue
                except ReproError as exc:
                    if exc.retryable:
                        self._mark_failure(state)
                        self.failovers += 1
                        obs.inc("gateway.failovers")
                        todo.append((item, dispatches))
                        continue
                    for other in pending:
                        self.rpc.abandon(other)
                    raise
                self._mark_success(state)
                self.current = state.name
                results[item] = result
                done += 1
            if arrived:
                continue
            if not progressed:
                self.bus.wait_until(horizon)
            expired = [
                rid
                for rid, entry in pending.items()
                if self.bus.clock_ms >= entry[3]
            ]
            for rid in expired:
                item, dispatches, state, _ = pending.pop(rid)
                state.settle(rid)
                self.rpc.abandon(rid)
                self.rpc.timeouts += 1
                obs.inc("rpc.client.timeouts")
                self._mark_failure(state)
                self.failovers += 1
                obs.inc("gateway.failovers")
                todo.append((item, dispatches))
        return results
