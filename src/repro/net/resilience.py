"""Overload-resilience primitives: deadlines, admission control,
circuit breakers, latency tracking, and hedging policy.

DCert's economics invite a small certified serving tier to absorb
traffic from a huge fleet of superlight clients — which makes the tier's
*overload* behaviour part of the system's correctness story.  Without
backpressure, a demand spike turns static timeouts and synchronized
exponential retries into a retry storm that amplifies load on the
busy-worker replicas: the classic metastable failure mode.  This module
collects the deterministic (virtual-clock, seeded) building blocks the
RPC/gateway/client stacks compose into an end-to-end protection layer:

* **Deadline propagation** (:func:`sanitize_deadline`,
  :func:`shrink_deadline`, :func:`remaining_ms`) — every
  :class:`~repro.net.rpc.RpcRequest` can carry an absolute virtual-clock
  deadline; each hop hands its downstream a slightly smaller budget, and
  a server refuses to *start* work it cannot finish in time, so expired
  requests cost zero provider work.
* **Admission control** (:class:`AdmissionPolicy`) — a CoDel-style
  queue-*delay* threshold (not queue length alone) at the busy-worker
  server: when the predicted wait exceeds the target, the request is
  shed with a typed :class:`~repro.errors.OverloadedError` carrying a
  ``retry_after_ms`` hint, which clients honor (clamped — a forged hint
  can only delay a retry, never stall a client forever).
* **Circuit breakers** (:class:`CircuitBreaker`) — closed → open →
  half-open per endpoint with a seeded-jitter reopen schedule and a
  bounded probe trickle, so a saturated or dead endpoint stops
  receiving traffic *before* failure-threshold ejection kicks in.
* **Latency tracking** (:class:`LatencyTracker`) — per-endpoint EWMA
  plus a bounded sample window for quantiles; drives adaptive timeouts
  and the gateway's hedging delay.
* **Hedging policy** (:class:`HedgePolicy`) — when a primary dispatch
  is slower than the observed p90, the gateway issues one hedged
  attempt at a *different* replica and abandons the loser.

Everything here is wall-clock-free and seeded: the same virtual-time
schedule produces byte-identical shed/trip/hedge decisions, which is
what lets ``repro.sim`` fingerprint overload scenarios.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass

#: Sentinel for "no deadline" on the wire (absence must survive the
#: canonical encoding, so it is a value, not None).
NO_DEADLINE = 0.0

#: Client-side ceiling on any remote ``retry_after_ms`` hint.  The hint
#: crosses the wire from an *untrusted* endpoint: honoring it verbatim
#: would let a forged response park a client indefinitely.  Clamped, the
#: worst a forgery can do is delay one retry by this much.
RETRY_AFTER_CAP_MS = 10_000.0


def sanitize_deadline(deadline_ms: object) -> float:
    """A usable absolute deadline, or :data:`NO_DEADLINE`.

    Wire fields are attacker-controlled: a corrupted deadline may be
    negative, NaN, or infinite.  Anything non-finite or non-positive
    degrades to "no deadline" — the safe direction, since a deadline
    only ever *refuses* work (verification still guards every answer).
    """
    if not isinstance(deadline_ms, (int, float)) or isinstance(deadline_ms, bool):
        return NO_DEADLINE
    value = float(deadline_ms)
    if not math.isfinite(value) or value <= 0.0:
        return NO_DEADLINE
    return value


def shrink_deadline(deadline_ms: float, margin_ms: float) -> float:
    """Shrink a hop's budget by ``margin_ms`` (reply travel time).

    Propagating ``deadline - margin`` downstream means the downstream
    answer can still reach *us* before our own deadline.  No deadline
    stays no deadline.
    """
    if sanitize_deadline(deadline_ms) == NO_DEADLINE:
        return NO_DEADLINE
    return max(deadline_ms - margin_ms, 1e-9)


def remaining_ms(deadline_ms: float, now_ms: float) -> float:
    """Budget left before ``deadline_ms`` (``inf`` when unset)."""
    if sanitize_deadline(deadline_ms) == NO_DEADLINE:
        return math.inf
    return deadline_ms - now_ms


def clamp_retry_after(hint_ms: object) -> float:
    """A remote ``retry_after_ms`` hint made safe to honor.

    Non-numeric, non-finite, or negative values collapse to zero (no
    extra wait); anything else is capped at :data:`RETRY_AFTER_CAP_MS`.
    """
    if not isinstance(hint_ms, (int, float)) or isinstance(hint_ms, bool):
        return 0.0
    value = float(hint_ms)
    if not math.isfinite(value) or value <= 0.0:
        return 0.0
    return min(value, RETRY_AFTER_CAP_MS)


# -- admission control ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """When a busy-worker server sheds instead of queueing.

    CoDel's insight applies directly to the virtual-clock busy-worker
    model: the harm of an over-full queue is *standing delay*, so the
    shedding signal is the predicted queue **delay** (time until this
    request would start), not the queue length.  ``queue_limit`` is the
    belt-and-braces bound on outstanding admitted requests.
    """

    #: Shed when the predicted wait-before-start exceeds this.
    shed_delay_ms: float = 50.0
    #: Hard cap on admitted-but-unfinished requests.
    queue_limit: int = 64
    #: Bounds on the ``retry_after_ms`` hint attached to a shed.
    retry_after_min_ms: float = 5.0
    retry_after_cap_ms: float = 2_000.0

    def retry_after_hint(self, queue_delay_ms: float, service_ms: float) -> float:
        """How long a shed caller should back off before retrying:
        roughly the time for the standing queue to drain back under the
        shed threshold, floored and capped."""
        excess = queue_delay_ms - self.shed_delay_ms + service_ms
        return min(
            max(excess, self.retry_after_min_ms), self.retry_after_cap_ms
        )


# -- circuit breakers ----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class CircuitBreakerPolicy:
    """When a per-endpoint breaker trips and how it re-closes."""

    #: Consecutive transport failures that open the breaker.
    failure_trip: int = 5
    #: Consecutive OVERLOADED sheds that open it (saturation signals
    #: trip faster than plain failures — the endpoint *told* us to stop).
    overload_trip: int = 2
    #: Open-interval schedule: base × factor^reopens, capped.
    open_base_ms: float = 250.0
    open_factor: float = 2.0
    open_max_ms: float = 10_000.0
    #: Requests let through while half-open (the probe trickle).
    half_open_probes: int = 1
    #: Seeded multiplicative jitter on the open interval (0..1), so a
    #: fleet of breakers tripped by one event does not re-probe in
    #: lockstep.
    jitter: float = 0.2


class CircuitBreaker:
    """One endpoint's closed → open → half-open state machine.

    Deterministic: reopen jitter comes from a breaker-local
    ``random.Random`` seeded from the breaker's name, so the same
    virtual-time failure sequence always yields the same transitions.

    The split of duties against gateway health tracking: health answers
    *is the endpoint alive* (timeouts, integrity failures eject it);
    the breaker answers *should we send it traffic right now* — it also
    reacts to :class:`~repro.errors.OverloadedError`, where the endpoint
    is demonstrably alive but asking for backpressure, which must *not*
    count as a liveness strike.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self, policy: CircuitBreakerPolicy | None = None, *, seed: str = ""
    ) -> None:
        self.policy = policy or CircuitBreakerPolicy()
        self.state = self.CLOSED
        self._rng = random.Random(f"breaker:{seed}")
        self._failure_streak = 0
        self._overload_streak = 0
        self._reopens = 0  # consecutive open periods without a success
        self._reopen_at_ms = 0.0
        self._probes_left = 0
        self.trips = 0
        self.closes = 0

    @property
    def reopen_at_ms(self) -> float | None:
        """When an open breaker next admits a probe (None unless open)."""
        return self._reopen_at_ms if self.state == self.OPEN else None

    def permits(self, now_ms: float) -> bool:
        """Whether a dispatch may be routed here right now (pure)."""
        if self.state == self.OPEN:
            return now_ms >= self._reopen_at_ms
        if self.state == self.HALF_OPEN:
            return self._probes_left > 0
        return True

    def on_dispatch(self, now_ms: float) -> None:
        """Account for one routed request (spends a half-open probe)."""
        if self.state == self.OPEN and now_ms >= self._reopen_at_ms:
            self.state = self.HALF_OPEN
            self._probes_left = self.policy.half_open_probes
        if self.state == self.HALF_OPEN:
            self._probes_left -= 1

    def record_success(self) -> None:
        if self.state != self.CLOSED:
            self.closes += 1
        self.state = self.CLOSED
        self._failure_streak = 0
        self._overload_streak = 0
        self._reopens = 0

    def record_failure(
        self,
        now_ms: float,
        *,
        overload: bool = False,
        retry_after_ms: float = 0.0,
    ) -> None:
        if self.state in (self.OPEN, self.HALF_OPEN):
            # A failed probe (or a straggler): straight back to open,
            # with the next window pushed further out.
            self._open(now_ms, retry_after_ms)
            return
        if overload:
            self._overload_streak += 1
        else:
            self._failure_streak += 1
        if (
            self._overload_streak >= self.policy.overload_trip
            or self._failure_streak >= self.policy.failure_trip
        ):
            self._open(now_ms, retry_after_ms)

    def _open(self, now_ms: float, retry_after_ms: float) -> None:
        interval = min(
            self.policy.open_base_ms * self.policy.open_factor**self._reopens,
            self.policy.open_max_ms,
        )
        if self.policy.jitter:
            interval *= 1.0 + self.policy.jitter * self._rng.random()
        # An explicit retry-after hint from the endpoint (clamped by the
        # caller) can only *extend* the quiet period, never shorten it.
        interval = max(interval, clamp_retry_after(retry_after_ms))
        self.state = self.OPEN
        self._reopen_at_ms = now_ms + interval
        self._reopens += 1
        self._failure_streak = 0
        self._overload_streak = 0
        self.trips += 1


# -- latency tracking ----------------------------------------------------------


class LatencyTracker:
    """Per-endpoint latency: EWMA plus a bounded window for quantiles.

    Purely virtual-time (callers feed it ``bus.clock_ms`` deltas), so
    adaptive timeouts and hedge delays derived from it are
    deterministic.
    """

    def __init__(self, *, alpha: float = 0.2, window: int = 64) -> None:
        self.alpha = alpha
        self._samples: deque[float] = deque(maxlen=window)
        self.ewma_ms: float | None = None
        self.count = 0

    def observe(self, sample_ms: float) -> None:
        sample_ms = max(0.0, float(sample_ms))
        self.count += 1
        if self.ewma_ms is None:
            self.ewma_ms = sample_ms
        else:
            self.ewma_ms += self.alpha * (sample_ms - self.ewma_ms)
        self._samples.append(sample_ms)

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile of the recent window (None when empty)."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def p90(self) -> float | None:
        return self.quantile(0.9)

    def timeout_ms(
        self,
        ceiling_ms: float,
        *,
        multiplier: float = 3.0,
        floor_ms: float = 10.0,
        min_samples: int = 8,
    ) -> float:
        """An adaptive per-attempt timeout: p90 × multiplier, floored,
        and never above the static policy ceiling (the ceiling is the
        correctness bound; adaptation only tightens it)."""
        if self.count < min_samples:
            return ceiling_ms
        p90 = self.p90()
        if p90 is None:
            return ceiling_ms
        return min(max(p90 * multiplier, floor_ms), ceiling_ms)


# -- hedging -------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class HedgePolicy:
    """When the gateway issues a second, hedged dispatch.

    The hedge fires once the primary has been outstanding longer than
    the observed ``quantile`` of that endpoint's latency — i.e. only
    for the slow tail — and goes to a *different* replica.  The first
    response wins; the loser is abandoned.  Until ``min_samples``
    observations exist the gateway does not hedge (no basis for a
    delay), so cold starts behave exactly like the unhedged path.
    """

    enabled: bool = True
    quantile: float = 0.9
    min_samples: int = 8
    delay_floor_ms: float = 5.0
    delay_cap_ms: float = 500.0

    def delay_ms(self, tracker: LatencyTracker | None) -> float | None:
        """Virtual ms to wait before hedging, or None (don't hedge)."""
        if not self.enabled or tracker is None:
            return None
        if tracker.count < self.min_samples:
            return None
        observed = tracker.quantile(self.quantile)
        if observed is None:
            return None
        return min(max(observed, self.delay_floor_ms), self.delay_cap_ms)
