"""Wire codec: library dataclasses ⇄ canonical JSON bytes.

The RPC layer (:mod:`repro.net.rpc`) must move query requests, query
answers (proofs included), headers, and certificates between nodes as
*bytes*, so that fault injection can corrupt them the way a real
network would and so no Python object is ever shared across the
simulated trust boundary.

Every payload type in this library is a plain (frozen, slotted)
dataclass of primitives, ``bytes``, tuples, dicts, and other such
dataclasses, so one recursive codec covers them all:

* primitives pass through JSON;
* ``bytes`` become ``{"!b": "<hex>"}``;
* tuples/lists/dicts are tagged to round-trip their exact type;
* a dataclass becomes ``{"!dc": "<module>:<qualname>", "!f": {...}}``
  and is reconstructed by importing that class — restricted to
  ``repro.*`` modules, and re-running ``__post_init__`` validation, so
  decoding is not an arbitrary-code gadget and structurally invalid
  field values (a tampered public key off the curve, say) fail here.

Any decode failure raises :class:`repro.errors.WireError`; callers
treat that as a corrupted response (see
:class:`repro.errors.ResponseIntegrityError`).
"""

from __future__ import annotations

import dataclasses
import importlib
import json

from repro.errors import WireError

_BYTES = "!b"
_TUPLE = "!t"
_LIST = "!l"
_DICT = "!d"
_DATACLASS = "!dc"
_FIELDS = "!f"

_TAGS = {_BYTES, _TUPLE, _LIST, _DICT, _DATACLASS}


def encode(obj: object) -> bytes:
    """Serialize ``obj`` to canonical JSON bytes."""
    return json.dumps(_pack(obj), sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def decode(data: bytes) -> object:
    """Reconstruct the object encoded in ``data``.

    Raises :class:`WireError` on malformed JSON, unknown structure, an
    unregisterable class, or a value the class itself rejects.
    """
    try:
        raw = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"undecodable wire bytes: {exc}") from exc
    return _unpack(raw)


def _pack(obj: object) -> object:
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {_BYTES: obj.hex()}
    if isinstance(obj, tuple):
        return {_TUPLE: [_pack(item) for item in obj]}
    if isinstance(obj, list):
        return {_LIST: [_pack(item) for item in obj]}
    if isinstance(obj, dict):
        return {_DICT: [[_pack(k), _pack(v)] for k, v in obj.items()]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        if not cls.__module__.startswith("repro."):
            raise WireError(f"refusing to encode non-library type {cls!r}")
        return {
            _DATACLASS: f"{cls.__module__}:{cls.__qualname__}",
            _FIELDS: {
                field.name: _pack(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    raise WireError(f"unserializable value of type {type(obj).__name__}")


def _unpack(raw: object) -> object:
    if raw is None or isinstance(raw, (bool, int, float, str)):
        return raw
    if isinstance(raw, list):
        raise WireError("bare JSON arrays are not produced by this codec")
    if not isinstance(raw, dict):
        raise WireError(f"unexpected wire value {raw!r}")
    tags = _TAGS.intersection(raw)
    if len(tags) != 1:
        raise WireError(f"ambiguous or untagged wire object: {sorted(raw)}")
    tag = tags.pop()
    body = raw[tag]
    try:
        if tag == _BYTES:
            return bytes.fromhex(body)
        if tag == _TUPLE:
            return tuple(_unpack(item) for item in body)
        if tag == _LIST:
            return [_unpack(item) for item in body]
        if tag == _DICT:
            return {_unpack(k): _unpack(v) for k, v in body}
        cls = _resolve(body)
        fields = raw.get(_FIELDS)
        if not isinstance(fields, dict):
            raise WireError(f"dataclass {body!r} missing field map")
        return cls(**{name: _unpack(value) for name, value in fields.items()})
    except WireError:
        raise
    except Exception as exc:  # tampered values fail loudly, not quietly
        raise WireError(f"cannot reconstruct wire object: {exc}") from exc


def _resolve(path: object) -> type:
    """Import the dataclass named by ``module:qualname`` (repro.* only)."""
    if not isinstance(path, str) or ":" not in path:
        raise WireError(f"malformed dataclass reference {path!r}")
    module_name, _, qualname = path.partition(":")
    if not module_name.startswith("repro."):
        raise WireError(f"refusing to import non-library module {module_name!r}")
    try:
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise WireError(f"unknown wire type {path!r}: {exc}") from exc
    if not (isinstance(target, type) and dataclasses.is_dataclass(target)):
        raise WireError(f"wire type {path!r} is not a dataclass")
    return target
