"""A deterministic publish/subscribe message bus with simulated latency.

Delivery order is deterministic: messages are timestamped on a virtual
clock (publish time + per-link latency) and drained in timestamp order,
with FIFO tie-breaking.  That makes integration tests over multi-node
topologies exactly reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import ReproError

Handler = Callable[[object], None]


class NetworkNode:
    """A participant: subscribes to topics, receives messages in order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._handlers: dict[str, Handler] = {}
        self.received: list[object] = []

    def on(self, topic: str, handler: Handler) -> None:
        """Register the handler for one topic (latest registration wins)."""
        self._handlers[topic] = handler

    def deliver(self, topic: str, message: object) -> None:
        self.received.append(message)
        handler = self._handlers.get(topic)
        if handler is not None:
            handler(message)


class MessageBus:
    """Connects nodes; routes published messages by topic."""

    def __init__(self, default_latency_ms: float = 50.0) -> None:
        self.default_latency_ms = default_latency_ms
        self._nodes: dict[str, NetworkNode] = {}
        self._subscriptions: dict[str, list[str]] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self._queue: list[tuple[float, int, str, str, object]] = []
        self._sequence = 0
        self.clock_ms = 0.0

    def join(self, node: NetworkNode) -> NetworkNode:
        if node.name in self._nodes:
            raise ReproError(f"node name {node.name!r} already joined")
        self._nodes[node.name] = node
        return node

    def subscribe(self, node_name: str, topic: str) -> None:
        if node_name not in self._nodes:
            raise ReproError(f"unknown node {node_name!r}")
        self._subscriptions.setdefault(topic, [])
        if node_name not in self._subscriptions[topic]:
            self._subscriptions[topic].append(node_name)

    def set_latency(self, sender: str, receiver: str, latency_ms: float) -> None:
        self._latency[(sender, receiver)] = latency_ms

    def publish(self, sender: str, topic: str, message: object) -> None:
        """Enqueue ``message`` for every subscriber of ``topic``."""
        for receiver in self._subscriptions.get(topic, []):
            if receiver == sender:
                continue
            latency = self._latency.get(
                (sender, receiver), self.default_latency_ms
            )
            self._sequence += 1
            heapq.heappush(
                self._queue,
                (self.clock_ms + latency, self._sequence, receiver, topic, message),
            )

    def run_until_idle(self) -> int:
        """Deliver everything (including cascades); returns the count."""
        delivered = 0
        while self._queue:
            at, _, receiver, topic, message = heapq.heappop(self._queue)
            self.clock_ms = max(self.clock_ms, at)
            self._nodes[receiver].deliver(topic, message)
            delivered += 1
        return delivered
