"""A deterministic publish/subscribe + unicast message bus with
simulated latency, scheduled callbacks, and optional fault injection.

Delivery order is deterministic: messages are timestamped on a virtual
clock (publish time + per-link latency) and drained in timestamp order,
with FIFO tie-breaking.  That makes integration tests over multi-node
topologies exactly reproducible.

Beyond fire-and-forget pub/sub the bus supports what a request/response
layer needs (see :mod:`repro.net.rpc`):

* :meth:`MessageBus.send` — point-to-point delivery to a named node,
  independent of topic subscriptions;
* :meth:`MessageBus.schedule` — a callback at a virtual-clock deadline
  (timeouts, retry backoff);
* :meth:`MessageBus.step` / :meth:`MessageBus.run_for` — bounded
  draining, so a caller can wait *up to* a deadline instead of draining
  the world;
* an optional :class:`repro.net.faults.FaultInjector` that may drop,
  delay, duplicate, or corrupt any queued delivery per link.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro import obs
from repro.errors import BusError

Handler = Callable[[object], None]

#: Pseudo-receiver name for scheduled callbacks (never a real node).
_TIMER = None


class NetworkNode:
    """A participant: subscribes to topics, receives messages in order.

    ``received`` keeps the most recent deliveries for assertions and
    debugging.  It is *bounded* (``record_limit`` messages, oldest
    dropped first) so long-running simulations do not leak memory; pass
    ``record_limit=0`` to disable recording entirely, or ``None`` to
    keep everything (opt-in, for short tests only).
    """

    def __init__(self, name: str, *, record_limit: int | None = 256) -> None:
        self.name = name
        self.record_limit = record_limit
        # repro: allow[BND01] topic registry, one entry per on() wiring call
        self._handlers: dict[str, Handler] = {}
        self.received: list[object] = []
        self.delivered_count = 0

    def on(self, topic: str, handler: Handler) -> None:
        """Register the handler for one topic (latest registration wins)."""
        self._handlers[topic] = handler

    def deliver(self, topic: str, message: object) -> None:
        self.delivered_count += 1
        if self.record_limit != 0:
            self.received.append(message)
            if (
                self.record_limit is not None
                and len(self.received) > self.record_limit
            ):
                del self.received[: len(self.received) - self.record_limit]
        handler = self._handlers.get(topic)
        if handler is not None:
            handler(message)


class MessageBus:
    """Connects nodes; routes published and unicast messages."""

    def __init__(self, default_latency_ms: float = 50.0) -> None:
        self.default_latency_ms = default_latency_ms
        self.fault_injector = None  # repro.net.faults.FaultInjector | None
        # repro: allow[BND01] static topology, one entry per joined node
        self._nodes: dict[str, NetworkNode] = {}
        # repro: allow[BND01] static topology, one edge per subscribe() wiring call
        self._subscriptions: dict[str, list[str]] = {}
        # repro: allow[BND01] static topology, one entry per configured link
        self._latency: dict[tuple[str, str], float] = {}
        self._queue: list[tuple[float, int, str | None, str, object]] = []
        self._sequence = 0
        self.clock_ms = 0.0

    def join(self, node: NetworkNode) -> NetworkNode:
        if node.name in self._nodes:
            raise BusError(f"node name {node.name!r} already joined")
        self._nodes[node.name] = node
        return node

    def subscribe(self, node_name: str, topic: str) -> None:
        if node_name not in self._nodes:
            raise BusError(f"unknown node {node_name!r}")
        self._subscriptions.setdefault(topic, [])
        if node_name not in self._subscriptions[topic]:
            self._subscriptions[topic].append(node_name)

    def set_latency(self, sender: str, receiver: str, latency_ms: float) -> None:
        self._latency[(sender, receiver)] = latency_ms

    def install_faults(self, injector) -> None:
        """Route every subsequent delivery through ``injector``."""
        self.fault_injector = injector

    # -- enqueueing ---------------------------------------------------------

    def publish(self, sender: str, topic: str, message: object) -> None:
        """Enqueue ``message`` for every subscriber of ``topic``."""
        for receiver in self._subscriptions.get(topic, []):
            if receiver == sender:
                continue
            self._enqueue(sender, receiver, topic, message)

    def send(self, sender: str, receiver: str, topic: str, message: object) -> None:
        """Point-to-point delivery, independent of subscriptions."""
        if receiver not in self._nodes:
            raise BusError(f"unknown node {receiver!r}")
        self._enqueue(sender, receiver, topic, message)

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the virtual clock reaches now+delay."""
        self._sequence += 1
        heapq.heappush(
            self._queue,
            (self.clock_ms + delay_ms, self._sequence, _TIMER, "", callback),
        )

    def _enqueue(
        self, sender: str, receiver: str, topic: str, message: object
    ) -> None:
        latency = self._latency.get((sender, receiver), self.default_latency_ms)
        deliveries = [(0.0, message)]
        if self.fault_injector is not None:
            deliveries = self.fault_injector.apply(sender, receiver, message)
        for extra_delay, delivered in deliveries:
            self._sequence += 1
            heapq.heappush(
                self._queue,
                (
                    self.clock_ms + latency + extra_delay,
                    self._sequence,
                    receiver,
                    topic,
                    delivered,
                ),
            )

    # -- draining -----------------------------------------------------------

    def step(self, deadline_ms: float | None = None) -> bool:
        """Deliver the single next event, if one is due by ``deadline_ms``.

        Returns True when an event was delivered (or a timer fired);
        False when the queue is empty or the next event lies beyond the
        deadline.  The clock only advances to the delivered event's
        timestamp — never past the deadline.
        """
        if not self._queue:
            return False
        at = self._queue[0][0]
        if deadline_ms is not None and at > deadline_ms:
            return False
        at, _, receiver, topic, message = heapq.heappop(self._queue)
        self.clock_ms = max(self.clock_ms, at)
        if receiver is _TIMER:
            obs.inc("net.bus.timer_fires")
            message()  # a scheduled callback
        else:
            obs.inc("net.bus.deliveries")
            self._nodes[receiver].deliver(topic, message)
        return True

    def run_for(self, duration_ms: float) -> int:
        """Deliver everything due within the next ``duration_ms`` of
        virtual time, then advance the clock to the end of the window
        (even if the bus went idle early).  Returns the delivery count.
        """
        deadline = self.clock_ms + duration_ms
        delivered = 0
        while self.step(deadline):
            delivered += 1
        self.clock_ms = max(self.clock_ms, deadline)
        return delivered

    def wait_until(self, deadline_ms: float) -> None:
        """Advance the clock to ``deadline_ms`` without delivering."""
        self.clock_ms = max(self.clock_ms, deadline_ms)

    def run_until_idle(self) -> int:
        """Deliver everything (including cascades); returns the count."""
        delivered = 0
        while self.step():
            delivered += 1
        return delivered
