"""Message types carried on the simulated network."""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.chain.block import Block, BlockHeader
from repro.core.certificate import Certificate
from repro.crypto.hashing import Digest


@dataclass(frozen=True, slots=True)
class BlockAnnouncement:
    """A miner/full node announcing a new block."""

    block: Block

    @property
    def topic(self) -> str:
        return "blocks"


@dataclass(frozen=True, slots=True)
class CertificateAnnouncement:
    """A CI broadcasting a block (and optionally index) certificate."""

    header: BlockHeader
    certificate: Certificate
    index_certificates: dict[str, Certificate] = field(default_factory=dict)
    index_roots: dict[str, Digest] = field(default_factory=dict)

    @property
    def topic(self) -> str:
        return "certificates"


# -- the push stream (repro.net.pubsub) --------------------------------------


@dataclass(frozen=True, slots=True)
class PushEnvelope:
    """One hub→subscriber push: a canonically wire-encoded
    :class:`repro.net.pubsub.TipAnnouncement`.

    The announcement crosses as *bytes* (like an RPC payload) so the
    fault layer can corrupt it exactly as a real network would — the
    subscriber must treat an undecodable or unverifiable envelope as a
    forgery, never as a tip.
    """

    payload: bytes

    def corrupted(self, rng: random.Random) -> "PushEnvelope":
        from repro.net.faults import flip_hex_digit

        return replace(self, payload=flip_hex_digit(self.payload, rng))


@dataclass(frozen=True, slots=True)
class LagNotice:
    """Hub→subscriber: your outbox overflowed and announcements were
    dropped oldest-first; pull ``hub.sync_range`` before resuming."""

    latest_seq: int
    dropped: int


@dataclass(frozen=True, slots=True)
class StreamAck:
    """Subscriber→hub: cumulative ack up to ``seq`` (also renews the
    subscriber's lease)."""

    subscriber: str
    seq: int
