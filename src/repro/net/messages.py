"""Message types carried on the simulated network."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chain.block import Block, BlockHeader
from repro.core.certificate import Certificate
from repro.crypto.hashing import Digest


@dataclass(frozen=True, slots=True)
class BlockAnnouncement:
    """A miner/full node announcing a new block."""

    block: Block

    @property
    def topic(self) -> str:
        return "blocks"


@dataclass(frozen=True, slots=True)
class CertificateAnnouncement:
    """A CI broadcasting a block (and optionally index) certificate."""

    header: BlockHeader
    certificate: Certificate
    index_certificates: dict[str, Certificate] = field(default_factory=dict)
    index_roots: dict[str, Digest] = field(default_factory=dict)

    @property
    def topic(self) -> str:
        return "certificates"
