"""Deterministic per-link fault injection for the simulated network.

The paper's deployment model (Fig. 2) pits superlight clients against
*untrusted* Service Providers reached over an unreliable network.  A
:class:`FaultInjector` installed on a :class:`repro.net.bus.MessageBus`
(via :meth:`~repro.net.bus.MessageBus.install_faults`) can, per
directed link:

* **drop** a delivery (lost packet),
* **delay** it by a fixed amount plus bounded jitter (slow link),
* **duplicate** it (retransmission artifacts), and
* **corrupt** it (bit rot or a tampering middlebox) — by default via
  the message's own ``corrupted(rng)`` hook (see
  :class:`repro.net.rpc.RpcResponse`), or a custom per-link corrupter.

All randomness comes from one seeded :class:`random.Random`, so a given
(seed, traffic) pair replays the exact same fault schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro import obs

Corrupter = Callable[[object, random.Random], object]


def flip_hex_digit(data: bytes, rng: random.Random) -> bytes:
    """Corrupt wire bytes by rewriting one hex-digit character.

    Wire encodings (see :mod:`repro.net.wire`) carry digests, keys, and
    signatures as hex strings, so flipping a hex digit yields a payload
    that usually still *parses* but no longer verifies — the
    interesting corruption for an integrity-checking client.  Falls
    back to flipping the low bit of an arbitrary byte when no hex digit
    is present.
    """
    positions = [
        index for index, b in enumerate(data) if b in b"0123456789abcdef"
    ]
    if not positions:
        if not data:
            return data
        index = rng.randrange(len(data))
        return data[:index] + bytes([data[index] ^ 1]) + data[index + 1 :]
    index = rng.choice(positions)
    alternatives = [d for d in b"0123456789abcdef" if d != data[index]]
    return data[:index] + bytes([rng.choice(alternatives)]) + data[index + 1 :]


def default_corrupter(message: object, rng: random.Random) -> object:
    """Corrupt via the message's own ``corrupted`` hook when it has one."""
    corrupted = getattr(message, "corrupted", None)
    if callable(corrupted):
        return corrupted(rng)
    return message


@dataclass
class LinkFaults:
    """Fault profile for one directed link (or the default profile)."""

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    extra_delay_ms: float = 0.0
    jitter_ms: float = 0.0
    corrupter: Corrupter | None = None


@dataclass
class LinkStats:
    """What the injector did to one directed link's traffic."""

    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    corrupted: int = 0


@dataclass
class FaultInjector:
    """Applies per-link :class:`LinkFaults` to every bus delivery."""

    seed: int = 0
    default: LinkFaults | None = None
    _rng: random.Random = field(init=False, repr=False)
    _links: dict[tuple[str, str], LinkFaults] = field(
        init=False, default_factory=dict
    )
    stats: dict[tuple[str, str], LinkStats] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def set_link(self, sender: str, receiver: str, faults: LinkFaults) -> None:
        self._links[(sender, receiver)] = faults

    def clear_link(self, sender: str, receiver: str) -> None:
        self._links.pop((sender, receiver), None)

    def apply(
        self, sender: str, receiver: str, message: object
    ) -> list[tuple[float, object]]:
        """The (extra-delay, message) deliveries for one enqueued send.

        An empty list means the message was dropped; two entries mean
        it was duplicated.  Called by the bus for every delivery on a
        faulted link.
        """
        faults = self._links.get((sender, receiver), self.default)
        if faults is None:
            return [(0.0, message)]
        stats = self.stats.setdefault((sender, receiver), LinkStats())
        if faults.drop_rate and self._rng.random() < faults.drop_rate:
            stats.dropped += 1
            obs.inc("net.faults.dropped")
            return []
        delay = faults.extra_delay_ms
        if faults.jitter_ms:
            delay += self._rng.uniform(0.0, faults.jitter_ms)
        if faults.corrupt_rate and self._rng.random() < faults.corrupt_rate:
            corrupter = faults.corrupter or default_corrupter
            tampered = corrupter(message, self._rng)
            if tampered is not message:
                stats.corrupted += 1
                obs.inc("net.faults.corrupted")
            message = tampered
        deliveries = [(delay, message)]
        if faults.duplicate_rate and self._rng.random() < faults.duplicate_rate:
            stats.duplicated += 1
            obs.inc("net.faults.duplicated")
            deliveries.append((delay + faults.jitter_ms + 1.0, message))
        stats.delivered += len(deliveries)
        return deliveries

    def summary(self) -> dict[str, dict[str, int]]:
        """Per-link counters, keyed ``"sender->receiver"`` for display."""
        return {
            f"{sender}->{receiver}": vars(stats).copy()
            for (sender, receiver), stats in sorted(self.stats.items())
        }
