"""In-process network simulation.

DCert's certification workflow (Fig. 2, step 3) has the CI *broadcast*
certificates to the blockchain network, where superlight clients pick
them up.  This package provides a deterministic in-process message bus
with a simple latency model, enough to exercise the full
publish/subscribe path in examples and integration tests without
sockets.
"""

from repro.net.bus import MessageBus, NetworkNode
from repro.net.messages import BlockAnnouncement, CertificateAnnouncement

__all__ = [
    "BlockAnnouncement",
    "CertificateAnnouncement",
    "MessageBus",
    "NetworkNode",
]
