"""In-process network simulation, now with a request/response layer.

DCert's certification workflow (Fig. 2, step 3) has the CI *broadcast*
certificates to the blockchain network, where superlight clients pick
them up; its query workflow has clients *ask* untrusted Service
Providers for verifiable answers.  This package provides both halves,
deterministically and without sockets:

* :mod:`bus` — the virtual-clock message bus: pub/sub broadcast,
  unicast :meth:`~repro.net.bus.MessageBus.send`, scheduled callbacks,
  and bounded draining (``run_for``/``step``).
* :mod:`rpc` — request/response RPC with per-call timeouts and bounded
  exponential-backoff retries.
* :mod:`wire` — the dataclass ⇄ bytes codec RPC payloads cross the
  simulated network as.
* :mod:`faults` — per-link drop/delay/duplicate/corrupt injection with
  a seeded RNG, for failure-path tests and demos.
* :mod:`messages` — broadcast message types (blocks, certificates) and
  the push-stream frames (envelopes, lag notices, acks).
* :mod:`pubsub` — the certificate subscription hub: push-based tip
  propagation with windowed backpressure, bounded outboxes, lag
  markers, sequence-numbered announcements, catch-up pulls, and
  lease-based subscriber reaping.
* :mod:`gateway` — load-balanced routing over a fleet of QueryService
  replicas: balancing policies, per-replica health with probe-based
  recovery, failover with switch re-verification.
* :mod:`supervisor` — crash detection + bounded-backoff restart for any
  RPC-fronted service (issuer or query replica).
* :mod:`resilience` — the overload-protection primitives: deadline
  propagation, CoDel-style admission control, circuit breakers,
  per-endpoint latency tracking, and hedged-request policy (see
  docs/overload.md).
"""

from repro.net.bus import MessageBus, NetworkNode
from repro.net.faults import FaultInjector, LinkFaults
from repro.net.gateway import (
    HealthPolicy,
    LeastOutstanding,
    QueryGateway,
    ReplicaState,
    RoundRobin,
    SeededRandom,
    make_balancer,
)
from repro.net.messages import (
    BlockAnnouncement,
    CertificateAnnouncement,
    LagNotice,
    PushEnvelope,
    StreamAck,
)
from repro.net.pubsub import SubscriptionHub, TipAnnouncement
from repro.net.resilience import (
    AdmissionPolicy,
    CircuitBreaker,
    CircuitBreakerPolicy,
    HedgePolicy,
    LatencyTracker,
    clamp_retry_after,
    sanitize_deadline,
    shrink_deadline,
)
from repro.net.rpc import RetryPolicy, RpcClient, RpcRequest, RpcResponse, RpcServer
from repro.net.supervisor import (
    IssuerSupervisor,
    RestartPolicy,
    ServiceSupervisor,
)

__all__ = [
    "AdmissionPolicy",
    "BlockAnnouncement",
    "CertificateAnnouncement",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "FaultInjector",
    "HealthPolicy",
    "HedgePolicy",
    "LatencyTracker",
    "IssuerSupervisor",
    "LagNotice",
    "LeastOutstanding",
    "LinkFaults",
    "MessageBus",
    "NetworkNode",
    "PushEnvelope",
    "QueryGateway",
    "ReplicaState",
    "RestartPolicy",
    "RetryPolicy",
    "RoundRobin",
    "RpcClient",
    "RpcRequest",
    "RpcResponse",
    "RpcServer",
    "SeededRandom",
    "ServiceSupervisor",
    "StreamAck",
    "SubscriptionHub",
    "TipAnnouncement",
    "clamp_retry_after",
    "make_balancer",
    "sanitize_deadline",
    "shrink_deadline",
]
