"""Global invariants, checked after every simulation event.

These are the paper's *system-wide* security and efficiency claims —
the properties that must hold across any interleaving of workload and
faults, not just inside one subsystem:

* **tip-monotonic** — a client's certified tip height never goes back;
* **no-unverified-adoption** — every adopted tip re-verifies from
  scratch (fresh verifier, certificate + attestation report) and names
  a block the honest chain actually mined at that height;
* **storage-budget** — every client holds at most the paper's ~2.97 KB;
* **oracle-identity** — every verified answer is byte-identical to a
  local, never-networked provider executing the same request;
* **cache-coherence** — every verified-answer cache entry is keyed to a
  root the client *currently* holds certified (tip advances strand
  nothing stale);
* **wal-consistent** — certificate bytes per height never change once
  observed, across any number of crash/recovery cycles, and at the end
  of the run a cold :func:`~repro.core.recovery.recover_issuer` from
  the WAL rebuilds the exact same certificates;
* **metrics-monotonic** — counters never decrease;
* **hub-stream-bounded** — the hub never announces beyond what the
  issuer certified;
* **deadline-honored** — no admitted request misses its propagated
  deadline by more than one service quantum (a replica that cannot
  finish in budget must refuse at admission, not serve late);
* **shed-zero-work** — shed and deadline-refused requests do zero
  provider work: typed queries the provider actually executed equals
  exactly the queries the serving tier admitted;
* **client-rpc-bounded** — every RPC client's response and abandoned-id
  books stay within their hard caps (no unbounded growth under floods,
  timeouts, or churn).

A violation raises :class:`InvariantViolation` carrying the event index
so the runner can shrink to the smallest failing prefix and print a
replay command.
"""

from __future__ import annotations

from repro import obs
from repro.chain.genesis import make_genesis
from repro.core.recovery import recover_issuer
from repro.core.superlight import SuperlightClient
from repro.fault.chaos import certificate_bytes
from repro.net.wire import encode

from .world import KIND_GATEWAY, SimWorld, _fresh_vm

#: The paper's client state budget (Table 4): ~2.97 KB.
PAPER_STORAGE_BUDGET_BYTES = int(2.97 * 1024)


class InvariantViolation(AssertionError):
    """One named global invariant failed after one event."""

    def __init__(self, name: str, event_index: int, detail: str) -> None:
        self.name = name
        self.event_index = event_index
        self.detail = detail
        super().__init__(
            f"invariant {name!r} violated after event {event_index}: {detail}"
        )


class InvariantSuite:
    """Stateful checkers over one :class:`~repro.sim.world.SimWorld`."""

    def __init__(self, world: SimWorld, canary: str | None = None) -> None:
        self.world = world
        self._tips: dict[str, tuple[int, bytes]] = {}
        self._cert_fps: dict[int, tuple[bytes, tuple[bytes, ...]]] = {}
        self._counters: dict[str, float] = {}
        self._issuer_seen: int | None = None
        self._certified_seen = -1
        self._pending_adoptions: list[tuple[str, object, object]] = []
        self.checkers = [
            ("tip-monotonic", self._check_tips),
            ("no-unverified-adoption", self._check_adoptions),
            ("storage-budget", self._check_storage),
            ("oracle-identity", self._check_answers),
            ("cache-coherence", self._check_cache),
            ("wal-consistent", self._check_certificates),
            ("metrics-monotonic", self._check_counters),
            ("hub-stream-bounded", self._check_hub),
            ("deadline-honored", self._check_deadlines),
            ("shed-zero-work", self._check_shedding),
            ("client-rpc-bounded", self._check_rpc_bounds),
        ]
        if canary is not None:
            self.checkers.append((canary, CANARIES[canary][1](self)))

    # -- driver --------------------------------------------------------------

    def check(self, event_index: int) -> None:
        """Run every checker; wrap the first failure with its name and
        the 0-based index of the event that exposed it."""
        for name, checker in self.checkers:
            try:
                checker()
            except InvariantViolation:
                raise
            except AssertionError as exc:
                raise InvariantViolation(name, event_index, str(exc)) from exc

    def finish(self, event_count: int) -> None:
        """End-of-run: cold-recover the issuer from the WAL and require
        byte-identical certificates for every certified height."""
        world = self.world
        config = world.config
        genesis, state = make_genesis(network=config.network)
        recovered = recover_issuer(
            world.archive, genesis, state, _fresh_vm(), world.builder.pow,
            index_specs=world.specs, platform=world.platform, ias=world.ias,
            checkpoint_interval=config.checkpoint_interval,
        )
        live = certificate_bytes(world.issuer)
        cold = certificate_bytes(recovered)
        if live != cold:
            raise InvariantViolation(
                "wal-consistent", event_count,
                "cold recovery from the WAL diverged from the live issuer "
                f"(live heights {sorted(live)}, recovered {sorted(cold)})",
            )

    # -- checkers ------------------------------------------------------------

    def _check_tips(self) -> None:
        """Monotone heights; tip *changes* queue for cold verification
        by the no-unverified-adoption checker that runs right after."""
        for entry in self.world.fleet:
            inner = entry.client.client
            header = inner.latest_header
            if header is None:
                assert entry.name not in self._tips, (
                    f"{entry.name} lost its adopted tip"
                )
                continue
            current = (header.height, header.header_hash())
            previous = self._tips.get(entry.name)
            if previous is not None:
                assert current[0] >= previous[0], (
                    f"{entry.name} tip went back: "
                    f"{previous[0]} -> {current[0]}"
                )
            if previous != current:
                self._pending_adoptions.append(
                    (entry.name, header, inner.latest_certificate)
                )
                self._tips[entry.name] = current

    def _check_adoptions(self) -> None:
        """Every tip change re-verifies from scratch: fresh verifier,
        full certificate + attestation check, honest-chain membership."""
        pending, self._pending_adoptions = self._pending_adoptions, []
        for name, header, certificate in pending:
            self._verify_adoption(name, header, certificate)

    def _verify_adoption(self, name: str, header, certificate) -> None:
        assert certificate is not None, f"{name} adopted a tip with no cert"
        mined = self.world.builder.blocks
        assert header.height < len(mined), (
            f"{name} adopted height {header.height}, beyond the honest chain"
        )
        honest = mined[header.height].header.header_hash()
        assert header.header_hash() == honest, (
            f"{name} adopted a header the honest chain never mined "
            f"at height {header.height}"
        )
        verifier = SuperlightClient(
            self.world.measurement, self.world.ias.public_key
        )
        try:
            verifier.validate_chain(header, certificate)
        except Exception as exc:  # any failure means unverified adoption
            raise AssertionError(
                f"{name}'s adopted certificate fails fresh verification: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def _check_storage(self) -> None:
        for entry in self.world.fleet:
            used = entry.client.storage_bytes()
            assert used <= PAPER_STORAGE_BUDGET_BYTES, (
                f"{entry.name} stores {used} bytes "
                f"(budget {PAPER_STORAGE_BUDGET_BYTES})"
            )

    def _check_answers(self) -> None:
        for request, answer in self.world.drain_answers():
            honest = self.world.oracle.execute(request)
            assert encode(answer) == encode(honest), (
                f"verified answer for {request!r} differs from honest "
                "local execution"
            )

    def _check_cache(self) -> None:
        for entry in self.world.fleet:
            if entry.kind != KIND_GATEWAY:
                continue
            cache = getattr(entry.client, "cache", None)
            if cache is None:
                continue
            inner = entry.client.client
            roots = {
                inner.certified_index_root(spec.name)
                for spec in self.world.specs
            }
            roots.discard(None)
            for (_request_bytes, root) in cache._entries:
                assert root in roots, (
                    f"{entry.name} caches an answer under a root it no "
                    "longer holds certified"
                )

    def _check_certificates(self) -> None:
        """Certificate bytes per height are write-once, across crashes."""
        world = self.world
        issuer_id = id(world.issuer)
        count = len(world.issuer.certified)
        if issuer_id == self._issuer_seen and count == self._certified_seen:
            return  # nothing issued or recovered since the last check
        current = certificate_bytes(world.issuer)
        for height, fingerprint in current.items():
            seen = self._cert_fps.get(height)
            if seen is None:
                self._cert_fps[height] = fingerprint
            else:
                assert seen == fingerprint, (
                    f"certificate bytes changed at height {height} "
                    "(recovery re-issued different bytes)"
                )
        self._issuer_seen = issuer_id
        self._certified_seen = count

    def _check_counters(self) -> None:
        snapshot = obs.registry().snapshot()["counters"]
        for name, value in snapshot.items():
            assert value >= self._counters.get(name, 0), (
                f"counter {name} decreased"
            )
        self._counters.update(snapshot)

    def _check_hub(self) -> None:
        world = self.world
        assert world.hub.seq <= len(world.issuer.certified), (
            f"hub announced seq {world.hub.seq} beyond the "
            f"{len(world.issuer.certified)} certified blocks"
        )

    def _check_deadlines(self) -> None:
        """Admission is the only place lateness is allowed to appear:
        once a deadline-carrying request is admitted, the busy-worker
        model must finish it within budget (plus one service quantum of
        slack).  A nonzero violation counter means a replica accepted
        work it was doomed to serve late."""
        for name, replica in self.world.replicas.items():
            late = replica.server.deadline_violations
            assert late == 0, (
                f"replica {name} finished {late} admitted request(s) past "
                "their propagated deadline"
            )

    def _check_shedding(self) -> None:
        """Shed and deadline-refused requests must cost the provider
        nothing: the provider's typed-query executions track the
        serving tier's admitted ``execute`` invocations exactly."""
        admitted = sum(
            replica.server.invocations.get("execute", 0)
            for replica in self.world.replicas.values()
        )
        executed = self.world.provider.executes
        assert executed == admitted, (
            f"provider executed {executed} queries but the serving tier "
            f"admitted {admitted} — refused requests did provider work"
        )

    def _check_rpc_bounds(self) -> None:
        """No RPC book grows without bound: stored responses and
        abandoned-id sets stay within their class-level caps, across
        floods, abandons, timeouts, and client churn."""
        books = [("miner", self.world.miner), ("loadgen", self.world.load)]
        for entry in self.world.fleet:
            books.append((entry.name, entry.client.rpc))
            if entry.gateway is not None:
                books.append((f"{entry.name}.gateway", entry.gateway.rpc))
        for name, rpc in books:
            held = len(rpc._responses)
            assert held <= rpc.RESPONSES_LIMIT, (
                f"{name} holds {held} stored responses "
                f"(cap {rpc.RESPONSES_LIMIT})"
            )
            abandoned = len(rpc._abandoned)
            assert abandoned <= rpc.ABANDONED_LIMIT, (
                f"{name} tracks {abandoned} abandoned ids "
                f"(cap {rpc.ABANDONED_LIMIT})"
            )


# -- canaries ----------------------------------------------------------------
#
# Deliberately-wrong invariants used to prove the harness *catches*
# violations, shrinks them, and prints a working replay command.  Each
# entry maps a name to (description, checker factory).

def _canary_height_cap(suite: InvariantSuite):
    cap = suite.world.config.premine + 1

    def check() -> None:
        for entry in suite.world.fleet:
            header = entry.client.client.latest_header
            height = header.height if header is not None else 0
            assert height <= cap, (
                f"canary: {entry.name} passed the height cap "
                f"({height} > {cap})"
            )
    return check


def _canary_low_storage(suite: InvariantSuite):
    def check() -> None:
        for entry in suite.world.fleet:
            used = entry.client.storage_bytes()
            assert used <= 1024, (
                f"canary: {entry.name} stores {used} bytes (> 1 KB)"
            )
    return check


CANARIES = {
    "height-cap": (
        "clients must never pass premine+1 (fires on the first "
        "certify/adopt past the opening stretch)",
        _canary_height_cap,
    ),
    "low-storage": (
        "clients must fit 1 KB (fires as soon as any client adopts)",
        _canary_low_storage,
    ),
}
