"""repro.sim — deterministic whole-system simulation (FoundationDB-style).

One seeded schedule drives the entire stack — chain, durable issuer,
WAL + checkpoints, supervisor, gateway-fronted replica fleet,
subscription hub, and a mixed client fleet — on the virtual-clock bus,
with global invariants checked after every event and a shrink-to-prefix
replay on any violation.  See ``docs/testing.md`` for the knobs.
"""

from .invariants import (
    CANARIES,
    PAPER_STORAGE_BUDGET_BYTES,
    InvariantSuite,
    InvariantViolation,
)
from .schedule import (
    SIM_CRASH_POINTS,
    WEIGHT_PROFILES,
    ScenarioSchedule,
    SimEvent,
    apply_event,
)
from .shrink import (
    DEFAULT_EVENTS,
    DEFAULT_SEED,
    SimResult,
    knobs_from_env,
    replay_command,
    run_and_shrink,
    run_sim,
    shrink_prefix,
)
from .world import SimClient, SimConfig, SimWorld

__all__ = [
    "CANARIES",
    "DEFAULT_EVENTS",
    "DEFAULT_SEED",
    "InvariantSuite",
    "InvariantViolation",
    "PAPER_STORAGE_BUDGET_BYTES",
    "ScenarioSchedule",
    "SimClient",
    "SimConfig",
    "SimEvent",
    "SimResult",
    "SimWorld",
    "SIM_CRASH_POINTS",
    "WEIGHT_PROFILES",
    "apply_event",
    "knobs_from_env",
    "replay_command",
    "run_and_shrink",
    "run_sim",
    "shrink_prefix",
]
