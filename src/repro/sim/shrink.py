"""The simulation runner: execute, fingerprint, shrink, replay.

:func:`run_sim` drives one seeded schedule through a fresh
:class:`~repro.sim.world.SimWorld`, checking the
:class:`~repro.sim.invariants.InvariantSuite` after every event, and
returns a :class:`SimResult` whose fingerprint is a SHA-256 over the
deterministic event log — same seed, byte-identical fingerprint.

On a violation, :func:`run_and_shrink` bisects the *smallest failing
event prefix* (determinism makes every probe exact) and raises an
``AssertionError`` whose message carries a copy-paste replay command,
following the ``tests/proptest/framework.py`` conventions:

    REPRO_SIM_REPLAY=<seed>:<events> PYTHONPATH=src \\
        python -m pytest tests/sim/test_sim_workloads.py::test_replay -q

Env knobs (all optional):

* ``REPRO_SIM_SEED`` — schedule seed (default 2026);
* ``REPRO_SIM_EVENTS`` — schedule length (default 60);
* ``REPRO_SIM_REPLAY=seed:events`` — rerun exactly one case;
* ``REPRO_SIM_CANARY`` — arm a deliberately-wrong invariant from
  :data:`repro.sim.invariants.CANARIES`;
* ``REPRO_SIM_PROFILE`` — event mix (``mixed``/``overload``, see
  :data:`repro.sim.schedule.WEIGHT_PROFILES`).
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.sgx.costs import cost_model_disabled

from .invariants import InvariantSuite, InvariantViolation
from .schedule import ScenarioSchedule, apply_event
from .world import SimConfig, SimWorld

DEFAULT_SEED = 2026
DEFAULT_EVENTS = 60


@dataclass
class SimResult:
    """Everything one deterministic run produced."""

    seed: int
    events: int
    events_applied: int
    fingerprint: str
    violation: InvariantViolation | None
    log: tuple[str, ...]
    canary: str | None = None
    profile: str = "mixed"

    @property
    def ok(self) -> bool:
        return self.violation is None


def run_sim(
    seed: int,
    events: int,
    config: SimConfig | None = None,
    canary: str | None = None,
    profile: str = "mixed",
) -> SimResult:
    """One full deterministic run; never raises on a violation — the
    outcome (including the violation) is the result."""
    config = config or SimConfig()
    violation: InvariantViolation | None = None
    applied = 0
    with tempfile.TemporaryDirectory(prefix="repro-sim-") as tmp:
        with cost_model_disabled():
            with obs.observability():
                obs.registry().reset()
                world = SimWorld.build(config, Path(tmp))
                obs.set_virtual_clock(lambda: world.bus.clock_ms)
                try:
                    schedule = ScenarioSchedule.generate(
                        seed, events, profile=profile
                    )
                    suite = InvariantSuite(world, canary=canary)
                    try:
                        for index, event in enumerate(schedule.events):
                            outcome = apply_event(world, event)
                            world.log(
                                f"{index:04d} t={world.bus.clock_ms:.1f} "
                                f"{event.describe()} -> {outcome}"
                            )
                            applied = index + 1
                            suite.check(index)
                        suite.finish(events)
                    except InvariantViolation as exc:
                        violation = exc
                finally:
                    obs.set_virtual_clock(None)
                return SimResult(
                    seed=seed, events=events, events_applied=applied,
                    fingerprint=world.fingerprint(), violation=violation,
                    log=tuple(world.events), canary=canary, profile=profile,
                )


def replay_command(
    seed: int,
    events: int,
    canary: str | None = None,
    profile: str = "mixed",
) -> str:
    """The copy-paste one-liner that reruns exactly this case."""
    parts = [f"REPRO_SIM_REPLAY={seed}:{events}"]
    if canary is not None:
        parts.append(f"REPRO_SIM_CANARY={canary}")
    if profile != "mixed":
        parts.append(f"REPRO_SIM_PROFILE={profile}")
    parts.append(
        "PYTHONPATH=src python -m pytest "
        "tests/sim/test_sim_workloads.py::test_replay -q"
    )
    return " ".join(parts)


def shrink_prefix(
    seed: int,
    events: int,
    config: SimConfig | None = None,
    canary: str | None = None,
    first_failure: int | None = None,
    profile: str = "mixed",
) -> int:
    """Smallest event-prefix length that still violates, by bisection.

    Determinism makes every probe exact: prefix ``n`` replays the first
    ``n`` events of the same schedule byte-for-byte.  ``first_failure``
    (the violating event's 0-based index, when known) seeds the upper
    bound so the search starts tight.
    """
    hi = events
    if first_failure is not None:
        hi = min(events, first_failure + 1)
    lo = 1
    # Invariant: prefix `hi` fails; prefixes below `lo` are untested or
    # pass.  Bisect the boundary.
    while lo < hi:
        mid = (lo + hi) // 2
        probe = run_sim(seed, mid, config=config, canary=canary,
                        profile=profile)
        if probe.violation is not None:
            hi = mid
        else:
            lo = mid + 1
    return hi


def run_and_shrink(
    seed: int,
    events: int,
    config: SimConfig | None = None,
    canary: str | None = None,
    profile: str = "mixed",
) -> SimResult:
    """Run; on violation, shrink to the minimal prefix and raise an
    ``AssertionError`` carrying the replay command (proptest-style)."""
    result = run_sim(seed, events, config=config, canary=canary,
                     profile=profile)
    if result.violation is None:
        return result
    first = result.violation.event_index
    shrunk = shrink_prefix(
        seed, events, config=config, canary=canary,
        first_failure=None if first >= events else first,
        profile=profile,
    )
    shrunk_result = run_sim(seed, shrunk, config=config, canary=canary,
                            profile=profile)
    tail = "\n".join(shrunk_result.log[-6:])
    raise AssertionError(
        f"sim invariant violation (seed={seed}, events={events}):\n"
        f"  {result.violation}\n"
        f"shrunk to the {shrunk}-event prefix "
        f"({shrunk_result.violation or 'violates only with more events'})\n"
        f"replay: {replay_command(seed, shrunk, canary, profile)}\n"
        f"last events of the shrunk run:\n{tail}"
    )


def knobs_from_env(
    environ: dict | None = None,
) -> tuple[int, int, str | None, str]:
    """Resolve (seed, events, canary, profile) from ``REPRO_SIM_*``."""
    env = os.environ if environ is None else environ
    seed = int(env.get("REPRO_SIM_SEED", DEFAULT_SEED))
    events = int(env.get("REPRO_SIM_EVENTS", DEFAULT_EVENTS))
    replay = env.get("REPRO_SIM_REPLAY", "")
    if replay:
        raw_seed, _, raw_events = replay.partition(":")
        seed = int(raw_seed)
        if raw_events:
            events = int(raw_events)
    canary = env.get("REPRO_SIM_CANARY") or None
    profile = env.get("REPRO_SIM_PROFILE", "mixed")
    return seed, events, canary, profile
