"""Seeded scenario schedules: workload and fault events, interleaved.

:class:`ScenarioSchedule.generate` pre-draws every event — kind and
parameters — from one ``random.Random(seed)`` stream, so the schedule
is a pure function of ``(seed, count, config)``.  Applying an event
touches only the world and the bus's virtual clock (never wall time or
an unseeded RNG), which makes the whole run replayable: same seed,
byte-identical event log.

Fault events reuse the existing catalogs — crashpoint injection
(:mod:`repro.fault.crashpoints`, including torn WAL writes), seeded
lossy/partitioned links (:mod:`repro.net.faults`), replica pauses that
drive gateway ejection, hub remounts, and client churn.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.errors import ConfigError, ReproError
from repro.fault.crashpoints import crash_armed
from repro.net import LinkFaults
from repro.net.wire import encode
from repro.query import HistoryQuery, KeywordQuery, StaleAnswer

from .world import KIND_GATEWAY, KIND_PUSH, SimWorld

#: Crashpoints reachable from the miner's ``certify_range`` call — the
#: certification path end to end (WAL framing, torn tails, checkpoint
#: renames, ecall dispatch, staging, batch certification, durable
#: journaling) plus the hub's fan-out points.
SIM_CRASH_POINTS = (
    "wal.append.pre_write",
    "wal.append.torn_write",
    "wal.append.post_fsync",
    "archive.checkpoint.pre_rename",
    "archive.checkpoint.post_rename",
    "enclave.ecall.pre",
    "enclave.ecall.post",
    "issuer.stage_block.post",
    "issuer.certify_staged.pre",
    "issuer.certify_staged.post",
    "durable.append.pre_wal",
    "durable.checkpoint.pre_seal",
    "pubsub.publish.pre",
    "pubsub.deliver.pre",
    "pubsub.publish.post",
)

#: (kind, weight) — the workload/fault mix one seeded stream draws from.
EVENT_WEIGHTS = (
    ("mine", 8),
    ("certify", 10),
    ("query", 16),
    ("query_many", 4),
    ("sync", 6),
    ("heartbeat", 6),
    ("drain", 6),
    ("toggle_sub", 3),
    ("churn", 2),
    ("crash", 4),
    ("lossy_link", 3),
    ("partition", 2),
    ("heal", 4),
    ("pause_replica", 2),
    ("resume_replicas", 3),
    ("hub_remount", 2),
    ("overload", 3),
    ("burst", 3),
    ("slow_replica", 2),
)

#: The saturation-heavy mix: mostly queries, bursts, deadline-bounded
#: batches, and slow replicas, with just enough mine/certify/heal to
#: keep the chain moving.  Selected with ``profile="overload"``.
OVERLOAD_WEIGHTS = (
    ("mine", 4),
    ("certify", 6),
    ("query", 14),
    ("query_many", 6),
    ("sync", 4),
    ("drain", 6),
    ("heal", 2),
    ("pause_replica", 1),
    ("resume_replicas", 4),
    ("overload", 12),
    ("burst", 12),
    ("slow_replica", 6),
)

#: Named event mixes ``ScenarioSchedule.generate`` can draw from.
WEIGHT_PROFILES = {
    "mixed": EVENT_WEIGHTS,
    "overload": OVERLOAD_WEIGHTS,
}


@dataclass(frozen=True, slots=True)
class SimEvent:
    """One scheduled step: a kind plus pre-drawn scalar parameters."""

    kind: str
    params: dict

    def describe(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.kind}({inner})" if inner else self.kind


class ScenarioSchedule:
    """A fixed, seed-derived sequence of :class:`SimEvent`."""

    def __init__(self, seed: int, events: tuple[SimEvent, ...]) -> None:
        self.seed = seed
        self.events = events

    @classmethod
    def generate(
        cls, seed: int, count: int, profile: str = "mixed"
    ) -> "ScenarioSchedule":
        table = WEIGHT_PROFILES.get(profile)
        if table is None:
            raise ConfigError(
                f"unknown schedule profile {profile!r}; "
                f"available: {', '.join(sorted(WEIGHT_PROFILES))}"
            )
        rng = random.Random(seed)
        kinds = [kind for kind, _ in table]
        weights = [weight for _, weight in table]
        events = tuple(
            _draw_event(rng, rng.choices(kinds, weights=weights)[0])
            for _ in range(count)
        )
        return cls(seed, events)


def _draw_event(rng: random.Random, kind: str) -> SimEvent:
    params: dict = {}
    if kind == "mine":
        params = {"txs": rng.randint(1, 3)}
    elif kind == "certify":
        params = {"upto": rng.randint(1, 4)}
    elif kind == "query":
        params = {
            "slot": rng.randrange(1024),
            "account": rng.randrange(64),
            "family": rng.choice(("history", "keyword")),
            "f1": round(rng.random(), 6),
            "f2": round(rng.random(), 6),
        }
    elif kind == "query_many":
        params = {
            "slot": rng.randrange(1024),
            "count": rng.randint(2, 4),
            "account": rng.randrange(64),
        }
    elif kind in ("sync", "heartbeat", "toggle_sub", "churn"):
        params = {"slot": rng.randrange(1024)}
    elif kind == "drain":
        params = {"ms": round(rng.uniform(20.0, 300.0), 3)}
    elif kind == "crash":
        params = {
            "point": rng.choice(SIM_CRASH_POINTS),
            "hit": rng.randint(1, 2),
            "cseed": rng.randrange(1 << 16),
            "upto": rng.randint(1, 3),
        }
    elif kind == "lossy_link":
        params = {
            "slot": rng.randrange(1024),
            "drop": round(rng.uniform(0.1, 0.35), 6),
            "peer": rng.randrange(1024),
        }
    elif kind == "partition":
        params = {"slot": rng.randrange(1024), "peer": rng.randrange(1024)}
    elif kind == "pause_replica":
        params = {"idx": rng.randrange(1024)}
    elif kind == "overload":
        params = {
            "slot": rng.randrange(1024),
            "count": rng.randint(6, 12),
            "budget": round(rng.uniform(60.0, 400.0), 3),
        }
    elif kind == "burst":
        params = {
            "idx": rng.randrange(1024),
            "count": rng.randint(16, 40),
            "account": rng.randrange(64),
        }
    elif kind == "slow_replica":
        params = {"idx": rng.randrange(1024), "factor": rng.randint(2, 5)}
    # heal / resume_replicas / hub_remount take no parameters
    return SimEvent(kind=kind, params=params)


# -- application -------------------------------------------------------------


def apply_event(world: SimWorld, event: SimEvent) -> str:
    """Apply one event; returns a deterministic outcome string that the
    world logs (heights, answer digests, error class names — never wall
    time, paths, or object ids)."""
    handler = _HANDLERS[event.kind]
    outcome = handler(world, event.params)
    world.bus.run_until_idle()
    return outcome


def _digest(value: bytes) -> str:
    return hashlib.sha256(value).hexdigest()[:12]


def _certify_upto(world: SimWorld, upto: int) -> str:
    pending = world.pending_blocks()[:upto]
    if not pending:
        return "noop"
    try:
        tips = world.miner.call("ci", "certify_range", tuple(pending))
    except ReproError as exc:
        return f"fail:{type(exc).__name__}@h{world.certified_height()}"
    finally:
        world.sync_serving_tier()
    return f"ok:h{tips[-1].header.height}" if tips else "ok:empty"


def _ev_mine(world: SimWorld, p: dict) -> str:
    height = world.mine_block(p["txs"])
    return f"h{height}"


def _ev_certify(world: SimWorld, p: dict) -> str:
    return _certify_upto(world, p["upto"])


def _build_request(world: SimWorld, entry, p: dict):
    height = entry.client.latest_header.height
    account = f"acct{p['account'] % world.config.accounts}"
    if p["family"] == "keyword":
        return KeywordQuery(index="keyword", keywords=(account,))
    t_from = 1 + int(p["f1"] * (height - 1))
    t_to = t_from + int(p["f2"] * (height - t_from))
    return HistoryQuery(
        index="history", account=account, t_from=t_from, t_to=t_to
    )


def _ev_query(world: SimWorld, p: dict) -> str:
    entry = world.pick(p["slot"])
    world.sync_serving_tier()
    try:
        entry.client.sync()
    except ReproError as exc:
        return f"{entry.name} sync-fail:{type(exc).__name__}"
    request = _build_request(world, entry, p)
    try:
        answer = entry.client.query(request)
    except ReproError as exc:
        return f"{entry.name} fail:{type(exc).__name__}"
    if isinstance(answer, StaleAnswer):
        # Graceful degradation: a previously-verified answer under an
        # older root.  Not recorded for the oracle-identity check — the
        # oracle executes at the *current* tip, and staleness is the
        # whole point of the fallback.
        return f"{entry.name} stale:h{answer.height}"
    world.record_answer(request, answer)
    return f"{entry.name} ans:{_digest(encode(answer))}"


def _ev_query_many(world: SimWorld, p: dict) -> str:
    entry = world.pick(p["slot"], kind=KIND_GATEWAY)
    if entry is None:
        return "noop"
    world.sync_serving_tier()
    try:
        entry.client.sync()
    except ReproError as exc:
        return f"{entry.name} sync-fail:{type(exc).__name__}"
    height = entry.client.latest_header.height
    requests = [
        HistoryQuery(
            index="history",
            account=f"acct{(p['account'] + i) % world.config.accounts}",
            t_from=1, t_to=height,
        )
        for i in range(p["count"])
    ]
    try:
        answers = entry.client.query_many(requests)
    except ReproError as exc:
        return f"{entry.name} fail:{type(exc).__name__}"
    for request, answer in zip(requests, answers):
        world.record_answer(request, answer)
    joined = b"".join(encode(answer) for answer in answers)
    return f"{entry.name} x{len(answers)}:{_digest(joined)}"


def _ev_sync(world: SimWorld, p: dict) -> str:
    entry = world.pick(p["slot"])
    world.sync_serving_tier()
    try:
        entry.client.sync()
    except ReproError as exc:
        return f"{entry.name} fail:{type(exc).__name__}"
    return f"{entry.name} h{entry.client.latest_header.height}"


def _ev_heartbeat(world: SimWorld, p: dict) -> str:
    entry = world.pick(p["slot"], kind=KIND_PUSH)
    if entry is None or not entry.subscribed:
        return "noop"
    try:
        entry.client.heartbeat()
    except ReproError as exc:
        return f"{entry.name} fail:{type(exc).__name__}"
    height = (
        entry.client.latest_header.height
        if entry.client.latest_header else 0
    )
    return f"{entry.name} h{height}"


def _ev_drain(world: SimWorld, p: dict) -> str:
    world.bus.run_for(p["ms"])
    return f"+{p['ms']}ms"


def _ev_toggle_sub(world: SimWorld, p: dict) -> str:
    entry = world.pick(p["slot"], kind=KIND_PUSH)
    if entry is None:
        return "noop"
    try:
        if entry.subscribed:
            entry.client.unsubscribe()
            entry.subscribed = False
            return f"{entry.name} off"
        entry.client.subscribe()
        entry.subscribed = True
        return f"{entry.name} on"
    except ReproError as exc:
        return f"{entry.name} fail:{type(exc).__name__}"


def _ev_churn(world: SimWorld, p: dict) -> str:
    old, new = world.churn_client(p["slot"])
    return f"{old}->{new}"


def _ev_crash(world: SimWorld, p: dict) -> str:
    if not world.pending_blocks():
        world.mine_block(1)
    with crash_armed(p["point"], hit=p["hit"], seed=p["cseed"]) as schedule:
        outcome = _certify_upto(world, p["upto"])
    fired = "fired" if schedule.fired else "unreached"
    return f"{p['point']}:{p['hit']} {fired} {outcome}"


def _ev_lossy_link(world: SimWorld, p: dict) -> str:
    return _fault_link(world, p, drop=p["drop"])


def _ev_partition(world: SimWorld, p: dict) -> str:
    return _fault_link(world, p, drop=1.0)


def _fault_link(world: SimWorld, p: dict, drop: float) -> str:
    entry = world.pick(p["slot"])
    peers = ("ci",) + world.replica_names
    peer = peers[p["peer"] % len(peers)]
    faults = LinkFaults(drop_rate=drop)
    world.injector.set_link(entry.name, peer, faults)
    world.injector.set_link(peer, entry.name, faults)
    world.faulted_links.add((entry.name, peer))
    return f"{entry.name}<->{peer} drop={drop}"


def _ev_heal(world: SimWorld, _p: dict) -> str:
    healed = len(world.faulted_links)
    for a, b in sorted(world.faulted_links):
        world.injector.set_link(a, b, LinkFaults())
        world.injector.set_link(b, a, LinkFaults())
    world.faulted_links.clear()
    return f"links={healed}"


def _ev_pause_replica(world: SimWorld, p: dict) -> str:
    name = world.replica_names[p["idx"] % len(world.replica_names)]
    world.replicas[name].server.paused = True
    world.paused_replicas.add(name)
    return name


def _ev_resume_replicas(world: SimWorld, _p: dict) -> str:
    resumed = len(world.paused_replicas)
    for name in sorted(world.paused_replicas):
        world.replicas[name].server.paused = False
    world.paused_replicas.clear()
    restored = world.restore_replica_speeds()
    if resumed:
        world.bus.run_for(500.0)  # let gateway probes readmit them
    return f"replicas={resumed} slowed={restored}"


def _ev_hub_remount(world: SimWorld, _p: dict) -> str:
    hub = world.remount_hub()
    return f"seq={hub.seq}"


def _ev_overload(world: SimWorld, p: dict) -> str:
    """A deadline-bounded batch through a gateway client: the whole
    resilience stack at once — deadline propagation (budget shrinks per
    hop, doomed work refused), shedding with failover, hedging, and —
    when the tier saturates entirely — graceful stale degradation."""
    entry = world.pick(p["slot"], kind=KIND_GATEWAY)
    if entry is None:
        return "noop"
    world.sync_serving_tier()
    try:
        entry.client.sync()
    except ReproError as exc:
        return f"{entry.name} sync-fail:{type(exc).__name__}"
    height = entry.client.latest_header.height
    requests = [
        HistoryQuery(
            index="history",
            account=f"acct{(p['slot'] + i) % world.config.accounts}",
            t_from=1, t_to=height,
        )
        for i in range(p["count"])
    ]
    deadline = world.bus.clock_ms + p["budget"]
    try:
        answers = entry.client.query_many(requests, deadline_ms=deadline)
    except ReproError as exc:
        return f"{entry.name} fail:{type(exc).__name__}"
    for request, answer in zip(requests, answers):
        world.record_answer(request, answer)
    joined = b"".join(encode(answer) for answer in answers)
    return f"{entry.name} x{len(answers)}:{_digest(joined)}"


def _ev_burst(world: SimWorld, p: dict) -> str:
    """An open-loop flood straight at one replica: the load generator
    begin()s without waiting for responses, so the busy worker's queue
    delay climbs until admission control sheds.  Every request is then
    abandoned; late responses exercise the client's bounded sweep."""
    name = world.replica_names[p["idx"] % len(world.replica_names)]
    server = world.replicas[name].server
    request = HistoryQuery(
        index="history",
        account=f"acct{p['account'] % world.config.accounts}",
        t_from=1, t_to=max(1, world.provider.node.height),
    )
    shed_before = server.requests_shed
    pending = [
        world.load.begin(name, "execute", request) for _ in range(p["count"])
    ]
    world.bus.run_until_idle()
    for request_id in pending:
        world.load.abandon(request_id)
    shed = server.requests_shed - shed_before
    return f"{name} n={p['count']} shed={shed}"


def _ev_slow_replica(world: SimWorld, p: dict) -> str:
    name = world.replica_names[p["idx"] % len(world.replica_names)]
    world.slow_replica(name, float(p["factor"]))
    return f"{name} x{p['factor']}"


_HANDLERS = {
    "mine": _ev_mine,
    "certify": _ev_certify,
    "query": _ev_query,
    "query_many": _ev_query_many,
    "sync": _ev_sync,
    "heartbeat": _ev_heartbeat,
    "drain": _ev_drain,
    "toggle_sub": _ev_toggle_sub,
    "churn": _ev_churn,
    "crash": _ev_crash,
    "lossy_link": _ev_lossy_link,
    "partition": _ev_partition,
    "heal": _ev_heal,
    "pause_replica": _ev_pause_replica,
    "resume_replicas": _ev_resume_replicas,
    "hub_remount": _ev_hub_remount,
    "overload": _ev_overload,
    "burst": _ev_burst,
    "slow_replica": _ev_slow_replica,
}
