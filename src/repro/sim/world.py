"""The simulated deployment: every subsystem of the stack, one bus.

:class:`SimWorld` composes a full DCert deployment on the virtual-clock
:class:`~repro.net.bus.MessageBus` — a deterministic chain, a
:class:`~repro.core.recovery.DurableIssuer` (WAL + sealed checkpoints)
fronted by an :class:`~repro.core.issuer.IssuerService` under a
:class:`~repro.net.supervisor.ServiceSupervisor`, a
:class:`~repro.net.pubsub.SubscriptionHub` embedded on the same
endpoint, N busy-worker :class:`~repro.query.provider.QueryService`
replicas over a shared provider, and a mixed fleet of
polling / gateway-cached / push-subscribed remote clients.

Everything is derived from fixed seeds: the same
:class:`SimConfig` builds byte-identical worlds, and the event log
(:attr:`SimWorld.events`) fingerprints a whole run.  A second,
never-networked :class:`~repro.query.provider.QueryServiceProvider`
(the *oracle*) ingests the same certified blocks so invariants can
compare every verified answer against honest local execution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.chain import ChainBuilder
from repro.chain.genesis import make_genesis
from repro.chain.transaction import sign_transaction
from repro.chain.vm import VM
from repro.contracts import BLOCKBENCH
from repro.core import (
    ClientConfig,
    IssuerService,
    compute_expected_measurement,
    connect,
)
from repro.core.recovery import DurableIssuer, recover_issuer
from repro.crypto import generate_keypair
from repro.errors import ReproError
from repro.net import (
    AdmissionPolicy,
    CircuitBreakerPolicy,
    FaultInjector,
    HealthPolicy,
    HedgePolicy,
    IssuerSupervisor,
    MessageBus,
    QueryGateway,
    RestartPolicy,
    RetryPolicy,
    SubscriptionHub,
)
from repro.net.rpc import RpcClient
from repro.query import QueryService, QueryServiceProvider
from repro.query.indexes import AccountHistoryIndexSpec, KeywordIndexSpec
from repro.sgx.attestation import AttestationService
from repro.sgx.platform import SGXPlatform
from repro.storage import ChainArchive

#: Client kinds in the mixed fleet.
KIND_POLL = "poll"      # sync + query straight at the replicas
KIND_GATEWAY = "gw"     # query through an owned QueryGateway + answer cache
KIND_PUSH = "push"      # subscribed to the hub, heartbeat-driven


def _fresh_vm() -> VM:
    vm = VM()
    for factory in BLOCKBENCH.values():
        vm.deploy(factory())
    return vm


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Deterministic knobs for one simulated deployment."""

    network: str = "sim"
    premine: int = 4            # blocks mined *and* certified before boot
    replicas: int = 3
    pollers: int = 2
    gateway_clients: int = 2
    subscribers: int = 2
    accounts: int = 4
    difficulty_bits: int = 4
    checkpoint_interval: int = 4
    service_time_ms: float = 2.0
    latency_ms: float = 5.0
    #: Queue-delay threshold (ms) past which an admission-armed replica
    #: sheds with OVERLOADED + retry_after instead of queueing doomed
    #: work.  Low enough that the ``burst`` event reliably trips it.
    shed_delay_ms: float = 25.0
    admission_queue_limit: int = 32

    def fleet_size(self) -> int:
        return self.pollers + self.gateway_clients + self.subscribers


@dataclass
class SimClient:
    """Fleet bookkeeping around one remote superlight client."""

    name: str
    kind: str
    client: object
    gateway: QueryGateway | None = None
    subscribed: bool = False


@dataclass
class SimWorld:
    """The composed deployment plus the run's deterministic event log."""

    config: SimConfig
    builder: ChainBuilder
    bus: MessageBus
    injector: FaultInjector
    archive: ChainArchive
    service: IssuerService
    supervisor: IssuerSupervisor
    hub: SubscriptionHub
    provider: QueryServiceProvider
    oracle: QueryServiceProvider
    replicas: dict[str, QueryService]
    measurement: bytes
    ias: AttestationService
    platform: SGXPlatform
    specs: list
    miner: RpcClient
    load: RpcClient
    user: object
    fleet: list[SimClient] = field(default_factory=list)
    events: list[str] = field(default_factory=list)
    answers: list[tuple[object, object]] = field(default_factory=list)
    faulted_links: set[tuple[str, str]] = field(default_factory=set)
    paused_replicas: set[str] = field(default_factory=set)
    slowed_replicas: dict[str, float] = field(default_factory=dict)
    nonce: int = 0
    spawned: int = 0
    recoveries: int = 0
    remounts: int = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, config: SimConfig, root: Path) -> "SimWorld":
        """Deterministically compose the whole deployment under ``root``
        (the WAL's directory; its *path* never enters the event log)."""
        specs = [
            AccountHistoryIndexSpec(name="history"),
            KeywordIndexSpec(name="keyword"),
        ]
        user = generate_keypair(b"sim-user")
        builder = ChainBuilder(
            difficulty_bits=config.difficulty_bits, network=config.network
        )
        ias = AttestationService(seed=b"sim-ias")
        platform = SGXPlatform(seed=b"sim-platform")
        archive = ChainArchive(Path(root) / "ci.wal")
        genesis, state = make_genesis(network=config.network)
        durable = DurableIssuer.create(
            archive, genesis, state, _fresh_vm(), builder.pow,
            index_specs=specs, platform=platform, ias=ias,
            key_seed=b"sim-enclave",
            checkpoint_interval=config.checkpoint_interval,
        )

        bus = MessageBus(default_latency_ms=config.latency_ms)
        injector = FaultInjector(seed=1789)
        bus.install_faults(injector)
        service = IssuerService(bus, "ci", durable)
        hub = SubscriptionHub.embedded(service)
        hub.attach(durable)

        sp_genesis, sp_state = make_genesis(network=config.network)
        provider = QueryServiceProvider(
            sp_genesis, sp_state, _fresh_vm(), builder.pow, specs
        )
        or_genesis, or_state = make_genesis(network=config.network)
        oracle = QueryServiceProvider(
            or_genesis, or_state, _fresh_vm(), builder.pow, specs
        )
        replica_names = [f"sp{i + 1}" for i in range(config.replicas)]
        admission = AdmissionPolicy(
            shed_delay_ms=config.shed_delay_ms,
            queue_limit=config.admission_queue_limit,
        )
        replicas = {
            name: QueryService(
                bus, name, provider,
                service_time_ms=config.service_time_ms,
                admission=admission,
            )
            for name in replica_names
        }

        measurement = compute_expected_measurement(
            genesis.header.header_hash(), ias.public_key, _fresh_vm(),
            builder.pow.difficulty_bits, {spec.name: spec for spec in specs},
        )
        miner = RpcClient(
            bus, "miner",
            policy=RetryPolicy(
                timeout_ms=400.0, max_attempts=6, backoff_base_ms=30.0
            ),
        )
        # A fire-and-forget flood source for the ``burst`` overload
        # event: it begin()s without waiting, so replica queues actually
        # build up and admission control has something to shed.
        load = RpcClient(
            bus, "loadgen",
            policy=RetryPolicy(timeout_ms=400.0, max_attempts=1),
        )

        world = cls(
            config=config, builder=builder, bus=bus, injector=injector,
            archive=archive, service=service,
            supervisor=None,  # set below; restore() closes over the world
            hub=hub, provider=provider, oracle=oracle, replicas=replicas,
            measurement=measurement, ias=ias, platform=platform,
            specs=specs, miner=miner, load=load, user=user,
        )

        def restore():
            genesis2, state2 = make_genesis(network=config.network)
            restored = recover_issuer(
                archive, genesis2, state2, _fresh_vm(), builder.pow,
                index_specs=specs, platform=platform, ias=ias,
                checkpoint_interval=config.checkpoint_interval,
            )
            # The old hub hooked the *dead* issuer's on_certified list;
            # a restart remounts a fresh hub on the same endpoint.
            world.hub = world._remount_hub(restored)
            world.recoveries += 1
            return restored

        world.supervisor = IssuerSupervisor(
            service, restore,
            policy=RestartPolicy(max_attempts=5, backoff_base_ms=40.0),
        )

        # Premine + certify the opening stretch, then boot the fleet
        # against a healthy, fully-synced deployment.
        for _ in range(config.premine):
            world.mine_block(1)
        for block in builder.blocks[1:]:
            durable.process_block(block)
        world.sync_serving_tier()
        for _ in range(config.pollers):
            world.spawn_client(KIND_POLL)
        for _ in range(config.gateway_clients):
            world.spawn_client(KIND_GATEWAY)
        for _ in range(config.subscribers):
            world.spawn_client(KIND_PUSH)
        bus.run_until_idle()
        return world

    # -- issuer-side helpers -------------------------------------------------

    @property
    def issuer(self):
        """The *current* backing issuer — identity changes on restarts."""
        return self.service.issuer

    def certified_height(self) -> int:
        certified = self.issuer.certified
        return certified[-1].block.header.height if certified else 0

    def pending_blocks(self) -> list:
        """Mined blocks not yet certified (certify_range is idempotent,
        so resubmitting from the certified tip is always safe)."""
        return self.builder.blocks[self.certified_height() + 1:]

    def mine_block(self, txs: int) -> int:
        """Mine one block of deterministic kvstore puts; returns height."""
        batch = []
        for _ in range(max(1, txs)):
            key = f"acct{self.nonce % self.config.accounts}"
            batch.append(
                sign_transaction(
                    self.user.private, self.nonce, "kvstore", "put",
                    (key, f"v{self.nonce}"),
                )
            )
            self.nonce += 1
        self.builder.add_block(batch)
        return self.builder.height

    def sync_serving_tier(self) -> int:
        """Ingest every certified block into the serving provider *and*
        the oracle, keeping both exactly at the certified tip."""
        tip = self.certified_height()
        for tier in (self.provider, self.oracle):
            while tier.node.height < tip:
                tier.ingest_block(self.builder.blocks[tier.node.height + 1])
        return tip

    def _remount_hub(self, issuer) -> SubscriptionHub:
        """A replacement hub process on the same endpoint; the stream
        position is recovered from the issuer's certified count."""
        self.hub.detach()
        hub = SubscriptionHub(server=self.service.server)
        hub.attach(issuer, announce_existing=True)
        self.remounts += 1
        return hub

    def remount_hub(self) -> SubscriptionHub:
        self.hub = self._remount_hub(self.issuer)
        return self.hub

    # -- fleet helpers -------------------------------------------------------

    @property
    def replica_names(self) -> tuple[str, ...]:
        return tuple(self.replicas)

    def spawn_client(self, kind: str) -> SimClient:
        """Join a new client of ``kind``; bootstrap/subscribe are
        best-effort (the deployment may be degraded mid-run)."""
        self.spawned += 1
        name = f"{kind}{self.spawned}"
        # Jittered backoff desynchronizes the fleet's retry waves; each
        # client's RNG is seeded from its (unique) name, so the jitter
        # is deterministic per run.
        policy = RetryPolicy(
            timeout_ms=300.0, max_attempts=3, backoff_base_ms=25.0,
            jitter=0.1,
        )
        gateway = None
        kwargs = dict(
            measurement=self.measurement,
            ias_public_key=self.ias.public_key,
            bus=self.bus, name=name, issuers=("ci",), policy=policy,
        )
        if kind == KIND_GATEWAY:
            gateway = QueryGateway(
                self.bus, f"gwy{self.spawned}", list(self.replica_names),
                balancer="round-robin", seed=self.spawned,
                policy=RetryPolicy(
                    timeout_ms=400.0, max_attempts=2, jitter=0.1
                ),
                health=HealthPolicy(failure_threshold=2, probe_base_ms=200.0),
                breaker=CircuitBreakerPolicy(),
                hedge=HedgePolicy(),
            )
            kwargs.update(gateway=gateway, degrade_to_stale=True)
        else:
            kwargs.update(providers=self.replica_names)
        if kind == KIND_PUSH:
            kwargs.update(hub="ci")
        client = connect(ClientConfig(**kwargs))
        entry = SimClient(name=name, kind=kind, client=client, gateway=gateway)
        try:
            client.bootstrap()
        except ReproError:
            pass  # degraded world; a later sync event adopts the tip
        if kind == KIND_PUSH:
            try:
                client.subscribe()
                entry.subscribed = True
            except ReproError:
                entry.subscribed = False
        self.fleet.append(entry)
        return entry

    def churn_client(self, slot: int) -> tuple[str, str]:
        """Retire one client, spawn a same-kind replacement (fresh name,
        fresh state) — the fleet size stays constant."""
        index = slot % len(self.fleet)
        old = self.fleet.pop(index)
        if old.kind == KIND_PUSH and old.subscribed:
            try:
                old.client.unsubscribe()
            except ReproError:
                pass  # the lease reaper collects it eventually
        fresh = self.spawn_client(old.kind)
        return old.name, fresh.name

    def slow_replica(self, name: str, factor: float) -> float:
        """Multiply ``name``'s execute service time by ``factor`` (from
        its original speed — repeated slowdowns do not compound); the
        base speed is remembered for :meth:`restore_replica_speeds`."""
        server = self.replicas[name].server
        base = self.slowed_replicas.setdefault(
            name, server._service_times.get("execute", server.service_time_ms)
        )
        server._service_times["execute"] = base * factor
        return base

    def restore_replica_speeds(self) -> int:
        """Undo every :meth:`slow_replica`; returns how many were slow."""
        restored = len(self.slowed_replicas)
        for name, base in sorted(self.slowed_replicas.items()):
            self.replicas[name].server._service_times["execute"] = base
        self.slowed_replicas.clear()
        return restored

    def pick(self, slot: int, kind: str | None = None) -> SimClient | None:
        pool = [
            c for c in self.fleet if kind is None or c.kind == kind
        ]
        if not pool:
            return None
        return pool[slot % len(pool)]

    # -- event log -----------------------------------------------------------

    def log(self, line: str) -> None:
        self.events.append(line)

    def record_answer(self, request, answer) -> None:
        self.answers.append((request, answer))

    def drain_answers(self) -> list[tuple[object, object]]:
        drained, self.answers = self.answers, []
        return drained

    def fingerprint(self) -> str:
        """SHA-256 over the event log — the whole run's identity."""
        payload = "\n".join(self.events).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()
