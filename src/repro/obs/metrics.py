"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The paper's headline claims are quantitative — 2.97 KB of client
state, sub-millisecond validation, Ecall/EPC-paging-dominated issuer
cost (Fig. 8) — so the hot paths (enclave, issuer, RPC, query,
client) are instrumented against one process-local
:class:`MetricsRegistry`.  Design constraints:

* **dependency-free** — plain dicts and lists, stdlib only;
* **near-zero cost when off** — every module-level helper
  (:func:`inc`, :func:`observe`, :func:`set_gauge`) checks one module
  global and returns immediately while observability is disabled,
  which is the default;
* **wire-safe snapshots** — :meth:`MetricsRegistry.snapshot` returns
  only primitives, lists, and string-keyed dicts, so a snapshot
  round-trips through :mod:`repro.net.wire` and serializes to JSON
  for ``repro metrics --json`` and the BENCH result files.

Histograms use *fixed* bucket boundaries chosen at first observation
(defaults below), so two snapshots of the same metric are always
mergeable and comparable across runs.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Iterator

#: Default boundaries for latency histograms (milliseconds).
LATENCY_MS_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0,
)

#: Default boundaries for size histograms (bytes).
SIZE_BYTES_BUCKETS: tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304,
)


class Histogram:
    """A fixed-boundary histogram with count/sum/min/max summaries.

    Boundaries are upper-inclusive: an observation lands in the first
    bucket whose boundary is >= the value; values beyond the last
    boundary land in the overflow bucket (reported with a ``None``
    upper bound).
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "total", "minimum", "maximum")

    def __init__(self, boundaries: tuple[float, ...] = LATENCY_MS_BUCKETS) -> None:
        self.boundaries = tuple(sorted(boundaries))
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Plain-dict summary; the overflow bucket's bound is ``None``."""
        bounds = list(self.boundaries) + [None]
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "buckets": [
                [bound, count]
                for bound, count in zip(bounds, self.bucket_counts)
            ],
        }


class MetricsRegistry:
    """Counters, gauges, histograms, and completed trace spans.

    One global instance (:func:`registry`) backs the module-level
    helpers; independent registries can be created for tests.
    """

    def __init__(self, *, max_spans: int = 512) -> None:
        self.max_spans = max_spans
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.spans: list[dict] = []
        #: Optional virtual-clock source (e.g. ``lambda: bus.clock_ms``)
        #: stamped onto trace spans next to wall time.
        self.virtual_clock: Callable[[], float] | None = None

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def histogram(
        self, name: str, boundaries: tuple[float, ...] | None = None
    ) -> Histogram:
        """Get-or-create; ``boundaries`` only applies on first creation."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(boundaries or LATENCY_MS_BUCKETS)
            self.histograms[name] = hist
        return hist

    def observe(
        self, name: str, value: float, boundaries: tuple[float, ...] | None = None
    ) -> None:
        self.histogram(name, boundaries).observe(value)

    def record_span(self, span: dict) -> None:
        """Keep the most recent ``max_spans`` completed spans."""
        self.spans.append(span)
        if len(self.spans) > self.max_spans:
            del self.spans[: len(self.spans) - self.max_spans]

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything recorded, as primitives/lists/str-keyed dicts only.

        The result round-trips through :func:`repro.net.wire.encode` /
        ``decode`` unchanged and serializes with :func:`json.dumps`.
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.snapshot()
                for name, hist in self.histograms.items()
            },
            "spans": [dict(span) for span in self.spans],
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()


# -- the global switch and registry ----------------------------------------

_REGISTRY = MetricsRegistry()

#: Observability is opt-in: off unless REPRO_OBS is set to a truthy
#: value, so uninstrumented runs pay only one bool check per call site.
_ENABLED = os.environ.get("REPRO_OBS", "") not in ("", "0")


def registry() -> MetricsRegistry:
    """The process-global registry behind the module-level helpers."""
    return _REGISTRY


def enabled() -> bool:
    return _ENABLED


def set_enabled(flag: bool) -> None:
    global _ENABLED
    _ENABLED = bool(flag)


@contextmanager
def observability(on: bool = True) -> Iterator[MetricsRegistry]:
    """Enable (or disable) observability within a scope, then restore."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(on)
    try:
        yield _REGISTRY
    finally:
        _ENABLED = previous


def set_virtual_clock(clock: Callable[[], float] | None) -> None:
    """Install the virtual-time source trace spans stamp (or ``None``)."""
    _REGISTRY.virtual_clock = clock


# -- near-zero-cost recording helpers ---------------------------------------
#
# Instrumented call sites go through these: when observability is off
# each is one global load, one bool test, one return.

def inc(name: str, value: float = 1) -> None:
    if _ENABLED:
        _REGISTRY.inc(name, value)


def set_gauge(name: str, value: float) -> None:
    if _ENABLED:
        _REGISTRY.set_gauge(name, value)


def observe(
    name: str, value: float, boundaries: tuple[float, ...] | None = None
) -> None:
    if _ENABLED:
        _REGISTRY.observe(name, value, boundaries)


def snapshot() -> dict:
    return _REGISTRY.snapshot()


def reset() -> None:
    _REGISTRY.reset()
