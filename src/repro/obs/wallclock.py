"""The library's only wall-clock reader.

Determinism is a code-level contract here (see ``docs/analysis.md``,
rule DET01): logic must take time from the virtual bus clock
(``bus.clock_ms``) so that the same seed replays byte-identically,
and anything that genuinely wants *wall* time — latency measurement
for metrics, CLI progress lines, the benchmark harness, the cost
model's busy-wait — must go through this module.  That keeps every
wall-clock consumer in one audited, greppable place; the static
analyzer flags ``time.time``/``time.perf_counter``/``datetime.now``
calls anywhere else.

Nothing measured here may influence control flow or any value that
reaches the simulation event log: wall time feeds *observations*
(histograms, trace spans, printed durations), never decisions.  The
regression test for that contract jitters :func:`now_s` and asserts
the sim fingerprint does not move
(``tests/analysis/test_wallclock_isolation.py``).
"""

from __future__ import annotations

import time

__all__ = ["now_s", "now_ms", "elapsed_s", "elapsed_ms", "busy_wait_s"]


def now_s() -> float:
    """Monotonic wall time in seconds (measurement only, never logic)."""
    return time.perf_counter()


def now_ms() -> float:
    """Monotonic wall time in milliseconds (measurement only)."""
    return time.perf_counter() * 1000.0


def elapsed_s(started_s: float) -> float:
    """Seconds since a :func:`now_s` reading."""
    return now_s() - started_s


def elapsed_ms(started_s: float) -> float:
    """Milliseconds since a :func:`now_s` reading."""
    return (now_s() - started_s) * 1000.0


def busy_wait_s(seconds: float) -> None:
    """Spin for ``seconds`` of wall time.

    The cost model's instrument for making modeled enclave overheads
    appear in benchmark wall clocks (:mod:`repro.sgx.costs`); a no-op
    for non-positive durations.
    """
    if seconds <= 0:
        return
    deadline = now_s() + seconds
    while now_s() < deadline:
        pass
