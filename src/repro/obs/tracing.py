"""Nesting trace spans stamped with wall time *and* virtual bus time.

``with trace_span("issuer.gen_cert"):`` brackets one unit of work.
On exit the span

* feeds the wall-clock duration into the histogram
  ``"<name>_ms"`` (so every span automatically has a latency
  distribution in :func:`repro.obs.metrics.snapshot`), and
* records a span dict — name, parent span, nesting depth, wall-ms,
  and, when a virtual clock is installed
  (:func:`repro.obs.metrics.set_virtual_clock`), the virtual-time
  delta ``vclock_ms`` — into the registry's bounded span buffer.

Wall time measures *computation* (what Fig. 8's breakdowns count);
virtual time measures *simulated network latency* (what the RPC layer
spends on the :class:`repro.net.bus.MessageBus` clock).  The two
advance independently, which is why spans stamp both.

Spans nest through a plain stack: the simulation is single-threaded
by construction (one deterministic bus drives everything), so no
thread-local machinery is needed.  When observability is disabled,
:func:`trace_span` returns a shared no-op context manager — no
allocation, no clock reads.
"""

from __future__ import annotations


from repro.obs import metrics
from repro.obs.wallclock import elapsed_ms, now_s


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: The live span stack (names), innermost last.
_STACK: list[str] = []


class Span:
    """One active span; created by :func:`trace_span` when enabled."""

    __slots__ = ("name", "_registry", "_wall_started", "_virtual_started")

    def __init__(self, name: str, reg: metrics.MetricsRegistry) -> None:
        self.name = name
        self._registry = reg
        self._wall_started = 0.0
        self._virtual_started: float | None = None

    def __enter__(self) -> "Span":
        _STACK.append(self.name)
        clock = self._registry.virtual_clock
        self._virtual_started = clock() if clock is not None else None
        self._wall_started = now_s()
        return self

    def __exit__(self, *exc: object) -> bool:
        wall_ms = elapsed_ms(self._wall_started)
        _STACK.pop()
        clock = self._registry.virtual_clock
        vclock_ms = (
            clock() - self._virtual_started
            if clock is not None and self._virtual_started is not None
            else None
        )
        self._registry.observe(f"{self.name}_ms", wall_ms)
        self._registry.record_span(
            {
                "name": self.name,
                "parent": _STACK[-1] if _STACK else None,
                "depth": len(_STACK),
                "wall_ms": wall_ms,
                "vclock_ms": vclock_ms,
            }
        )
        return False


def trace_span(name: str) -> "Span | _NullSpan":
    """Bracket one timed unit of work; no-op while observability is off.

    The enabled/disabled decision is taken at ``with`` time: a span
    that *starts* enabled records on exit even if the switch flips
    mid-flight, so records are never half-missing.
    """
    if not metrics.enabled():
        return _NULL_SPAN
    return Span(name, metrics.registry())


def current_span() -> str | None:
    """The innermost active span's name (``None`` outside any span)."""
    return _STACK[-1] if _STACK else None
