"""Observability: process-local metrics and trace spans.

The measurement substrate for the whole reproduction — see
``docs/observability.md``.  Everything lives behind one global
enable/disable switch that is near-zero-cost when off (the default):

* :mod:`metrics` — :class:`MetricsRegistry` (counters, gauges,
  fixed-bucket histograms), the global switch, and the module-level
  recording helpers the instrumented hot paths call.
* :mod:`tracing` — :func:`trace_span` context managers that nest and
  stamp both wall time and the virtual bus clock.

Typical use::

    from repro import obs

    with obs.observability():      # or obs.set_enabled(True) / REPRO_OBS=1
        run_workload()
        snap = obs.snapshot()      # plain dict; wire- and JSON-safe
"""

from repro.obs.metrics import (
    LATENCY_MS_BUCKETS,
    SIZE_BYTES_BUCKETS,
    Histogram,
    MetricsRegistry,
    enabled,
    inc,
    observability,
    observe,
    registry,
    reset,
    set_enabled,
    set_gauge,
    set_virtual_clock,
    snapshot,
)
from repro.obs.tracing import current_span, trace_span

__all__ = [
    "Histogram",
    "LATENCY_MS_BUCKETS",
    "MetricsRegistry",
    "SIZE_BYTES_BUCKETS",
    "current_span",
    "enabled",
    "inc",
    "observability",
    "observe",
    "registry",
    "reset",
    "set_enabled",
    "set_gauge",
    "set_virtual_clock",
    "snapshot",
    "trace_span",
]
