"""secp256k1 group arithmetic and ECDSA sign/verify."""

import pytest

from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import CryptoError, SignatureError


def test_generator_is_on_curve():
    assert ecdsa.is_on_curve(ecdsa.generator())


def test_point_addition_identities():
    g = ecdsa.generator()
    assert ecdsa.point_add(g, None) == g
    assert ecdsa.point_add(None, g) == g
    # P + (-P) = infinity
    neg = (g[0], ecdsa.P - g[1])
    assert ecdsa.point_add(g, neg) is None


def test_scalar_multiplication_matches_repeated_addition():
    g = ecdsa.generator()
    accumulated = None
    for k in range(1, 8):
        accumulated = ecdsa.point_add(accumulated, g)
        assert ecdsa.point_mul(g, k) == accumulated


def test_scalar_multiplication_wraps_group_order():
    g = ecdsa.generator()
    assert ecdsa.point_mul(g, ecdsa.N) is None
    assert ecdsa.point_mul(g, ecdsa.N + 5) == ecdsa.point_mul(g, 5)


def test_derived_public_point_on_curve():
    point = ecdsa.derive_public_point(123456789)
    assert ecdsa.is_on_curve(point)


def test_derive_rejects_out_of_range_scalars():
    with pytest.raises(CryptoError):
        ecdsa.derive_public_point(0)
    with pytest.raises(CryptoError):
        ecdsa.derive_public_point(ecdsa.N)


def test_sign_verify_roundtrip():
    secret = 0xDEADBEEF
    public = ecdsa.derive_public_point(secret)
    digest = sha256(b"message")
    signature = ecdsa.sign_digest(secret, digest)
    assert ecdsa.verify_digest(public, digest, signature)


def test_verify_rejects_wrong_message():
    secret = 0xDEADBEEF
    public = ecdsa.derive_public_point(secret)
    signature = ecdsa.sign_digest(secret, sha256(b"message"))
    assert not ecdsa.verify_digest(public, sha256(b"other"), signature)


def test_verify_rejects_wrong_key():
    signature = ecdsa.sign_digest(0xDEADBEEF, sha256(b"message"))
    other_public = ecdsa.derive_public_point(0xCAFEBABE)
    assert not ecdsa.verify_digest(other_public, sha256(b"message"), signature)


def test_signatures_are_deterministic_rfc6979():
    digest = sha256(b"message")
    assert ecdsa.sign_digest(42, digest) == ecdsa.sign_digest(42, digest)


def test_signatures_are_low_s():
    for message in (b"a", b"b", b"c", b"d"):
        _, s = ecdsa.sign_digest(42, sha256(message))
        assert s <= ecdsa.N // 2


def test_verify_rejects_out_of_range_signature_components():
    public = ecdsa.derive_public_point(42)
    digest = sha256(b"message")
    assert not ecdsa.verify_digest(public, digest, (0, 1))
    assert not ecdsa.verify_digest(public, digest, (1, ecdsa.N))


def test_verify_rejects_invalid_public_point():
    digest = sha256(b"message")
    with pytest.raises(SignatureError):
        ecdsa.verify_digest((1, 2), digest, (1, 1))


def test_rfc6979_nonce_in_range_and_message_dependent():
    k1 = ecdsa.rfc6979_nonce(42, sha256(b"m1"))
    k2 = ecdsa.rfc6979_nonce(42, sha256(b"m2"))
    assert 1 <= k1 < ecdsa.N
    assert k1 != k2
