"""Key generation and SEC 1 compressed serialization."""

import pytest

from repro.crypto.keys import PrivateKey, PublicKey, generate_keypair
from repro.errors import CryptoError


def test_seeded_generation_is_deterministic():
    assert generate_keypair(b"seed") == generate_keypair(b"seed")
    assert generate_keypair(b"seed") != generate_keypair(b"other")


def test_unseeded_generation_is_unique():
    assert generate_keypair() != generate_keypair()


def test_public_key_roundtrip():
    keypair = generate_keypair(b"roundtrip")
    encoded = keypair.public.to_bytes()
    assert len(encoded) == 33
    assert encoded[0] in (2, 3)
    assert PublicKey.from_bytes(encoded) == keypair.public


def test_public_key_rejects_malformed_bytes():
    with pytest.raises(CryptoError):
        PublicKey.from_bytes(b"\x04" + bytes(32))
    with pytest.raises(CryptoError):
        PublicKey.from_bytes(b"\x02" + bytes(31))


def test_public_key_rejects_off_curve_x():
    # x = 5 is not on secp256k1 (5^3 + 7 is not a QR mod p).
    with pytest.raises(CryptoError):
        PublicKey.from_bytes(b"\x02" + (5).to_bytes(32, "big"))


def test_public_key_rejects_off_curve_point():
    with pytest.raises(CryptoError):
        PublicKey(1, 1)


def test_private_key_range_enforced():
    with pytest.raises(CryptoError):
        PrivateKey(0)


def test_keypair_is_consistent():
    keypair = generate_keypair(b"consistency")
    assert keypair.private.public_key() == keypair.public


def test_fingerprint_is_stable_and_short():
    keypair = generate_keypair(b"fp")
    assert len(keypair.public.fingerprint()) == 8
    assert keypair.public.fingerprint() == keypair.public.fingerprint()
