"""Hashing helpers: domain separation and injectivity."""

from repro.crypto.hashing import (
    HASH_SIZE,
    hash_concat,
    hash_leaf,
    hash_node,
    sha256,
    tagged_hash,
)


def test_sha256_size_and_determinism():
    digest = sha256(b"hello")
    assert len(digest) == HASH_SIZE
    assert digest == sha256(b"hello")
    assert digest != sha256(b"hellO")


def test_tagged_hash_separates_domains():
    assert tagged_hash("a", b"data") != tagged_hash("b", b"data")
    assert tagged_hash("a", b"data") != sha256(b"data")


def test_leaf_and_node_domains_disjoint():
    # A leaf whose payload mimics an internal node must not collide.
    left, right = sha256(b"l"), sha256(b"r")
    assert hash_leaf(left + right) != hash_node(left, right)


def test_hash_concat_is_injective_across_boundaries():
    assert hash_concat(b"ab", b"c") != hash_concat(b"a", b"bc")
    assert hash_concat(b"", b"x") != hash_concat(b"x", b"")
    assert hash_concat() != hash_concat(b"")


def test_hash_concat_order_matters():
    assert hash_concat(b"a", b"b") != hash_concat(b"b", b"a")
