"""High-level sign/verify API with signing domains."""

import pytest

from repro.crypto import generate_keypair, sign, verify
from repro.crypto.signature import Signature
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(b"sig-tests")


def test_sign_verify_roundtrip(keypair):
    signature = sign(keypair.private, b"payload")
    assert verify(keypair.public, b"payload", signature)


def test_verify_rejects_tampered_message(keypair):
    signature = sign(keypair.private, b"payload")
    assert not verify(keypair.public, b"payloaX", signature)


def test_verify_rejects_cross_domain_replay(keypair):
    """A signature from one domain must not verify in another."""
    signature = sign(keypair.private, b"payload", domain="repro-tx")
    assert not verify(keypair.public, b"payload", signature, domain="dcert-cert")
    assert verify(keypair.public, b"payload", signature, domain="repro-tx")


def test_verify_rejects_other_signer(keypair):
    other = generate_keypair(b"other-signer")
    signature = sign(other.private, b"payload")
    assert not verify(keypair.public, b"payload", signature)


def test_signature_serialization_roundtrip(keypair):
    signature = sign(keypair.private, b"payload")
    encoded = signature.to_bytes()
    assert len(encoded) == 64
    assert Signature.from_bytes(encoded) == signature


def test_signature_rejects_bad_length():
    with pytest.raises(CryptoError):
        Signature.from_bytes(bytes(63))
